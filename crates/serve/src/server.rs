//! The TCP front-end: a readiness-based epoll event loop with request
//! pipelining.
//!
//! One event-loop thread owns everything: a non-blocking listener, a
//! wakeup pipe, and every live connection's read/write buffers. Sockets
//! are registered edge-triggered (`EPOLLET`), so each readiness edge is
//! drained completely — reads accumulate into the connection's input
//! buffer until `WouldBlock`, *every* complete request already buffered
//! is executed (that is the server half of pipelining: a client that
//! batches N requests into one write gets N replies back in one or two
//! writes), and replies are flushed until `WouldBlock` with `EPOLLOUT`
//! interest added only while a flush is actually pending.
//!
//! Both wire protocols are spoken on every connection, auto-detected
//! per message: a byte equal to [`FRAME_MAGIC`] opens a length-prefixed
//! binary frame, anything else is a text line (`GET`/`STATS`/…). Each
//! reply uses the protocol of its request, so mixed sessions work.
//!
//! Shutdown is signalled through the wakeup pipe registered with epoll
//! — the old "throwaway connection to the server's own port" trick is
//! gone (it could hang forever when the listener backlog was full).
//! [`ServerHandle::shutdown`] sets the flag, writes one byte to the
//! pipe, and joins the loop; the loop drains in-flight pipelined
//! requests (one final opportunistic read per connection, then every
//! buffered complete request is executed and its reply flushed) before
//! closing.
//!
//! ## Resilience
//!
//! The failure contract is unchanged from the thread-per-connection
//! server: *structured refusal, never silent disconnect*. Malformed
//! text lines and recoverable frame corruption get an `ERR` and the
//! connection lives; unrecoverable frame corruption (untrusted length)
//! gets an `ERR` and then the close. [`ServerConfig`] still holds the
//! knobs:
//!
//! * `max_conns` — admission gate: excess arrivals get `ERR server
//!   busy` and an immediate close;
//! * `read_timeout` — idle budget: a connection with no complete
//!   request for this long gets `ERR idle timeout` and is reclaimed;
//! * `chaos` — gates the `POISON` fault-injection command.
//!
//! A text line longer than [`MAX_LINE_BYTES`] is refused (`ERR request
//! line too long`), and a connection that pipelines requests without
//! ever reading replies stops being *read* (not dropped) once its
//! pending reply bytes pass a soft cap — backpressure instead of
//! unbounded buffering.
//!
//! ## The overload governor
//!
//! Between "healthy" and "stop reading" sits a two-tier governor
//! ([`GovernorConfig`]) keyed on the same quantity as the soft cap:
//! pending reply bytes, per connection and summed across the loop.
//! Past the first watermark GET misses stop probing cluster peers
//! (local-only serving — the blocking peer RTT is the single most
//! expensive thing the loop can do under pressure); past the second
//! the server sheds GETs outright with a `BUSY` reply the loadgen's
//! retry loop backs off from. `STATS`, `PEERGET` and the other cheap
//! verbs are never shed — `PEERGET` is how the *cluster* heals, and
//! shedding it would cascade one node's overload into cluster-wide
//! misses. Shed GETs count in `STATS shed=`.

use crate::cluster::{ClusterRuntime, ClusterSpec};
use crate::protocol::{
    decode_command, encode_reply, format_get, format_peer, format_poisoned, format_range,
    format_stats, format_version, parse_command, Command, Decoded, Reply, ServerStats,
    WireVersions, FRAME_MAGIC,
};
use crate::service::CacheService;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Idle-sweep cadence (epoll timeout): how often the loop checks idle
/// budgets when no traffic arrives.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Longest accepted text request line (bytes, newline excluded). Longer
/// lines get `ERR request line too long` and the connection closes.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Pending reply bytes beyond which a connection stops being read until
/// the client drains some replies (pipelining backpressure).
const WBUF_SOFT_CAP: usize = 4 * 1024 * 1024;

/// Read chunk size for the drain loop.
const READ_CHUNK: usize = 64 * 1024;

/// The governor's answer for one request, from cheapest service to
/// cheapest refusal. Ordering matters: `Normal < LocalOnly < Shed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LoadTier {
    /// Below every watermark: full service, peer fills allowed.
    Normal,
    /// Past the first watermark: GETs are served from local shards
    /// only — no peer probes, so no blocking peer RTT in the loop.
    LocalOnly,
    /// Past the second watermark: GETs are refused with [`Reply::Busy`]
    /// before touching the cache; everything else is still served.
    Shed,
}

/// Overload watermarks, all in pending-reply bytes — the same quantity
/// the [`WBUF_SOFT_CAP`] backpressure uses, measured per connection and
/// summed across every live connection. A request is classified by the
/// *worst* of its per-connection and global readings, so one pathological
/// pipeliner degrades itself first and the whole loop only under
/// genuine aggregate pressure. Pure and count-free: the tier is a
/// function of buffer sizes at classification time, never of the clock.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Per-connection pending bytes at which GETs go local-only.
    pub conn_local_only: usize,
    /// Per-connection pending bytes at which GETs are shed.
    pub conn_shed: usize,
    /// Global pending bytes at which GETs go local-only.
    pub global_local_only: usize,
    /// Global pending bytes at which GETs are shed.
    pub global_shed: usize,
}

impl Default for GovernorConfig {
    /// Defaults sit inside the soft cap: a connection degrades at a
    /// quarter of [`WBUF_SOFT_CAP`] (1 MiB) and sheds at three quarters
    /// (3 MiB) — before backpressure stops reading it entirely — while
    /// the global watermarks (8 MiB / 32 MiB) only trip when many
    /// connections are saturated at once.
    fn default() -> GovernorConfig {
        GovernorConfig {
            conn_local_only: WBUF_SOFT_CAP / 4,
            conn_shed: 3 * (WBUF_SOFT_CAP / 4),
            global_local_only: 2 * WBUF_SOFT_CAP,
            global_shed: 8 * WBUF_SOFT_CAP,
        }
    }
}

impl GovernorConfig {
    /// Classify one request given the connection's pending reply bytes
    /// and the loop-wide sum. Monotone in both arguments.
    pub fn tier(&self, conn_pending: usize, global_pending: usize) -> LoadTier {
        if conn_pending >= self.conn_shed || global_pending >= self.global_shed {
            LoadTier::Shed
        } else if conn_pending >= self.conn_local_only || global_pending >= self.global_local_only {
            LoadTier::LocalOnly
        } else {
            LoadTier::Normal
        }
    }
}

/// Server tuning knobs; [`ServerConfig::default`] reproduces the
/// pre-resilience behavior (no gate, no idle limit, no chaos).
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Maximum concurrently served connections (`None` = unlimited).
    /// Excess arrivals are refused with `ERR server busy`.
    pub max_conns: Option<usize>,
    /// Idle budget per connection: close (with `ERR idle timeout`)
    /// when no complete request arrives for this long (`None` = wait
    /// forever).
    pub read_timeout: Option<Duration>,
    /// Whether the `POISON` fault-injection command is honored.
    pub chaos: bool,
    /// Cluster membership (`--cluster`): when set, GET misses trigger a
    /// peer fill across the clip's other ring owners before the miss is
    /// reported.
    pub cluster: Option<ClusterSpec>,
    /// Overload watermarks for the two-tier governor.
    pub governor: GovernorConfig,
}

/// Minimal safe wrapper over the vendored epoll shim. Owns the epoll
/// fd; closed on drop.
struct Epoll {
    fd: libc::c_int,
}

impl Epoll {
    fn new() -> std::io::Result<Epoll> {
        let fd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(
        &self,
        op: libc::c_int,
        fd: libc::c_int,
        events: u32,
        token: u64,
    ) -> std::io::Result<()> {
        let mut ev = libc::epoll_event { events, u64: token };
        let rc = unsafe { libc::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: libc::c_int, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: libc::c_int, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, events, token)
    }

    /// Wait for readiness, retrying on `EINTR`. `timeout_ms < 0` blocks.
    fn wait(&self, events: &mut [libc::epoll_event], timeout_ms: i32) -> usize {
        loop {
            let n = unsafe {
                libc::epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as libc::c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return n as usize;
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != ErrorKind::Interrupted {
                // An unusable epoll fd is unrecoverable for the loop;
                // treat it as "no events" and let the tick logic run —
                // shutdown still works through the shared flag.
                return 0;
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { libc::close(self.fd) };
    }
}

/// The shutdown wakeup: a non-blocking pipe whose read end lives in the
/// epoll set. Writing one byte wakes the loop immediately — no
/// connection to the server's own port, no dependence on backlog space.
struct WakePipe {
    read_fd: libc::c_int,
    write_fd: libc::c_int,
}

impl WakePipe {
    fn new() -> std::io::Result<WakePipe> {
        let mut fds = [0 as libc::c_int; 2];
        let rc = unsafe { libc::pipe2(fds.as_mut_ptr(), libc::O_NONBLOCK | libc::O_CLOEXEC) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    fn wake(&self) {
        let byte = 1u8;
        unsafe { libc::write(self.write_fd, (&byte as *const u8).cast(), 1) };
    }

    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { libc::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            libc::close(self.read_fd);
            libc::close(self.write_fd);
        }
    }
}

/// A running server. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) leaves the loop running for the
/// process lifetime.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    wake: Arc<WakePipe>,
    loop_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight pipelined requests, flush their
    /// replies, join the loop thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake.wake();
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `service` with default
/// (unlimited, chaos-off) settings until [`ServerHandle::shutdown`].
pub fn serve(service: Arc<CacheService>, addr: &str) -> std::io::Result<ServerHandle> {
    serve_with(service, addr, ServerConfig::default())
}

/// Bind `addr` and serve `service` with explicit [`ServerConfig`]
/// settings until [`ServerHandle::shutdown`].
pub fn serve_with(
    service: Arc<CacheService>,
    addr: &str,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let wake = Arc::new(WakePipe::new()?);

    let loop_thread = {
        let shutdown = Arc::clone(&shutdown);
        let wake = Arc::clone(&wake);
        std::thread::spawn(move || {
            let mut event_loop = match EventLoop::new(listener, service, config, shutdown, wake) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("clipcache-serve: cannot start event loop: {e}");
                    return;
                }
            };
            event_loop.run();
        })
    };

    Ok(ServerHandle {
        addr: local,
        shutdown,
        wake,
        loop_thread: Some(loop_thread),
    })
}

/// Which protocol the connection most recently spoke — unsolicited
/// server messages (idle timeout) use it so binary clients are not fed
/// text mid-frame.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Wire {
    Text,
    Binary,
}

/// One connection's state inside the loop.
struct Conn {
    stream: TcpStream,
    /// Unconsumed input bytes (partial lines / torn frame prefixes).
    rbuf: Vec<u8>,
    /// Encoded replies not yet written to the socket.
    wbuf: VecDeque<u8>,
    /// Close once `wbuf` is flushed (QUIT, fatal protocol error, idle).
    closing: bool,
    /// The peer half-closed or errored; no more reads will succeed.
    eof: bool,
    /// `EPOLLOUT` currently registered.
    want_write: bool,
    /// Completion time of the last full request (idle accounting).
    last_request: Instant,
    /// Protocol of the most recent message (for unsolicited replies).
    wire: Wire,
}

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKE_TOKEN: u64 = u64::MAX - 1;
const BASE_EVENTS: u32 = libc::EPOLLIN | libc::EPOLLRDHUP | libc::EPOLLET;

struct EventLoop {
    epoll: Epoll,
    listener: TcpListener,
    service: Arc<CacheService>,
    config: ServerConfig,
    /// Peer pool + fill counters when the node is a cluster member.
    cluster: Option<ClusterRuntime>,
    shutdown: Arc<AtomicBool>,
    wake: Arc<WakePipe>,
    /// Connection slab indexed by epoll token.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    /// GETs refused with `BUSY` by the governor (reported in `STATS`).
    shed: u64,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        service: Arc<CacheService>,
        config: ServerConfig,
        shutdown: Arc<AtomicBool>,
        wake: Arc<WakePipe>,
    ) -> std::io::Result<EventLoop> {
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), libc::EPOLLIN, LISTENER_TOKEN)?;
        epoll.add(wake.read_fd, libc::EPOLLIN, WAKE_TOKEN)?;
        let cluster = config.cluster.clone().map(ClusterRuntime::new);
        Ok(EventLoop {
            epoll,
            listener,
            service,
            config,
            cluster,
            shutdown,
            wake,
            conns: Vec::new(),
            free: Vec::new(),
            live: 0,
            shed: 0,
        })
    }

    /// Loop-wide pending reply bytes: the governor's global reading.
    /// Recomputed at each readiness event, not tracked incrementally —
    /// the slab is small and the sum is cheap next to a socket write.
    fn pending_bytes(&self) -> usize {
        self.conns
            .iter()
            .flatten()
            .map(|conn| conn.wbuf.len())
            .sum()
    }

    fn run(&mut self) {
        let mut events = vec![libc::epoll_event { events: 0, u64: 0 }; 1024];
        loop {
            let n = self
                .epoll
                .wait(&mut events, POLL_INTERVAL.as_millis() as i32);
            for ev in events.iter().take(n) {
                let token = ev.u64;
                let bits = ev.events;
                match token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKE_TOKEN => self.wake.drain(),
                    _ => self.conn_ready(token as usize, bits),
                }
            }
            if self.shutdown.load(Ordering::SeqCst) {
                self.drain_and_close_all();
                return;
            }
            self.sweep_idle();
        }
    }

    /// Accept until `WouldBlock` (edge-triggered listener).
    fn accept_ready(&mut self) {
        loop {
            let (mut stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if let Some(limit) = self.config.max_conns {
                if self.live >= limit {
                    // Admission gate: structured refusal, then close.
                    let _ = stream.write_all(b"ERR server busy\n");
                    continue;
                }
            }
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                continue;
            }
            let token = match self.free.pop() {
                Some(t) => t,
                None => {
                    self.conns.push(None);
                    self.conns.len() - 1
                }
            };
            if self
                .epoll
                .add(stream.as_raw_fd(), BASE_EVENTS, token as u64)
                .is_err()
            {
                self.free.push(token);
                continue;
            }
            self.conns[token] = Some(Conn {
                stream,
                rbuf: Vec::new(),
                wbuf: VecDeque::new(),
                closing: false,
                eof: false,
                want_write: false,
                last_request: Instant::now(),
                wire: Wire::Text,
            });
            self.live += 1;
        }
    }

    /// Handle readiness on connection `token`.
    fn conn_ready(&mut self, token: usize, bits: u32) {
        // Global pending bytes are snapshotted once per readiness event;
        // requests executed inside this event add their own replies on
        // top of the snapshot (see `process_buffered`).
        let global = self.pending_bytes();
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return; // already closed earlier in this batch
        };
        if bits & (libc::EPOLLERR | libc::EPOLLHUP) != 0 {
            conn.eof = true;
        }
        if bits & (libc::EPOLLIN | libc::EPOLLRDHUP) != 0 {
            Self::read_and_process(
                conn,
                &self.service,
                &self.config,
                &mut self.cluster,
                &mut self.shed,
                global,
            );
        }
        if bits & libc::EPOLLOUT != 0 || !conn.wbuf.is_empty() {
            Self::flush(conn);
            // Backpressure release: reply bytes drained, resume
            // consuming any input that piled up meanwhile.
            if conn.wbuf.len() < WBUF_SOFT_CAP && !conn.closing {
                Self::read_and_process(
                    conn,
                    &self.service,
                    &self.config,
                    &mut self.cluster,
                    &mut self.shed,
                    global,
                );
                Self::flush(conn);
            }
        }
        self.update_interest(token);
    }

    /// Drain the socket into `rbuf` (edge-triggered: read to
    /// `WouldBlock`), then execute every complete buffered request.
    fn read_and_process(
        conn: &mut Conn,
        service: &CacheService,
        config: &ServerConfig,
        cluster: &mut Option<ClusterRuntime>,
        shed: &mut u64,
        global: usize,
    ) {
        if conn.closing {
            return;
        }
        if conn.wbuf.len() >= WBUF_SOFT_CAP {
            return; // backpressure: let the client drain replies first
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    if conn.rbuf.len() + conn.wbuf.len() > WBUF_SOFT_CAP {
                        break; // bounded memory per connection
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.eof = true;
                    break;
                }
            }
        }
        Self::process_buffered(conn, service, config, cluster, shed, global);
        if conn.eof && !conn.closing {
            // Peer is gone (or half-closed after its final request):
            // flush whatever replies remain, then close.
            conn.closing = true;
        }
    }

    /// Execute every complete request sitting in `rbuf` — the server
    /// half of pipelining.
    fn process_buffered(
        conn: &mut Conn,
        service: &CacheService,
        config: &ServerConfig,
        cluster: &mut Option<ClusterRuntime>,
        shed: &mut u64,
        global: usize,
    ) {
        let mut consumed = 0usize;
        let mut out: Vec<u8> = Vec::new();
        while consumed < conn.rbuf.len() && !conn.closing {
            // Classify under the replies already produced this batch,
            // so a pipelined flood trips the governor mid-batch instead
            // of after the batch has bought 4 MiB of output.
            let tier = config
                .governor
                .tier(conn.wbuf.len() + out.len(), global + out.len());
            let rest = &conn.rbuf[consumed..];
            if rest[0] == FRAME_MAGIC {
                conn.wire = Wire::Binary;
                match decode_command(rest) {
                    Ok(Decoded::Incomplete) => break,
                    Ok(Decoded::Frame { value, consumed: n }) => {
                        consumed += n;
                        conn.last_request = Instant::now();
                        let (reply, quit) = execute(service, config, cluster, tier, shed, Ok(value));
                        encode_reply(&reply, &mut out);
                        if quit {
                            conn.closing = true;
                        }
                    }
                    Err(err) => {
                        // Loud, structured, never a silent skip: ERR
                        // frame first, then (for untrusted lengths)
                        // the close.
                        consumed += err.consumed;
                        encode_reply(&Reply::Err(err.reason), &mut out);
                        if err.fatal {
                            conn.closing = true;
                        }
                    }
                }
            } else {
                conn.wire = Wire::Text;
                match rest.iter().position(|&b| b == b'\n') {
                    None => {
                        if rest.len() > MAX_LINE_BYTES {
                            // A newline-less flood; refuse before the
                            // buffer grows without bound.
                            out.extend_from_slice(b"ERR request line too long\n");
                            conn.closing = true;
                        }
                        break;
                    }
                    Some(pos) => {
                        let line = String::from_utf8_lossy(&rest[..pos]).into_owned();
                        consumed += pos + 1;
                        conn.last_request = Instant::now();
                        let (reply, quit) =
                            execute(service, config, cluster, tier, shed, parse_command(&line));
                        out.extend_from_slice(format_reply_text(&reply).as_bytes());
                        out.push(b'\n');
                        if quit {
                            conn.closing = true;
                        }
                    }
                }
            }
        }
        conn.rbuf.drain(..consumed);
        conn.wbuf.extend(out);
    }

    /// Write pending reply bytes until `WouldBlock` or empty.
    fn flush(conn: &mut Conn) {
        while !conn.wbuf.is_empty() {
            let (front, _) = conn.wbuf.as_slices();
            match conn.stream.write(front) {
                Ok(0) => {
                    conn.eof = true;
                    conn.wbuf.clear();
                    return;
                }
                Ok(n) => {
                    conn.wbuf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.eof = true;
                    conn.wbuf.clear();
                    return;
                }
            }
        }
    }

    /// Re-register `EPOLLOUT` interest to match pending output, and
    /// close the connection when it is finished.
    fn update_interest(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        let finished = (conn.closing && conn.wbuf.is_empty()) || (conn.eof && conn.wbuf.is_empty());
        if finished {
            self.close_conn(token);
            return;
        }
        let want = !conn.wbuf.is_empty();
        if want != conn.want_write {
            let events = if want {
                BASE_EVENTS | libc::EPOLLOUT
            } else {
                BASE_EVENTS
            };
            if self
                .epoll
                .modify(conn.stream.as_raw_fd(), events, token as u64)
                .is_ok()
            {
                conn.want_write = want;
            }
        }
    }

    fn close_conn(&mut self, token: usize) {
        if let Some(conn) = self.conns.get_mut(token).and_then(Option::take) {
            // Dropping the stream closes the fd, which removes it from
            // the epoll set.
            drop(conn);
            self.free.push(token);
            self.live -= 1;
        }
    }

    /// Reclaim connections whose idle budget expired.
    fn sweep_idle(&mut self) {
        let Some(budget) = self.config.read_timeout else {
            return;
        };
        let now = Instant::now();
        for token in 0..self.conns.len() {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                continue;
            };
            if conn.closing || now.duration_since(conn.last_request) < budget {
                continue;
            }
            let reply = Reply::Err("idle timeout".into());
            match conn.wire {
                Wire::Text => {
                    conn.wbuf.extend(format_reply_text(&reply).as_bytes());
                    conn.wbuf.push_back(b'\n');
                }
                Wire::Binary => {
                    let mut out = Vec::new();
                    encode_reply(&reply, &mut out);
                    conn.wbuf.extend(out);
                }
            }
            conn.closing = true;
            Self::flush(conn);
            self.update_interest(token);
        }
    }

    /// Graceful shutdown: stop accepting, take one final opportunistic
    /// read per connection (bytes the peer already sent), execute every
    /// buffered complete request, and flush all replies with blocking
    /// writes so in-flight pipelined requests are answered, not dropped.
    fn drain_and_close_all(&mut self) {
        for token in 0..self.conns.len() {
            let global = self.pending_bytes();
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                continue;
            };
            Self::read_and_process(
                conn,
                &self.service,
                &self.config,
                &mut self.cluster,
                &mut self.shed,
                global,
            );
            if !conn.wbuf.is_empty() {
                let _ = conn.stream.set_nonblocking(false);
                let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(5)));
                conn.wbuf.make_contiguous();
                let (rest, _) = conn.wbuf.as_slices();
                let _ = conn.stream.write_all(rest);
                conn.wbuf.clear();
            }
        }
        for token in 0..self.conns.len() {
            self.close_conn(token);
        }
    }
}

/// Execute one parsed (or unparseable) request; the bool means QUIT.
fn execute(
    service: &CacheService,
    config: &ServerConfig,
    cluster: &mut Option<ClusterRuntime>,
    tier: LoadTier,
    shed: &mut u64,
    command: Result<Command, String>,
) -> (Reply, bool) {
    let reply = match command {
        Ok(Command::Get(clip)) => {
            // The shed tier refuses before touching the cache — the
            // point is to spend nothing on the request. Only GETs shed:
            // STATS/VERSION must stay observable under overload and
            // PEERGET is how the rest of the cluster heals.
            if tier == LoadTier::Shed {
                *shed += 1;
                return (Reply::Busy, false);
            }
            match service.get(clip) {
                Ok(mut outcome) => {
                    // Cluster peer fill: a local miss consults the clip's
                    // other ring owners before being reported. `fill` is a
                    // no-op for R = 1 (empty probe set), so a degenerate
                    // cluster stays byte-identical to a standalone server.
                    // The local-only tier skips the fill entirely: a peer
                    // RTT is the most expensive thing the loop can buy
                    // while already behind on writes.
                    if !outcome.hit && tier == LoadTier::Normal {
                        if let Some(cluster) = cluster.as_mut() {
                            outcome.peer = cluster.fill(clip);
                        }
                    }
                    Reply::Get(outcome)
                }
                Err(e) => Reply::Err(e.to_string()),
            }
        }
        // A PEERGET is a full local access — the probing owner's
        // write-all half — but never recurses into another peer fill:
        // answering from local shards only keeps peer traffic loop-free.
        Ok(Command::PeerGet(clip)) => match service.get(clip) {
            Ok(outcome) => Reply::Peer(outcome.hit),
            Err(e) => Reply::Err(e.to_string()),
        },
        Ok(Command::Version) => Reply::Version(WireVersions::current()),
        // An out-of-range chunk (or unknown clip) is a loud structured
        // ERR / R_ERR — the probe never stalls the connection.
        Ok(Command::GetRange(clip, chunk)) => match service.get_range(clip, chunk) {
            Ok(outcome) => Reply::Range(outcome),
            Err(e) => Reply::Err(e.to_string()),
        },
        Ok(Command::Stats) => Reply::Stats(ServerStats {
            stats: service.stats(),
            recoveries: service.recoveries(),
            wal_replayed: service.wal_replayed(),
            peer_hits: cluster.as_ref().map_or(0, |c| c.peer_hits()),
            handoff_replayed: cluster.as_ref().map_or(0, |c| c.handoff_replayed()),
            breaker_open: cluster.as_ref().map_or(0, |c| c.breaker_open()),
            shed: *shed,
        }),
        Ok(Command::Snapshot) => {
            let parts: Vec<String> = service.snapshot().iter().map(|s| s.to_json()).collect();
            Reply::Snapshot(format!("[{}]", parts.join(",")))
        }
        Ok(Command::Poison(clip)) => {
            if config.chaos {
                Reply::Poisoned(service.poison(clip) as u64)
            } else {
                Reply::Err("poison refused (server not started with --chaos)".into())
            }
        }
        Ok(Command::Quit) => return (Reply::Bye, true),
        Err(e) => Reply::Err(e),
    };
    (reply, false)
}

/// Render a reply as its text-protocol line (newline not included).
fn format_reply_text(reply: &Reply) -> String {
    match reply {
        Reply::Get(outcome) => format_get(outcome),
        Reply::Peer(had) => format_peer(*had),
        Reply::Version(versions) => format_version(versions),
        Reply::Range(outcome) => format_range(outcome),
        Reply::Stats(stats) => format_stats(stats),
        Reply::Snapshot(json) => format!("SNAPSHOT {json}"),
        Reply::Poisoned(shard) => format_poisoned(*shard as usize),
        Reply::Busy => "BUSY".into(),
        Reply::Bye => "BYE".into(),
        Reply::Err(msg) => format!("ERR {msg}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_is_monotone_in_both_watermark_axes() {
        let gov = GovernorConfig::default();
        assert_eq!(gov.tier(0, 0), LoadTier::Normal);
        assert_eq!(gov.tier(gov.conn_local_only - 1, 0), LoadTier::Normal);
        assert_eq!(gov.tier(gov.conn_local_only, 0), LoadTier::LocalOnly);
        assert_eq!(gov.tier(gov.conn_shed - 1, 0), LoadTier::LocalOnly);
        assert_eq!(gov.tier(gov.conn_shed, 0), LoadTier::Shed);
        assert_eq!(gov.tier(0, gov.global_local_only), LoadTier::LocalOnly);
        assert_eq!(gov.tier(0, gov.global_shed), LoadTier::Shed);
        // The worst axis wins.
        assert_eq!(gov.tier(gov.conn_shed, gov.global_local_only), LoadTier::Shed);
        assert_eq!(gov.tier(gov.conn_local_only, gov.global_shed), LoadTier::Shed);
        // And the tiers are ordered so callers can compare.
        assert!(LoadTier::Normal < LoadTier::LocalOnly);
        assert!(LoadTier::LocalOnly < LoadTier::Shed);
    }

    #[test]
    fn shed_tier_refuses_gets_cheaply_and_counts_them() {
        use clipcache_core::PolicyKind;
        use clipcache_media::paper;
        use crate::service::ServiceConfig;

        let repo = Arc::new(paper::variable_sized_repository_of(24));
        let capacity = repo.cache_capacity_for_ratio(0.25);
        let service = CacheService::new(
            Arc::clone(&repo),
            ServiceConfig::new(PolicyKind::Lru, 1, capacity, 7),
            None,
        )
        .expect("LRU builds");
        let config = ServerConfig::default();
        let mut cluster = None;
        let mut shed = 0u64;

        // Shed: BUSY, no cache access, counter moves.
        let (reply, quit) = execute(
            &service,
            &config,
            &mut cluster,
            LoadTier::Shed,
            &mut shed,
            Ok(Command::Get(clipcache_media::ClipId::new(1))),
        );
        assert!(matches!(reply, Reply::Busy));
        assert!(!quit);
        assert_eq!(shed, 1);
        assert_eq!(service.stats().requests(), 0, "shed GETs never touch shards");

        // STATS is served at every tier and reports the shed count.
        let (reply, _) = execute(
            &service,
            &config,
            &mut cluster,
            LoadTier::Shed,
            &mut shed,
            Ok(Command::Stats),
        );
        match reply {
            Reply::Stats(stats) => assert_eq!(stats.shed, 1),
            other => panic!("expected STATS, got {other:?}"),
        }

        // Local-only and normal tiers still serve the GET.
        for tier in [LoadTier::LocalOnly, LoadTier::Normal] {
            let (reply, _) = execute(
                &service,
                &config,
                &mut cluster,
                tier,
                &mut shed,
                Ok(Command::Get(clipcache_media::ClipId::new(1))),
            );
            assert!(matches!(reply, Reply::Get(_)));
        }
        assert_eq!(shed, 1, "served GETs do not move the shed counter");
        assert_eq!(service.stats().requests(), 2);
    }
}
