//! The TCP front-end: a thread-per-connection line-protocol server.
//!
//! `std::net` only — no async runtime. The accept loop runs on its own
//! thread; each connection gets a handler thread that polls a shared
//! shutdown flag between reads (via a short read timeout), so
//! [`ServerHandle::shutdown`] drains everything within a poll interval.
//! The blocking `accept` itself is woken by a throwaway connection to
//! the server's own port — the classic self-pipe trick, TCP edition.

use crate::protocol::{format_get, format_stats, parse_command, Command};
use crate::service::CacheService;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often connection handlers check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// A running server. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) leaves the threads running for the
/// process lifetime.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain connection handlers, join all threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handlers = std::mem::take(&mut *self.connections.lock().expect("handler list"));
        for t in handlers {
            let _ = t.join();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `service` until
/// [`ServerHandle::shutdown`].
pub fn serve(service: Arc<CacheService>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let connections = Arc::clone(&connections);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&service);
                let shutdown = Arc::clone(&shutdown);
                let handler = std::thread::spawn(move || {
                    let _ = handle_connection(stream, &service, &shutdown);
                });
                connections.lock().expect("handler list").push(handler);
            }
        })
    };

    Ok(ServerHandle {
        addr: local,
        shutdown,
        accept_thread: Some(accept_thread),
        connections,
    })
}

/// Serve one connection until QUIT, EOF, or shutdown.
fn handle_connection(
    mut stream: TcpStream,
    service: &CacheService,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    // Hand-rolled line buffering: `BufReader::read_line` may hold a
    // partial line across a timeout error, so we split on '\n' in our
    // own buffer where partial reads are harmless.
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Drain every complete line already buffered.
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            if !respond(&mut stream, service, &line)? {
                return Ok(());
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // EOF
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Execute one request line; false means the connection should close.
fn respond(stream: &mut TcpStream, service: &CacheService, line: &str) -> std::io::Result<bool> {
    let reply = match parse_command(line) {
        Ok(Command::Get(clip)) => match service.get(clip) {
            Ok(outcome) => format_get(&outcome),
            Err(e) => format!("ERR {e}"),
        },
        Ok(Command::Stats) => format_stats(&service.stats()),
        Ok(Command::Snapshot) => {
            let parts: Vec<String> = service.snapshot().iter().map(|s| s.to_json()).collect();
            format!("SNAPSHOT [{}]", parts.join(","))
        }
        Ok(Command::Quit) => {
            stream.write_all(b"BYE\n")?;
            return Ok(false);
        }
        Err(e) => format!("ERR {e}"),
    };
    stream.write_all(reply.as_bytes())?;
    stream.write_all(b"\n")?;
    Ok(true)
}
