//! Wall-clock request latencies for the load harness.
//!
//! Distinct from `clipcache_sim::latency`, which *models* startup delay
//! in simulated seconds: this module measures real elapsed nanoseconds
//! around each service call, per client thread, and merges the logs into
//! the percentiles the load report prints.

/// A log of observed request latencies in nanoseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyLog {
    samples: Vec<u64>,
}

impl LatencyLog {
    /// An empty log.
    pub fn new() -> Self {
        LatencyLog::default()
    }

    /// Record one request's latency.
    #[inline]
    pub fn record_nanos(&mut self, nanos: u64) {
        self.samples.push(nanos);
    }

    /// Pool another log's samples into this one (order-invariant:
    /// percentiles sort the pooled samples).
    pub fn merge(&mut self, other: &LatencyLog) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of recorded requests.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean latency in nanoseconds; 0 when empty.
    pub fn mean_nanos(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in nanoseconds by the nearest-rank
    /// method; 0 when empty.
    pub fn percentile_nanos(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank =
            ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// The largest observed latency in nanoseconds; 0 when empty.
    pub fn max_nanos(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_mean() {
        let mut log = LatencyLog::new();
        for n in [50u64, 10, 30, 20, 40] {
            log.record_nanos(n);
        }
        assert_eq!(log.count(), 5);
        assert_eq!(log.mean_nanos(), 30.0);
        assert_eq!(log.percentile_nanos(0.5), 30);
        assert_eq!(log.percentile_nanos(0.99), 50);
        assert_eq!(log.max_nanos(), 50);
        assert_eq!(LatencyLog::new().percentile_nanos(0.5), 0);
    }

    #[test]
    fn empty_log_is_all_zeros() {
        let log = LatencyLog::new();
        assert_eq!(log.count(), 0);
        assert_eq!(log.mean_nanos(), 0.0);
        assert_eq!(log.max_nanos(), 0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(log.percentile_nanos(q), 0);
        }
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut log = LatencyLog::new();
        log.record_nanos(17);
        assert_eq!(log.count(), 1);
        assert_eq!(log.mean_nanos(), 17.0);
        assert_eq!(log.max_nanos(), 17);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(log.percentile_nanos(q), 17);
        }
    }

    #[test]
    fn identical_samples_collapse_the_distribution() {
        let mut log = LatencyLog::new();
        for _ in 0..100 {
            log.record_nanos(42);
        }
        assert_eq!(log.mean_nanos(), 42.0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(log.percentile_nanos(q), 42);
        }
        assert_eq!(log.max_nanos(), 42);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded_by_max() {
        // Nearest-rank on a spread of sizes (including empty and one).
        let sample_sets: &[&[u64]] = &[
            &[],
            &[3],
            &[9, 1],
            &[5, 5, 5],
            &[100, 1, 50, 2, 99, 3, 98, 4],
            &[u64::MAX, 0, 1],
        ];
        for samples in sample_sets {
            let mut log = LatencyLog::new();
            for &n in *samples {
                log.record_nanos(n);
            }
            let p50 = log.percentile_nanos(0.5);
            let p95 = log.percentile_nanos(0.95);
            let p99 = log.percentile_nanos(0.99);
            assert!(p50 <= p95, "p50 > p95 for {samples:?}");
            assert!(p95 <= p99, "p95 > p99 for {samples:?}");
            assert!(p99 <= log.max_nanos(), "p99 > max for {samples:?}");
            // q = 1 is exactly the max, and quantiles clamp outside [0, 1].
            assert_eq!(log.percentile_nanos(1.0), log.max_nanos());
            assert_eq!(log.percentile_nanos(7.5), log.max_nanos());
            if !samples.is_empty() {
                assert_eq!(
                    log.percentile_nanos(-1.0),
                    *samples.iter().min().unwrap(),
                    "q below 0 clamps to the minimum for {samples:?}"
                );
            }
        }
    }

    #[test]
    fn merge_pools_samples() {
        let mut a = LatencyLog::new();
        a.record_nanos(1);
        a.record_nanos(9);
        let mut b = LatencyLog::new();
        b.record_nanos(5);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.percentile_nanos(0.5), ba.percentile_nanos(0.5));
        assert_eq!(ab.percentile_nanos(0.5), 5);
    }
}
