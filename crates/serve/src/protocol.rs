//! The line protocol spoken on the TCP front-end.
//!
//! One request per line, one reply line per request (`SNAPSHOT` replies
//! stay on a single line so clients never need framing beyond
//! `read_line`). The grammar (also documented in `docs/extending.md`):
//!
//! ```text
//! request   = "GET" SP clip-id | "STATS" | "SNAPSHOT" | "QUIT"
//! clip-id   = 1*DIGIT                ; ≥ 1
//!
//! reply     = "HIT" SP evicted              ; GET, clip was resident
//!           | "MISS" SP admitted SP evicted ; GET, clip was fetched
//!           | "STATS" SP "hits=" n SP "misses=" n SP "byte_hits=" n
//!                     SP "byte_misses=" n SP "evictions=" n
//!           | "SNAPSHOT" SP json-array      ; one CacheSnapshot per shard
//!           | "BYE"                         ; QUIT acknowledged
//!           | "ERR" SP text                 ; malformed request / unknown clip
//! admitted  = "0" | "1"
//! evicted   = 1*DIGIT                       ; clips evicted by this access
//! ```

use crate::shard::GetOutcome;
use clipcache_media::ClipId;
use clipcache_sim::metrics::HitStats;

/// A parsed request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Access a clip through its shard.
    Get(ClipId),
    /// Report merged hit statistics.
    Stats,
    /// Snapshot every shard.
    Snapshot,
    /// Close the connection.
    Quit,
}

/// Parse one request line (already stripped of the newline).
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    if let Some(rest) = line.strip_prefix("GET ") {
        let id: u64 = rest
            .trim()
            .parse()
            .map_err(|_| format!("'{}' is not a clip id", rest.trim()))?;
        if id == 0 || id > u32::MAX as u64 {
            return Err(format!("clip id {id} out of range"));
        }
        return Ok(Command::Get(ClipId::new(id as u32)));
    }
    match line {
        "STATS" => Ok(Command::Stats),
        "SNAPSHOT" => Ok(Command::Snapshot),
        "QUIT" => Ok(Command::Quit),
        "" => Err("empty request".into()),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Format a `GET` reply.
pub fn format_get(outcome: &GetOutcome) -> String {
    if outcome.hit {
        format!("HIT {}", outcome.evictions)
    } else {
        format!(
            "MISS {} {}",
            if outcome.admitted { 1 } else { 0 },
            outcome.evictions
        )
    }
}

/// Parse a `GET` reply.
pub fn parse_get(line: &str) -> Result<GetOutcome, String> {
    let mut words = line.trim().split_ascii_whitespace();
    let malformed = || format!("malformed GET reply '{}'", line.trim());
    match words.next() {
        Some("HIT") => {
            let evictions = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(malformed)?;
            Ok(GetOutcome {
                hit: true,
                admitted: true,
                evictions,
            })
        }
        Some("MISS") => {
            let admitted = match words.next() {
                Some("0") => false,
                Some("1") => true,
                _ => return Err(malformed()),
            };
            let evictions = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(malformed)?;
            Ok(GetOutcome {
                hit: false,
                admitted,
                evictions,
            })
        }
        _ => Err(malformed()),
    }
}

/// Format a `STATS` reply.
pub fn format_stats(stats: &HitStats) -> String {
    format!(
        "STATS hits={} misses={} byte_hits={} byte_misses={} evictions={}",
        stats.hits,
        stats.misses,
        stats.byte_hits.as_u64(),
        stats.byte_misses.as_u64(),
        stats.evictions
    )
}

/// Parse a `STATS` reply.
pub fn parse_stats(line: &str) -> Result<HitStats, String> {
    let line = line.trim();
    let rest = line
        .strip_prefix("STATS ")
        .ok_or_else(|| format!("malformed STATS reply '{line}'"))?;
    let mut stats = HitStats::new();
    let mut seen = 0u32;
    for field in rest.split_ascii_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("malformed STATS field '{field}'"))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("non-numeric STATS field '{field}'"))?;
        match key {
            "hits" => stats.hits = value,
            "misses" => stats.misses = value,
            "byte_hits" => stats.byte_hits = clipcache_media::ByteSize::bytes(value),
            "byte_misses" => stats.byte_misses = clipcache_media::ByteSize::bytes(value),
            "evictions" => stats.evictions = value,
            other => return Err(format!("unknown STATS field '{other}'")),
        }
        seen += 1;
    }
    if seen != 5 {
        return Err(format!("STATS reply has {seen} fields, expected 5"));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipcache_media::ByteSize;

    #[test]
    fn commands_parse() {
        assert_eq!(parse_command("GET 17"), Ok(Command::Get(ClipId::new(17))));
        assert_eq!(parse_command("  GET 3  "), Ok(Command::Get(ClipId::new(3))));
        assert_eq!(parse_command("STATS"), Ok(Command::Stats));
        assert_eq!(parse_command("SNAPSHOT"), Ok(Command::Snapshot));
        assert_eq!(parse_command("QUIT"), Ok(Command::Quit));
    }

    #[test]
    fn bad_commands_rejected() {
        assert!(parse_command("GET").is_err());
        assert!(parse_command("GET zero").is_err());
        assert!(parse_command("GET 0").is_err());
        assert!(parse_command("GET 99999999999").is_err());
        assert!(parse_command("get 1").is_err()); // commands are uppercase
        assert!(parse_command("").is_err());
        assert!(parse_command("PUT 1").unwrap_err().contains("PUT"));
    }

    #[test]
    fn get_reply_round_trips() {
        for outcome in [
            GetOutcome {
                hit: true,
                admitted: true,
                evictions: 0,
            },
            GetOutcome {
                hit: false,
                admitted: true,
                evictions: 3,
            },
            GetOutcome {
                hit: false,
                admitted: false,
                evictions: 0,
            },
        ] {
            assert_eq!(parse_get(&format_get(&outcome)), Ok(outcome));
        }
        assert!(parse_get("HIT").is_err());
        assert!(parse_get("MISS 2 0").is_err());
        assert!(parse_get("ERR nope").is_err());
    }

    #[test]
    fn stats_reply_round_trips() {
        let mut stats = HitStats::new();
        stats.record(true, ByteSize::mb(10), 0);
        stats.record(false, ByteSize::mb(30), 2);
        let line = format_stats(&stats);
        assert_eq!(parse_stats(&line), Ok(stats));
        assert!(parse_stats("STATS hits=1").is_err());
        assert!(
            parse_stats("STATS hits=1 misses=x byte_hits=0 byte_misses=0 evictions=0").is_err()
        );
        assert!(parse_stats("nope").is_err());
    }
}
