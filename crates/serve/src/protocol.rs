//! The wire protocols spoken on the TCP front-end: the debuggable text
//! line protocol and the length-prefixed binary framing the pipelined
//! fast path uses.
//!
//! Both protocols coexist on one connection: the framer looks at the
//! next unconsumed byte — [`FRAME_MAGIC`] (0xB5, not valid ASCII, so
//! never the start of a text command) opens a binary frame, anything
//! else is a text line. Replies are always spoken in the protocol of
//! the request they answer, so a mixed session stays unambiguous.
//!
//! ## Text protocol
//!
//! One request per line, one reply line per request (`SNAPSHOT` replies
//! stay on a single line so clients never need framing beyond
//! `read_line`). The grammar (also documented in `docs/extending.md`):
//!
//! ```text
//! request   = "GET" SP clip-id | "STATS" | "SNAPSHOT" | "QUIT"
//!           | "GETRANGE" SP clip-id SP chunk ; chunk-granular residency probe
//!           | "PEERGET" SP clip-id          ; cluster peer fill (local only)
//!           | "VERSION"                     ; wire/schema version handshake
//!           | "POISON" SP clip-id           ; chaos servers only
//! clip-id   = 1*DIGIT                ; ≥ 1
//! chunk     = 1*DIGIT                ; 0-based chunk index
//!
//! reply     = "HIT" SP evicted              ; GET, clip was resident
//!           | "MISS" SP admitted SP evicted ; GET, clip was fetched
//!           | "PHIT" SP admitted SP evicted ; GET, local miss filled by a
//!                                           ; cluster peer (cluster servers
//!                                           ; only — a cluster hit)
//!           | "RHIT" SP resident SP total   ; GETRANGE, chunk resident
//!           | "RMISS" SP resident SP total  ; GETRANGE, chunk absent
//!           | "RPEER" SP had                ; PEERGET, peer-local outcome
//!           | "VERSION" SP "proto=" n SP "snapshot=" n SP "wal=" n
//!           | "STATS" SP "hits=" n SP "misses=" n SP "prefix_hits=" n
//!                     SP "byte_hits=" n SP "byte_misses=" n
//!                     SP "evictions=" n SP "recoveries=" n
//!                     SP "wal_replayed=" n SP "peer_hits=" n
//!                     SP "handoff_replayed=" n SP "breaker_open=" n
//!                     SP "shed=" n
//!           | "SNAPSHOT" SP json-array      ; one CacheSnapshot per shard
//!           | "POISONED" SP shard-index     ; POISON acknowledged
//!           | "BYE"                         ; QUIT acknowledged
//!           | "BUSY"                        ; GET shed by the overload
//!                                           ; governor — retry with backoff
//!           | "ERR" SP text                 ; malformed request / unknown
//!                                           ; clip / out-of-range chunk /
//!                                           ; refused operation
//! admitted  = "0" | "1"
//! had       = "0" | "1"                     ; peer had the clip resident
//! evicted   = 1*DIGIT                       ; clips evicted by this access
//! resident  = 1*DIGIT                       ; chunks of the head resident
//! total     = 1*DIGIT                       ; chunks in the clip
//! ```
//!
//! `PEERGET` is the cluster tier's peer-fill probe: it performs a full
//! *local* access on the receiving node (admitting on a miss — the
//! write-all half of read-any/write-all replication) and reports
//! whether the clip was already resident, but it never recurses into
//! another peer fetch, which is what keeps peer fill loop-free.
//! `VERSION` reports the protocol, snapshot, and WAL schema versions so
//! a version-skewed peer is refused by name during the cluster
//! handshake instead of failing later with a generic parse error.
//!
//! A `GETRANGE` whose chunk index is at or past the clip's chunk count
//! gets a loud `ERR` naming the index and the valid range — never a
//! stall, never a fabricated `RMISS`.
//!
//! ## Binary framing
//!
//! ```text
//! frame   = MAGIC(0xB5) kind(1) len(u32 LE) check(1) payload(len)
//! check   = MAGIC ^ kind ^ len[0] ^ len[1] ^ len[2] ^ len[3]
//! ```
//!
//! Request kinds: `GET` (payload: clip u32 LE), `STATS`, `SNAPSHOT`,
//! `POISON` (clip u32 LE), `QUIT`, `GETRANGE` (clip u32 LE + chunk u32
//! LE), `PEER_GET` (clip u32 LE), `HELLO` (empty). Reply kinds: `GET`
//! (flags byte — bit 0 hit, bit 1 admitted, bit 2 peer-filled — plus
//! evictions u64 LE), `RANGE` (hit u8 + resident u32 LE + total u32
//! LE), `PEER` (had u8), `HELLO` (proto + snapshot + wal, three u32
//! LE), `STATS` (twelve u64 LE), `SNAPSHOT` (UTF-8 JSON), `POISONED`
//! (u64 LE), `BYE`, `BUSY` (empty — the governor's shed reply), `ERR`
//! (UTF-8 message). Every request kind has a *fixed* payload length,
//! which is what makes corruption loud (see below).
//!
//! **A corrupted length header is never a silent truncation** —
//! mirroring the WAL's inflated-length fix: the header check byte makes
//! any bit flip in the 7-byte header a fatal [`FrameError`], and a
//! checksum-valid header whose length disagrees with its kind's fixed
//! size is refused before any payload is awaited. Truncated input is
//! only ever classified [`Decoded::Incomplete`] when the header itself
//! validates. Recoverable corruption (a header-only frame with a bogus
//! length — the chaos harness's binary garbage) consumes exactly the
//! header and gets a structured `ERR` frame; unrecoverable corruption
//! (bad check byte, unknown kind — the stream cannot be resynced)
//! closes the connection after the `ERR`.
//!
//! ## Totality
//!
//! Every parser in this module is total: any byte sequence (truncated
//! lines, embedded NULs, torn frame prefixes, bit-flipped headers,
//! garbage from the chaos harness) produces an `Err`/`Corrupt`, never a
//! panic — `tests/protocol_props.rs` pounds this with a malformed-input
//! corpus and random bytes. Malformed *requests* get an `ERR` reply and
//! the connection stays open; the server never answers garbage with a
//! bare disconnect.

use crate::shard::{GetOutcome, RangeOutcome};
use clipcache_media::ClipId;
use clipcache_sim::metrics::HitStats;

/// A parsed request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Access a clip through its shard.
    Get(ClipId),
    /// Probe whether one chunk of a clip is resident (0-based index).
    GetRange(ClipId, u32),
    /// Cluster peer fill: a full local access on behalf of a peer
    /// (admits on miss — write-all), reporting whether the clip was
    /// already resident. Never recurses into another peer fetch.
    PeerGet(ClipId),
    /// Report the wire/schema versions (the cluster handshake).
    Version,
    /// Report merged hit statistics.
    Stats,
    /// Snapshot every shard.
    Snapshot,
    /// Inject a shard-poisoning fault (chaos-enabled servers only).
    Poison(ClipId),
    /// Close the connection.
    Quit,
}

/// Server-side statistics as the `STATS` reply carries them: the merged
/// hit counters plus the service's poison-recovery count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Merged per-shard hit statistics.
    pub stats: HitStats,
    /// Poisoned-shard recoveries performed since startup.
    pub recoveries: u64,
    /// WAL records replayed when the durable stores were opened (zero
    /// for an in-memory server).
    pub wal_replayed: u64,
    /// Local misses filled from a cluster peer instead of the origin
    /// (zero for a non-cluster server).
    pub peer_hits: u64,
    /// Hinted-handoff replays onto healed peers (zero for a
    /// non-cluster server).
    pub handoff_replayed: u64,
    /// Peers this node currently holds Open behind a circuit breaker
    /// (zero for a non-cluster server).
    pub breaker_open: u64,
    /// GETs shed with `BUSY` by the overload governor.
    pub shed: u64,
}

/// The wire-visible protocol version. Version 4 added the degraded-mode
/// surface — the `BUSY` shed reply and the `handoff_replayed` /
/// `breaker_open` / `shed` STATS fields; version 3 added the cluster
/// verbs (`PEERGET`, `VERSION`/`HELLO`), the `PHIT` reply, and the
/// `peer_hits` STATS field; version 2 added binary framing and the
/// chunk-granular verbs; version 1 was the original text protocol.
pub const PROTOCOL_VERSION: u32 = 4;

/// The schema versions a node reports during the cluster handshake.
///
/// Cooperating peers exchange snapshots of durable state indirectly
/// (a recovered node replays checkpoints and WALs its peers must be
/// able to reason about), so all three versions must match before any
/// peer fill happens; [`WireVersions::check_matches`] names the first
/// mismatch loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireVersions {
    /// [`PROTOCOL_VERSION`].
    pub protocol: u32,
    /// `clipcache_core::snapshot::SNAPSHOT_VERSION`.
    pub snapshot: u32,
    /// [`crate::persist::WAL_VERSION`].
    pub wal: u32,
}

impl WireVersions {
    /// The versions this build speaks.
    pub fn current() -> Self {
        WireVersions {
            protocol: PROTOCOL_VERSION,
            snapshot: clipcache_core::snapshot::SNAPSHOT_VERSION as u32,
            wal: crate::persist::WAL_VERSION as u32,
        }
    }

    /// Refuse `other` unless every version matches, naming the first
    /// skewed component and both values.
    pub fn check_matches(&self, other: &WireVersions) -> Result<(), String> {
        for (name, ours, theirs) in [
            ("protocol", self.protocol, other.protocol),
            ("snapshot", self.snapshot, other.snapshot),
            ("wal", self.wal, other.wal),
        ] {
            if ours != theirs {
                return Err(format!(
                    "{name} version skew: peer speaks {name} version {theirs}, \
                     this build speaks {ours}"
                ));
            }
        }
        Ok(())
    }
}

fn parse_clip_id(raw: &str) -> Result<ClipId, String> {
    let raw = raw.trim();
    let id: u64 = raw
        .parse()
        .map_err(|_| format!("'{raw}' is not a clip id"))?;
    if id == 0 || id > u32::MAX as u64 {
        return Err(format!("clip id {id} out of range"));
    }
    Ok(ClipId::new(id as u32))
}

/// Parse one request line (already stripped of the newline).
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    if let Some(rest) = line.strip_prefix("GETRANGE ") {
        let mut words = rest.split_ascii_whitespace();
        let clip = parse_clip_id(words.next().unwrap_or(""))?;
        let chunk = words
            .next()
            .and_then(|w| w.parse::<u32>().ok())
            .ok_or_else(|| format!("GETRANGE needs a chunk index: '{line}'"))?;
        if words.next().is_some() {
            return Err(format!("trailing words after GETRANGE: '{line}'"));
        }
        return Ok(Command::GetRange(clip, chunk));
    }
    if let Some(rest) = line.strip_prefix("GET ") {
        return Ok(Command::Get(parse_clip_id(rest)?));
    }
    if let Some(rest) = line.strip_prefix("PEERGET ") {
        return Ok(Command::PeerGet(parse_clip_id(rest)?));
    }
    if let Some(rest) = line.strip_prefix("POISON ") {
        return Ok(Command::Poison(parse_clip_id(rest)?));
    }
    match line {
        "STATS" => Ok(Command::Stats),
        "SNAPSHOT" => Ok(Command::Snapshot),
        "VERSION" => Ok(Command::Version),
        "QUIT" => Ok(Command::Quit),
        "" => Err("empty request".into()),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Format a request line (the inverse of [`parse_command`]).
pub fn format_command(command: &Command) -> String {
    match command {
        Command::Get(clip) => format!("GET {}", clip.get()),
        Command::GetRange(clip, chunk) => format!("GETRANGE {} {chunk}", clip.get()),
        Command::PeerGet(clip) => format!("PEERGET {}", clip.get()),
        Command::Version => "VERSION".into(),
        Command::Stats => "STATS".into(),
        Command::Snapshot => "SNAPSHOT".into(),
        Command::Poison(clip) => format!("POISON {}", clip.get()),
        Command::Quit => "QUIT".into(),
    }
}

/// Format a `GET` reply. A local hit is `HIT`; a local miss is `PHIT`
/// when a cluster peer filled it (a cluster hit) and `MISS` otherwise —
/// non-cluster servers never emit `PHIT`, which is what keeps the
/// single-node degenerate cluster byte-identical to the serial anchor.
pub fn format_get(outcome: &GetOutcome) -> String {
    if outcome.hit {
        format!("HIT {}", outcome.evictions)
    } else {
        format!(
            "{} {} {}",
            if outcome.peer { "PHIT" } else { "MISS" },
            if outcome.admitted { 1 } else { 0 },
            outcome.evictions
        )
    }
}

/// Parse a `GET` reply.
pub fn parse_get(line: &str) -> Result<GetOutcome, String> {
    let mut words = line.trim().split_ascii_whitespace();
    let malformed = || format!("malformed GET reply '{}'", line.trim());
    let outcome = match words.next() {
        Some("HIT") => {
            let evictions = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(malformed)?;
            GetOutcome {
                hit: true,
                admitted: true,
                evictions,
                peer: false,
            }
        }
        Some(head @ ("MISS" | "PHIT")) => {
            let admitted = match words.next() {
                Some("0") => false,
                Some("1") => true,
                _ => return Err(malformed()),
            };
            let evictions = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(malformed)?;
            GetOutcome {
                hit: false,
                admitted,
                evictions,
                peer: head == "PHIT",
            }
        }
        _ => return Err(malformed()),
    };
    if words.next().is_some() {
        return Err(malformed());
    }
    Ok(outcome)
}

/// Format a `PEERGET` reply: whether the peer already held the clip.
pub fn format_peer(had: bool) -> String {
    format!("RPEER {}", if had { 1 } else { 0 })
}

/// Parse a `PEERGET` reply.
pub fn parse_peer(line: &str) -> Result<bool, String> {
    let line = line.trim();
    let malformed = || format!("malformed PEERGET reply '{line}'");
    let rest = line.strip_prefix("RPEER ").ok_or_else(malformed)?;
    match rest.trim() {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(malformed()),
    }
}

/// Format a `VERSION` reply.
pub fn format_version(versions: &WireVersions) -> String {
    format!(
        "VERSION proto={} snapshot={} wal={}",
        versions.protocol, versions.snapshot, versions.wal
    )
}

/// Parse a `VERSION` reply. Strict like `parse_stats`: exactly the
/// three known fields, so a future build adding one fails loudly here
/// instead of silently defaulting.
pub fn parse_version(line: &str) -> Result<WireVersions, String> {
    let line = line.trim();
    let rest = line
        .strip_prefix("VERSION ")
        .ok_or_else(|| format!("malformed VERSION reply '{line}'"))?;
    let mut versions = WireVersions {
        protocol: 0,
        snapshot: 0,
        wal: 0,
    };
    let mut seen = 0u32;
    for field in rest.split_ascii_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("malformed VERSION field '{field}'"))?;
        let value: u32 = value
            .parse()
            .map_err(|_| format!("non-numeric VERSION field '{field}'"))?;
        match key {
            "proto" => versions.protocol = value,
            "snapshot" => versions.snapshot = value,
            "wal" => versions.wal = value,
            other => return Err(format!("unknown VERSION field '{other}'")),
        }
        seen += 1;
    }
    if seen != 3 {
        return Err(format!("VERSION reply has {seen} fields, expected 3"));
    }
    Ok(versions)
}

/// Format a `GETRANGE` reply.
pub fn format_range(outcome: &RangeOutcome) -> String {
    format!(
        "{} {} {}",
        if outcome.hit { "RHIT" } else { "RMISS" },
        outcome.resident,
        outcome.total
    )
}

/// Parse a `GETRANGE` reply.
pub fn parse_range(line: &str) -> Result<RangeOutcome, String> {
    let mut words = line.trim().split_ascii_whitespace();
    let malformed = || format!("malformed GETRANGE reply '{}'", line.trim());
    let hit = match words.next() {
        Some("RHIT") => true,
        Some("RMISS") => false,
        _ => return Err(malformed()),
    };
    let resident: u32 = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(malformed)?;
    let total: u32 = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(malformed)?;
    if words.next().is_some() || resident > total {
        return Err(malformed());
    }
    Ok(RangeOutcome {
        hit,
        resident,
        total,
    })
}

/// Format a `STATS` reply.
pub fn format_stats(stats: &ServerStats) -> String {
    format!(
        "STATS hits={} misses={} prefix_hits={} byte_hits={} byte_misses={} evictions={} \
         recoveries={} wal_replayed={} peer_hits={} handoff_replayed={} breaker_open={} shed={}",
        stats.stats.hits,
        stats.stats.misses,
        stats.stats.prefix_hits,
        stats.stats.byte_hits.as_u64(),
        stats.stats.byte_misses.as_u64(),
        stats.stats.evictions,
        stats.recoveries,
        stats.wal_replayed,
        stats.peer_hits,
        stats.handoff_replayed,
        stats.breaker_open,
        stats.shed
    )
}

/// Parse a `STATS` reply.
pub fn parse_stats(line: &str) -> Result<ServerStats, String> {
    let line = line.trim();
    let rest = line
        .strip_prefix("STATS ")
        .ok_or_else(|| format!("malformed STATS reply '{line}'"))?;
    let mut stats = HitStats::new();
    let mut server = ServerStats::default();
    let mut seen = 0u32;
    for field in rest.split_ascii_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("malformed STATS field '{field}'"))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("non-numeric STATS field '{field}'"))?;
        match key {
            "hits" => stats.hits = value,
            "misses" => stats.misses = value,
            "prefix_hits" => stats.prefix_hits = value,
            "byte_hits" => stats.byte_hits = clipcache_media::ByteSize::bytes(value),
            "byte_misses" => stats.byte_misses = clipcache_media::ByteSize::bytes(value),
            "evictions" => stats.evictions = value,
            "recoveries" => server.recoveries = value,
            "wal_replayed" => server.wal_replayed = value,
            "peer_hits" => server.peer_hits = value,
            "handoff_replayed" => server.handoff_replayed = value,
            "breaker_open" => server.breaker_open = value,
            "shed" => server.shed = value,
            other => return Err(format!("unknown STATS field '{other}'")),
        }
        seen += 1;
    }
    if seen != 12 {
        return Err(format!("STATS reply has {seen} fields, expected 12"));
    }
    server.stats = stats;
    Ok(server)
}

/// Format a `POISON` acknowledgement.
pub fn format_poisoned(shard: usize) -> String {
    format!("POISONED {shard}")
}

/// Parse a `POISON` acknowledgement, returning the shard index.
pub fn parse_poisoned(line: &str) -> Result<usize, String> {
    let line = line.trim();
    let malformed = || format!("malformed POISONED reply '{line}'");
    let rest = line.strip_prefix("POISONED ").ok_or_else(malformed)?;
    let mut words = rest.split_ascii_whitespace();
    let shard = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(malformed)?;
    if words.next().is_some() {
        return Err(malformed());
    }
    Ok(shard)
}

/// First byte of every binary frame. 0xB5 is not valid ASCII (and not
/// valid UTF-8 as a leading byte), so it can never begin a text command
/// — the per-message protocol auto-detect hinges on this.
pub const FRAME_MAGIC: u8 = 0xB5;

/// Bytes in a frame header: magic, kind, length (u32 LE), check.
pub const FRAME_HEADER_BYTES: usize = 7;

/// Largest accepted variable-length frame payload (`SNAPSHOT`/`ERR`
/// replies). Request payloads are all fixed-size and tiny.
pub const MAX_FRAME_PAYLOAD: usize = 16 * 1024 * 1024;

const KIND_GET: u8 = 0x01;
const KIND_STATS: u8 = 0x02;
const KIND_SNAPSHOT: u8 = 0x03;
const KIND_POISON: u8 = 0x04;
const KIND_QUIT: u8 = 0x05;
const KIND_GETRANGE: u8 = 0x06;
const KIND_PEER_GET: u8 = 0x07;
const KIND_HELLO: u8 = 0x08;
const KIND_R_GET: u8 = 0x81;
const KIND_R_STATS: u8 = 0x82;
const KIND_R_SNAPSHOT: u8 = 0x83;
const KIND_R_POISONED: u8 = 0x84;
const KIND_R_BYE: u8 = 0x85;
const KIND_R_RANGE: u8 = 0x86;
const KIND_R_PEER: u8 = 0x87;
const KIND_R_HELLO: u8 = 0x88;
const KIND_R_BUSY: u8 = 0x89;
const KIND_R_ERR: u8 = 0xC0;

/// One reply, protocol-independent: the server builds these and renders
/// them as a text line or a binary frame depending on how the request
/// arrived; the binary client decodes frames back into them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Outcome of a `GET`.
    Get(GetOutcome),
    /// Outcome of a `GETRANGE` residency probe.
    Range(RangeOutcome),
    /// Outcome of a `PEERGET`: whether the peer already held the clip.
    Peer(bool),
    /// The wire/schema versions (`VERSION`/`HELLO` handshake).
    Version(WireVersions),
    /// Merged server statistics.
    Stats(ServerStats),
    /// The per-shard snapshot JSON array.
    Snapshot(String),
    /// `POISON` acknowledged; the poisoned shard index.
    Poisoned(u64),
    /// `QUIT` acknowledged.
    Bye,
    /// The overload governor shed this `GET`: the server is past its
    /// high watermark and the client should back off and retry —
    /// unlike `Err`, the request was well-formed and the connection
    /// stays healthy.
    Busy,
    /// Structured refusal.
    Err(String),
}

/// A frame decoding failure. Always loud: the caller must answer with a
/// structured `ERR` (and, when `fatal`, close the connection) — never
/// silently skip bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// Bytes of input this corrupt frame accounts for. Non-fatal errors
    /// consume exactly this much and the stream stays parseable.
    pub consumed: usize,
    /// Whether the stream can still be resynced. A checksum-valid
    /// header whose length disagrees with its kind's fixed size is
    /// recoverable (consume the header, keep going — the chaos
    /// harness's binary garbage takes this path); a corrupt check byte
    /// or unknown kind is not, because the length cannot be trusted.
    pub fatal: bool,
    /// Human-readable reason, surfaced in the `ERR` reply.
    pub reason: String,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

/// Outcome of a decode attempt over a (possibly still growing) buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded<T> {
    /// The buffer holds a torn prefix of a frame whose header (where
    /// present) validates; read more bytes and retry.
    Incomplete,
    /// One whole frame decoded; `consumed` bytes of the buffer are
    /// accounted for.
    Frame { value: T, consumed: usize },
}

fn frame_check(kind: u8, len: [u8; 4]) -> u8 {
    FRAME_MAGIC ^ kind ^ len[0] ^ len[1] ^ len[2] ^ len[3]
}

fn push_header(out: &mut Vec<u8>, kind: u8, len: u32) {
    let len_bytes = len.to_le_bytes();
    out.push(FRAME_MAGIC);
    out.push(kind);
    out.extend_from_slice(&len_bytes);
    out.push(frame_check(kind, len_bytes));
}

/// Append `command` to `out` as one binary frame. Batched pipelining is
/// just repeated calls before a single write.
pub fn encode_command(command: &Command, out: &mut Vec<u8>) {
    match command {
        Command::Get(clip) => {
            push_header(out, KIND_GET, 4);
            out.extend_from_slice(&clip.get().to_le_bytes());
        }
        Command::GetRange(clip, chunk) => {
            push_header(out, KIND_GETRANGE, 8);
            out.extend_from_slice(&clip.get().to_le_bytes());
            out.extend_from_slice(&chunk.to_le_bytes());
        }
        Command::PeerGet(clip) => {
            push_header(out, KIND_PEER_GET, 4);
            out.extend_from_slice(&clip.get().to_le_bytes());
        }
        Command::Version => push_header(out, KIND_HELLO, 0),
        Command::Stats => push_header(out, KIND_STATS, 0),
        Command::Snapshot => push_header(out, KIND_SNAPSHOT, 0),
        Command::Poison(clip) => {
            push_header(out, KIND_POISON, 4);
            out.extend_from_slice(&clip.get().to_le_bytes());
        }
        Command::Quit => push_header(out, KIND_QUIT, 0),
    }
}

/// Append `reply` to `out` as one binary frame.
pub fn encode_reply(reply: &Reply, out: &mut Vec<u8>) {
    match reply {
        Reply::Get(outcome) => {
            push_header(out, KIND_R_GET, 9);
            let flags =
                (outcome.hit as u8) | ((outcome.admitted as u8) << 1) | ((outcome.peer as u8) << 2);
            out.push(flags);
            out.extend_from_slice(&(outcome.evictions as u64).to_le_bytes());
        }
        Reply::Range(outcome) => {
            push_header(out, KIND_R_RANGE, 9);
            out.push(outcome.hit as u8);
            out.extend_from_slice(&outcome.resident.to_le_bytes());
            out.extend_from_slice(&outcome.total.to_le_bytes());
        }
        Reply::Peer(had) => {
            push_header(out, KIND_R_PEER, 1);
            out.push(*had as u8);
        }
        Reply::Version(versions) => {
            push_header(out, KIND_R_HELLO, 12);
            out.extend_from_slice(&versions.protocol.to_le_bytes());
            out.extend_from_slice(&versions.snapshot.to_le_bytes());
            out.extend_from_slice(&versions.wal.to_le_bytes());
        }
        Reply::Stats(stats) => {
            push_header(out, KIND_R_STATS, 96);
            for v in [
                stats.stats.hits,
                stats.stats.misses,
                stats.stats.prefix_hits,
                stats.stats.byte_hits.as_u64(),
                stats.stats.byte_misses.as_u64(),
                stats.stats.evictions,
                stats.recoveries,
                stats.wal_replayed,
                stats.peer_hits,
                stats.handoff_replayed,
                stats.breaker_open,
                stats.shed,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Reply::Snapshot(json) => {
            push_header(out, KIND_R_SNAPSHOT, json.len() as u32);
            out.extend_from_slice(json.as_bytes());
        }
        Reply::Poisoned(shard) => {
            push_header(out, KIND_R_POISONED, 8);
            out.extend_from_slice(&shard.to_le_bytes());
        }
        Reply::Bye => push_header(out, KIND_R_BYE, 0),
        Reply::Busy => push_header(out, KIND_R_BUSY, 0),
        Reply::Err(msg) => {
            let msg = &msg.as_bytes()[..msg.len().min(MAX_FRAME_PAYLOAD)];
            push_header(out, KIND_R_ERR, msg.len() as u32);
            out.extend_from_slice(msg);
        }
    }
}

/// A header-only `GET` frame with a deliberately impossible length and
/// a *valid* check byte — the chaos harness's binary garbage. Exercises
/// the recoverable corrupt-length path: the server answers `ERR` after
/// consuming exactly the header, and the connection (plus every frame
/// queued behind the garbage) survives.
pub fn corrupt_length_get_frame() -> [u8; FRAME_HEADER_BYTES] {
    let len = (MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes();
    [
        FRAME_MAGIC,
        KIND_GET,
        len[0],
        len[1],
        len[2],
        len[3],
        frame_check(KIND_GET, len),
    ]
}

/// The fixed payload length for `kind`, or `None` for variable-length
/// (reply-only) kinds.
fn fixed_len(kind: u8) -> Option<u32> {
    match kind {
        KIND_GET | KIND_POISON | KIND_PEER_GET => Some(4),
        KIND_GETRANGE => Some(8),
        KIND_STATS | KIND_SNAPSHOT | KIND_QUIT | KIND_HELLO | KIND_R_BYE | KIND_R_BUSY => Some(0),
        KIND_R_GET | KIND_R_RANGE => Some(9),
        KIND_R_PEER => Some(1),
        KIND_R_HELLO => Some(12),
        KIND_R_STATS => Some(96),
        KIND_R_POISONED => Some(8),
        KIND_R_SNAPSHOT | KIND_R_ERR => None,
        _ => Some(0), // unknown kinds are rejected before this matters
    }
}

fn corrupt(consumed: usize, fatal: bool, reason: impl Into<String>) -> FrameError {
    FrameError {
        consumed,
        fatal,
        reason: reason.into(),
    }
}

/// Validate the 7-byte header at the start of `buf` and return
/// `(kind, payload_len)`. `request` restricts the accepted kinds.
fn decode_header(buf: &[u8], request: bool) -> Result<Decoded<(u8, usize)>, FrameError> {
    if buf.is_empty() || buf[0] != FRAME_MAGIC {
        return Err(corrupt(0, true, "not a binary frame"));
    }
    if buf.len() < FRAME_HEADER_BYTES {
        return Ok(Decoded::Incomplete);
    }
    let kind = buf[1];
    let len_bytes = [buf[2], buf[3], buf[4], buf[5]];
    if buf[6] != frame_check(kind, len_bytes) {
        // The length cannot be trusted, so neither can any resync.
        return Err(corrupt(
            FRAME_HEADER_BYTES,
            true,
            "corrupt frame header (check byte mismatch)",
        ));
    }
    let known = if request {
        matches!(
            kind,
            KIND_GET
                | KIND_GETRANGE
                | KIND_PEER_GET
                | KIND_HELLO
                | KIND_STATS
                | KIND_SNAPSHOT
                | KIND_POISON
                | KIND_QUIT
        )
    } else {
        matches!(
            kind,
            KIND_R_GET
                | KIND_R_RANGE
                | KIND_R_PEER
                | KIND_R_HELLO
                | KIND_R_STATS
                | KIND_R_SNAPSHOT
                | KIND_R_POISONED
                | KIND_R_BYE
                | KIND_R_BUSY
                | KIND_R_ERR
        )
    };
    if !known {
        return Err(corrupt(
            FRAME_HEADER_BYTES,
            true,
            format!(
                "unknown {} frame kind 0x{kind:02X}",
                if request { "request" } else { "reply" }
            ),
        ));
    }
    let len = u32::from_le_bytes(len_bytes);
    match fixed_len(kind) {
        // A fixed-size kind with the wrong length is refused BEFORE any
        // payload is awaited: a bit-flipped length header must be loud,
        // never a silent truncation (the WAL's inflated-length rule).
        Some(expected) if len != expected => Err(corrupt(
            FRAME_HEADER_BYTES,
            false,
            format!("corrupt frame length {len} for kind 0x{kind:02X} (expected {expected})"),
        )),
        None if len as usize > MAX_FRAME_PAYLOAD => Err(corrupt(
            FRAME_HEADER_BYTES,
            false,
            format!("frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap"),
        )),
        _ => Ok(Decoded::Frame {
            value: (kind, len as usize),
            consumed: FRAME_HEADER_BYTES,
        }),
    }
}

/// Decode one request frame from the start of `buf`.
pub fn decode_command(buf: &[u8]) -> Result<Decoded<Command>, FrameError> {
    let (kind, len) = match decode_header(buf, true)? {
        Decoded::Incomplete => return Ok(Decoded::Incomplete),
        Decoded::Frame { value, .. } => value,
    };
    let total = FRAME_HEADER_BYTES + len;
    if buf.len() < total {
        return Ok(Decoded::Incomplete);
    }
    let payload = &buf[FRAME_HEADER_BYTES..total];
    let clip = |payload: &[u8]| -> Result<ClipId, FrameError> {
        let id = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
        if id == 0 {
            return Err(corrupt(total, false, "clip id 0 out of range"));
        }
        Ok(ClipId::new(id))
    };
    let value = match kind {
        KIND_GET => Command::Get(clip(payload)?),
        KIND_GETRANGE => {
            let chunk = u32::from_le_bytes([payload[4], payload[5], payload[6], payload[7]]);
            Command::GetRange(clip(payload)?, chunk)
        }
        KIND_PEER_GET => Command::PeerGet(clip(payload)?),
        KIND_POISON => Command::Poison(clip(payload)?),
        KIND_HELLO => Command::Version,
        KIND_STATS => Command::Stats,
        KIND_SNAPSHOT => Command::Snapshot,
        _ => Command::Quit,
    };
    Ok(Decoded::Frame {
        value,
        consumed: total,
    })
}

/// Decode one reply frame from the start of `buf`.
pub fn decode_reply(buf: &[u8]) -> Result<Decoded<Reply>, FrameError> {
    let (kind, len) = match decode_header(buf, false)? {
        Decoded::Incomplete => return Ok(Decoded::Incomplete),
        Decoded::Frame { value, .. } => value,
    };
    let total = FRAME_HEADER_BYTES + len;
    if buf.len() < total {
        return Ok(Decoded::Incomplete);
    }
    let payload = &buf[FRAME_HEADER_BYTES..total];
    let u64_at = |at: usize| {
        u64::from_le_bytes([
            payload[at],
            payload[at + 1],
            payload[at + 2],
            payload[at + 3],
            payload[at + 4],
            payload[at + 5],
            payload[at + 6],
            payload[at + 7],
        ])
    };
    let value = match kind {
        KIND_R_GET => {
            let flags = payload[0];
            if flags & !0b111 != 0 {
                return Err(corrupt(total, true, "corrupt GET reply flags"));
            }
            let hit = flags & 1 != 0;
            let admitted = flags & 2 != 0;
            let peer = flags & 4 != 0;
            if hit && !admitted {
                return Err(corrupt(
                    total,
                    true,
                    "corrupt GET reply (hit but not admitted)",
                ));
            }
            if hit && peer {
                return Err(corrupt(
                    total,
                    true,
                    "corrupt GET reply (a local hit cannot be peer-filled)",
                ));
            }
            Reply::Get(GetOutcome {
                hit,
                admitted,
                evictions: u64_at(1) as usize,
                peer,
            })
        }
        KIND_R_RANGE => {
            if payload[0] > 1 {
                return Err(corrupt(total, true, "corrupt GETRANGE reply hit byte"));
            }
            let resident = u32::from_le_bytes([payload[1], payload[2], payload[3], payload[4]]);
            let chunk_total = u32::from_le_bytes([payload[5], payload[6], payload[7], payload[8]]);
            if resident > chunk_total {
                return Err(corrupt(
                    total,
                    true,
                    "corrupt GETRANGE reply (resident prefix exceeds total chunks)",
                ));
            }
            Reply::Range(RangeOutcome {
                hit: payload[0] == 1,
                resident,
                total: chunk_total,
            })
        }
        KIND_R_PEER => {
            if payload[0] > 1 {
                return Err(corrupt(total, true, "corrupt PEERGET reply byte"));
            }
            Reply::Peer(payload[0] == 1)
        }
        KIND_R_HELLO => {
            let u32_at = |at: usize| {
                u32::from_le_bytes([
                    payload[at],
                    payload[at + 1],
                    payload[at + 2],
                    payload[at + 3],
                ])
            };
            Reply::Version(WireVersions {
                protocol: u32_at(0),
                snapshot: u32_at(4),
                wal: u32_at(8),
            })
        }
        KIND_R_STATS => Reply::Stats(ServerStats {
            stats: HitStats {
                hits: u64_at(0),
                misses: u64_at(8),
                prefix_hits: u64_at(16),
                byte_hits: clipcache_media::ByteSize::bytes(u64_at(24)),
                byte_misses: clipcache_media::ByteSize::bytes(u64_at(32)),
                evictions: u64_at(40),
            },
            recoveries: u64_at(48),
            wal_replayed: u64_at(56),
            peer_hits: u64_at(64),
            handoff_replayed: u64_at(72),
            breaker_open: u64_at(80),
            shed: u64_at(88),
        }),
        KIND_R_SNAPSHOT => Reply::Snapshot(
            String::from_utf8(payload.to_vec())
                .map_err(|_| corrupt(total, true, "SNAPSHOT reply is not UTF-8"))?,
        ),
        KIND_R_POISONED => Reply::Poisoned(u64_at(0)),
        KIND_R_BYE => Reply::Bye,
        KIND_R_BUSY => Reply::Busy,
        _ => Reply::Err(String::from_utf8_lossy(payload).into_owned()),
    };
    Ok(Decoded::Frame {
        value,
        consumed: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipcache_media::ByteSize;

    #[test]
    fn commands_parse() {
        assert_eq!(parse_command("GET 17"), Ok(Command::Get(ClipId::new(17))));
        assert_eq!(parse_command("  GET 3  "), Ok(Command::Get(ClipId::new(3))));
        assert_eq!(parse_command("STATS"), Ok(Command::Stats));
        assert_eq!(parse_command("SNAPSHOT"), Ok(Command::Snapshot));
        assert_eq!(parse_command("QUIT"), Ok(Command::Quit));
        assert_eq!(
            parse_command("POISON 9"),
            Ok(Command::Poison(ClipId::new(9)))
        );
        assert_eq!(
            parse_command("GETRANGE 4 17"),
            Ok(Command::GetRange(ClipId::new(4), 17))
        );
        assert_eq!(
            parse_command("GETRANGE 4 0"),
            Ok(Command::GetRange(ClipId::new(4), 0))
        );
        assert_eq!(
            parse_command("PEERGET 12"),
            Ok(Command::PeerGet(ClipId::new(12)))
        );
        assert_eq!(parse_command("VERSION"), Ok(Command::Version));
    }

    #[test]
    fn commands_round_trip() {
        for command in [
            Command::Get(ClipId::new(1)),
            Command::Get(ClipId::new(u32::MAX)),
            Command::GetRange(ClipId::new(7), 3),
            Command::GetRange(ClipId::new(1), u32::MAX),
            Command::PeerGet(ClipId::new(23)),
            Command::Version,
            Command::Stats,
            Command::Snapshot,
            Command::Poison(ClipId::new(42)),
            Command::Quit,
        ] {
            assert_eq!(parse_command(&format_command(&command)), Ok(command));
        }
    }

    #[test]
    fn bad_commands_rejected() {
        assert!(parse_command("GET").is_err());
        assert!(parse_command("GET zero").is_err());
        assert!(parse_command("GET 0").is_err());
        assert!(parse_command("GET 99999999999").is_err());
        assert!(parse_command("get 1").is_err()); // commands are uppercase
        assert!(parse_command("").is_err());
        assert!(parse_command("POISON").is_err());
        assert!(parse_command("POISON 0").is_err());
        assert!(parse_command("PUT 1").unwrap_err().contains("PUT"));
        assert!(parse_command("GETRANGE").is_err());
        assert!(parse_command("GETRANGE 1").is_err());
        assert!(parse_command("GETRANGE 0 1").is_err());
        assert!(parse_command("GETRANGE 1 x").is_err());
        assert!(parse_command("GETRANGE 1 -1").is_err());
        assert!(parse_command("GETRANGE 1 2 3").is_err());
        assert!(parse_command("PEERGET").is_err());
        assert!(parse_command("PEERGET 0").is_err());
        assert!(parse_command("VERSION 2").is_err());
    }

    #[test]
    fn range_reply_round_trips() {
        for outcome in [
            RangeOutcome {
                hit: true,
                resident: 5,
                total: 5,
            },
            RangeOutcome {
                hit: true,
                resident: 2,
                total: 9,
            },
            RangeOutcome {
                hit: false,
                resident: 0,
                total: 35,
            },
        ] {
            assert_eq!(parse_range(&format_range(&outcome)), Ok(outcome));
        }
        assert!(parse_range("RHIT").is_err());
        assert!(parse_range("RHIT 1").is_err());
        assert!(parse_range("RMISS 1 2 3").is_err());
        assert!(parse_range("RHIT 6 5").is_err(), "resident beyond total");
        assert!(parse_range("HIT 0").is_err());
    }

    #[test]
    fn get_reply_round_trips() {
        for outcome in [
            GetOutcome {
                hit: true,
                admitted: true,
                evictions: 0,
                peer: false,
            },
            GetOutcome {
                hit: false,
                admitted: true,
                evictions: 3,
                peer: false,
            },
            GetOutcome {
                hit: false,
                admitted: false,
                evictions: 0,
                peer: false,
            },
            // Peer-filled: a local miss the cluster turned into a hit.
            GetOutcome {
                hit: false,
                admitted: true,
                evictions: 2,
                peer: true,
            },
            GetOutcome {
                hit: false,
                admitted: false,
                evictions: 0,
                peer: true,
            },
        ] {
            assert_eq!(parse_get(&format_get(&outcome)), Ok(outcome));
        }
        assert!(format_get(&GetOutcome {
            hit: false,
            admitted: true,
            evictions: 1,
            peer: true,
        })
        .starts_with("PHIT "));
        assert!(parse_get("HIT").is_err());
        assert!(parse_get("HIT 1 2").is_err());
        assert!(parse_get("MISS 2 0").is_err());
        assert!(parse_get("PHIT 2 0").is_err());
        assert!(parse_get("PHIT").is_err());
        assert!(parse_get("ERR nope").is_err());
    }

    #[test]
    fn peer_reply_round_trips() {
        assert_eq!(parse_peer(&format_peer(true)), Ok(true));
        assert_eq!(parse_peer(&format_peer(false)), Ok(false));
        assert!(parse_peer("RPEER").is_err());
        assert!(parse_peer("RPEER 2").is_err());
        assert!(parse_peer("HIT 0").is_err());
    }

    #[test]
    fn version_reply_round_trips_and_skew_is_named() {
        let ours = WireVersions::current();
        assert_eq!(ours.protocol, PROTOCOL_VERSION);
        let line = format_version(&ours);
        assert!(line.starts_with("VERSION proto="));
        assert_eq!(parse_version(&line), Ok(ours));
        assert!(parse_version("VERSION proto=3").is_err(), "missing fields");
        assert!(parse_version("VERSION proto=3 snapshot=2 wal=x").is_err());
        assert!(parse_version("VERSION proto=3 snapshot=2 wal=2 extra=1").is_err());
        // A skewed peer is refused with the component named.
        assert!(ours.check_matches(&ours).is_ok());
        let skewed = WireVersions { wal: 1, ..ours };
        let err = ours.check_matches(&skewed).unwrap_err();
        assert!(
            err.contains("wal version skew"),
            "names the component: {err}"
        );
        assert!(err.contains("version 1"), "names both versions: {err}");
    }

    #[test]
    fn stats_reply_round_trips() {
        let mut stats = HitStats::new();
        stats.record(true, ByteSize::mb(10), 0);
        stats.record(false, ByteSize::mb(30), 2);
        let server = ServerStats {
            stats,
            recoveries: 3,
            wal_replayed: 41,
            peer_hits: 7,
            handoff_replayed: 5,
            breaker_open: 1,
            shed: 13,
        };
        let line = format_stats(&server);
        assert!(line.contains("recoveries=3"));
        assert!(line.contains("wal_replayed=41"));
        assert!(line.contains("prefix_hits=0"));
        assert!(line.contains("peer_hits=7"));
        assert!(line.contains("handoff_replayed=5"));
        assert!(line.contains("breaker_open=1"));
        assert!(line.contains("shed=13"));
        assert_eq!(parse_stats(&line), Ok(server));
        assert!(parse_stats("STATS hits=1").is_err());
        assert!(parse_stats(
            "STATS hits=1 misses=x prefix_hits=0 byte_hits=0 byte_misses=0 evictions=0 \
             recoveries=0 wal_replayed=0 peer_hits=0 handoff_replayed=0 breaker_open=0 shed=0"
        )
        .is_err());
        // Older wire formats (five through nine fields, including the
        // pre-governor one without the degraded counters) are gone, not
        // silently defaulted.
        assert!(
            parse_stats("STATS hits=1 misses=0 byte_hits=0 byte_misses=0 evictions=0").is_err()
        );
        assert!(parse_stats(
            "STATS hits=1 misses=0 byte_hits=0 byte_misses=0 evictions=0 recoveries=0"
        )
        .is_err());
        assert!(parse_stats(
            "STATS hits=1 misses=0 byte_hits=0 byte_misses=0 evictions=0 recoveries=0 \
             wal_replayed=0"
        )
        .is_err());
        assert!(parse_stats(
            "STATS hits=1 misses=0 prefix_hits=0 byte_hits=0 byte_misses=0 evictions=0 \
             recoveries=0 wal_replayed=0"
        )
        .is_err());
        assert!(parse_stats(
            "STATS hits=1 misses=0 prefix_hits=0 byte_hits=0 byte_misses=0 evictions=0 \
             recoveries=0 wal_replayed=0 peer_hits=0"
        )
        .is_err());
        assert!(parse_stats("nope").is_err());
    }

    #[test]
    fn stats_reply_carries_prefix_hits() {
        let mut stats = HitStats::new();
        stats.record_prefix(ByteSize::mb(2), ByteSize::mb(8), 0);
        let server = ServerStats {
            stats,
            ..ServerStats::default()
        };
        let line = format_stats(&server);
        assert!(line.contains("prefix_hits=1"));
        assert_eq!(parse_stats(&line), Ok(server));
    }

    #[test]
    fn busy_reply_encodes_as_an_empty_frame() {
        let mut out = Vec::new();
        encode_reply(&Reply::Busy, &mut out);
        assert_eq!(out.len(), FRAME_HEADER_BYTES, "BUSY carries no payload");
        assert_eq!(
            decode_reply(&out),
            Ok(Decoded::Frame {
                value: Reply::Busy,
                consumed: FRAME_HEADER_BYTES,
            })
        );
        // Torn prefixes of a BUSY frame are Incomplete, never garbage.
        for cut in 1..FRAME_HEADER_BYTES {
            assert_eq!(decode_reply(&out[..cut]), Ok(Decoded::Incomplete));
        }
    }

    #[test]
    fn poisoned_reply_round_trips() {
        for shard in [0usize, 3, 17] {
            assert_eq!(parse_poisoned(&format_poisoned(shard)), Ok(shard));
        }
        assert!(parse_poisoned("POISONED").is_err());
        assert!(parse_poisoned("POISONED x").is_err());
        assert!(parse_poisoned("POISONED 1 2").is_err());
        assert!(parse_poisoned("BYE").is_err());
    }
}
