//! The line protocol spoken on the TCP front-end.
//!
//! One request per line, one reply line per request (`SNAPSHOT` replies
//! stay on a single line so clients never need framing beyond
//! `read_line`). The grammar (also documented in `docs/extending.md`):
//!
//! ```text
//! request   = "GET" SP clip-id | "STATS" | "SNAPSHOT" | "QUIT"
//!           | "POISON" SP clip-id           ; chaos servers only
//! clip-id   = 1*DIGIT                ; ≥ 1
//!
//! reply     = "HIT" SP evicted              ; GET, clip was resident
//!           | "MISS" SP admitted SP evicted ; GET, clip was fetched
//!           | "STATS" SP "hits=" n SP "misses=" n SP "byte_hits=" n
//!                     SP "byte_misses=" n SP "evictions=" n
//!                     SP "recoveries=" n SP "wal_replayed=" n
//!           | "SNAPSHOT" SP json-array      ; one CacheSnapshot per shard
//!           | "POISONED" SP shard-index     ; POISON acknowledged
//!           | "BYE"                         ; QUIT acknowledged
//!           | "ERR" SP text                 ; malformed request / unknown
//!                                           ; clip / refused operation
//! admitted  = "0" | "1"
//! evicted   = 1*DIGIT                       ; clips evicted by this access
//! ```
//!
//! Every parser in this module is total: any byte sequence (truncated
//! lines, embedded NULs, garbage from the chaos harness) produces an
//! `Err`, never a panic — `tests/protocol_props.rs` pounds this with a
//! malformed-input corpus and random bytes. Malformed *requests* get an
//! `ERR` reply and the connection stays open; the server never answers
//! garbage with a disconnect.

use crate::shard::GetOutcome;
use clipcache_media::ClipId;
use clipcache_sim::metrics::HitStats;

/// A parsed request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Access a clip through its shard.
    Get(ClipId),
    /// Report merged hit statistics.
    Stats,
    /// Snapshot every shard.
    Snapshot,
    /// Inject a shard-poisoning fault (chaos-enabled servers only).
    Poison(ClipId),
    /// Close the connection.
    Quit,
}

/// Server-side statistics as the `STATS` reply carries them: the merged
/// hit counters plus the service's poison-recovery count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Merged per-shard hit statistics.
    pub stats: HitStats,
    /// Poisoned-shard recoveries performed since startup.
    pub recoveries: u64,
    /// WAL records replayed when the durable stores were opened (zero
    /// for an in-memory server).
    pub wal_replayed: u64,
}

fn parse_clip_id(raw: &str) -> Result<ClipId, String> {
    let raw = raw.trim();
    let id: u64 = raw
        .parse()
        .map_err(|_| format!("'{raw}' is not a clip id"))?;
    if id == 0 || id > u32::MAX as u64 {
        return Err(format!("clip id {id} out of range"));
    }
    Ok(ClipId::new(id as u32))
}

/// Parse one request line (already stripped of the newline).
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    if let Some(rest) = line.strip_prefix("GET ") {
        return Ok(Command::Get(parse_clip_id(rest)?));
    }
    if let Some(rest) = line.strip_prefix("POISON ") {
        return Ok(Command::Poison(parse_clip_id(rest)?));
    }
    match line {
        "STATS" => Ok(Command::Stats),
        "SNAPSHOT" => Ok(Command::Snapshot),
        "QUIT" => Ok(Command::Quit),
        "" => Err("empty request".into()),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Format a request line (the inverse of [`parse_command`]).
pub fn format_command(command: &Command) -> String {
    match command {
        Command::Get(clip) => format!("GET {}", clip.get()),
        Command::Stats => "STATS".into(),
        Command::Snapshot => "SNAPSHOT".into(),
        Command::Poison(clip) => format!("POISON {}", clip.get()),
        Command::Quit => "QUIT".into(),
    }
}

/// Format a `GET` reply.
pub fn format_get(outcome: &GetOutcome) -> String {
    if outcome.hit {
        format!("HIT {}", outcome.evictions)
    } else {
        format!(
            "MISS {} {}",
            if outcome.admitted { 1 } else { 0 },
            outcome.evictions
        )
    }
}

/// Parse a `GET` reply.
pub fn parse_get(line: &str) -> Result<GetOutcome, String> {
    let mut words = line.trim().split_ascii_whitespace();
    let malformed = || format!("malformed GET reply '{}'", line.trim());
    let outcome = match words.next() {
        Some("HIT") => {
            let evictions = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(malformed)?;
            GetOutcome {
                hit: true,
                admitted: true,
                evictions,
            }
        }
        Some("MISS") => {
            let admitted = match words.next() {
                Some("0") => false,
                Some("1") => true,
                _ => return Err(malformed()),
            };
            let evictions = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or_else(malformed)?;
            GetOutcome {
                hit: false,
                admitted,
                evictions,
            }
        }
        _ => return Err(malformed()),
    };
    if words.next().is_some() {
        return Err(malformed());
    }
    Ok(outcome)
}

/// Format a `STATS` reply.
pub fn format_stats(stats: &ServerStats) -> String {
    format!(
        "STATS hits={} misses={} byte_hits={} byte_misses={} evictions={} recoveries={} \
         wal_replayed={}",
        stats.stats.hits,
        stats.stats.misses,
        stats.stats.byte_hits.as_u64(),
        stats.stats.byte_misses.as_u64(),
        stats.stats.evictions,
        stats.recoveries,
        stats.wal_replayed
    )
}

/// Parse a `STATS` reply.
pub fn parse_stats(line: &str) -> Result<ServerStats, String> {
    let line = line.trim();
    let rest = line
        .strip_prefix("STATS ")
        .ok_or_else(|| format!("malformed STATS reply '{line}'"))?;
    let mut stats = HitStats::new();
    let mut recoveries = 0;
    let mut wal_replayed = 0;
    let mut seen = 0u32;
    for field in rest.split_ascii_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("malformed STATS field '{field}'"))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("non-numeric STATS field '{field}'"))?;
        match key {
            "hits" => stats.hits = value,
            "misses" => stats.misses = value,
            "byte_hits" => stats.byte_hits = clipcache_media::ByteSize::bytes(value),
            "byte_misses" => stats.byte_misses = clipcache_media::ByteSize::bytes(value),
            "evictions" => stats.evictions = value,
            "recoveries" => recoveries = value,
            "wal_replayed" => wal_replayed = value,
            other => return Err(format!("unknown STATS field '{other}'")),
        }
        seen += 1;
    }
    if seen != 7 {
        return Err(format!("STATS reply has {seen} fields, expected 7"));
    }
    Ok(ServerStats {
        stats,
        recoveries,
        wal_replayed,
    })
}

/// Format a `POISON` acknowledgement.
pub fn format_poisoned(shard: usize) -> String {
    format!("POISONED {shard}")
}

/// Parse a `POISON` acknowledgement, returning the shard index.
pub fn parse_poisoned(line: &str) -> Result<usize, String> {
    let line = line.trim();
    let malformed = || format!("malformed POISONED reply '{line}'");
    let rest = line.strip_prefix("POISONED ").ok_or_else(malformed)?;
    let mut words = rest.split_ascii_whitespace();
    let shard = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(malformed)?;
    if words.next().is_some() {
        return Err(malformed());
    }
    Ok(shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipcache_media::ByteSize;

    #[test]
    fn commands_parse() {
        assert_eq!(parse_command("GET 17"), Ok(Command::Get(ClipId::new(17))));
        assert_eq!(parse_command("  GET 3  "), Ok(Command::Get(ClipId::new(3))));
        assert_eq!(parse_command("STATS"), Ok(Command::Stats));
        assert_eq!(parse_command("SNAPSHOT"), Ok(Command::Snapshot));
        assert_eq!(parse_command("QUIT"), Ok(Command::Quit));
        assert_eq!(
            parse_command("POISON 9"),
            Ok(Command::Poison(ClipId::new(9)))
        );
    }

    #[test]
    fn commands_round_trip() {
        for command in [
            Command::Get(ClipId::new(1)),
            Command::Get(ClipId::new(u32::MAX)),
            Command::Stats,
            Command::Snapshot,
            Command::Poison(ClipId::new(42)),
            Command::Quit,
        ] {
            assert_eq!(parse_command(&format_command(&command)), Ok(command));
        }
    }

    #[test]
    fn bad_commands_rejected() {
        assert!(parse_command("GET").is_err());
        assert!(parse_command("GET zero").is_err());
        assert!(parse_command("GET 0").is_err());
        assert!(parse_command("GET 99999999999").is_err());
        assert!(parse_command("get 1").is_err()); // commands are uppercase
        assert!(parse_command("").is_err());
        assert!(parse_command("POISON").is_err());
        assert!(parse_command("POISON 0").is_err());
        assert!(parse_command("PUT 1").unwrap_err().contains("PUT"));
    }

    #[test]
    fn get_reply_round_trips() {
        for outcome in [
            GetOutcome {
                hit: true,
                admitted: true,
                evictions: 0,
            },
            GetOutcome {
                hit: false,
                admitted: true,
                evictions: 3,
            },
            GetOutcome {
                hit: false,
                admitted: false,
                evictions: 0,
            },
        ] {
            assert_eq!(parse_get(&format_get(&outcome)), Ok(outcome));
        }
        assert!(parse_get("HIT").is_err());
        assert!(parse_get("HIT 1 2").is_err());
        assert!(parse_get("MISS 2 0").is_err());
        assert!(parse_get("ERR nope").is_err());
    }

    #[test]
    fn stats_reply_round_trips() {
        let mut stats = HitStats::new();
        stats.record(true, ByteSize::mb(10), 0);
        stats.record(false, ByteSize::mb(30), 2);
        let server = ServerStats {
            stats,
            recoveries: 3,
            wal_replayed: 41,
        };
        let line = format_stats(&server);
        assert!(line.contains("recoveries=3"));
        assert!(line.contains("wal_replayed=41"));
        assert_eq!(parse_stats(&line), Ok(server));
        assert!(parse_stats("STATS hits=1").is_err());
        assert!(parse_stats(
            "STATS hits=1 misses=x byte_hits=0 byte_misses=0 evictions=0 recoveries=0 \
             wal_replayed=0"
        )
        .is_err());
        // Older wire formats (five and six fields) are gone, not
        // silently defaulted.
        assert!(
            parse_stats("STATS hits=1 misses=0 byte_hits=0 byte_misses=0 evictions=0").is_err()
        );
        assert!(parse_stats(
            "STATS hits=1 misses=0 byte_hits=0 byte_misses=0 evictions=0 recoveries=0"
        )
        .is_err());
        assert!(parse_stats("nope").is_err());
    }

    #[test]
    fn poisoned_reply_round_trips() {
        for shard in [0usize, 3, 17] {
            assert_eq!(parse_poisoned(&format_poisoned(shard)), Ok(shard));
        }
        assert!(parse_poisoned("POISONED").is_err());
        assert!(parse_poisoned("POISONED x").is_err());
        assert!(parse_poisoned("POISONED 1 2").is_err());
        assert!(parse_poisoned("BYE").is_err());
    }
}
