//! One shard: a cache, its statistics, and a private virtual clock.
//!
//! The service routes each clip id to a fixed shard with
//! [`shard_of`] (a SplitMix64 hash of the id), so every request for a
//! given clip serializes on that shard's mutex and the policy inside
//! never sees concurrent access. Each shard keeps its own virtual clock
//! ticking 1, 2, 3, … per access — exactly the timestamps the serial
//! simulator assigns a trace — which is what makes a 1-shard service
//! reproduce [`clipcache_sim::runner::simulate`] bit for bit.

use clipcache_core::{AccessEvent, ClipCache, EvictionCount};
use clipcache_media::{ByteSize, ClipId};
use clipcache_sim::metrics::HitStats;
use clipcache_workload::Timestamp;

/// SplitMix64 — the finalizer used both to route clips to shards and to
/// derive per-shard policy seeds.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard a clip lives on. Stable for the lifetime of a service: the
/// same id always routes to the same shard, so a clip is resident in at
/// most one shard's cache.
#[inline]
pub fn shard_of(clip: ClipId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (splitmix64(clip.get() as u64) % shards as u64) as usize
}

/// The policy seed for shard `index`, derived from the service seed.
///
/// Shard 0 of any service gets `shard_seed(seed, 0)` — the loadgen's
/// serial baseline uses the same derivation so a 1-shard service and the
/// serial simulator run byte-identical policy randomness.
#[inline]
pub fn shard_seed(seed: u64, index: usize) -> u64 {
    splitmix64(seed ^ index as u64)
}

/// The outcome of one service access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetOutcome {
    /// Whether the clip was resident.
    pub hit: bool,
    /// Whether the clip is resident afterwards (always true on a hit).
    pub admitted: bool,
    /// Clips evicted by this access.
    pub evictions: usize,
}

/// One shard: a policy instance plus its counters, owned behind the
/// service's per-shard mutex.
pub struct Shard {
    cache: Box<dyn ClipCache>,
    stats: HitStats,
    clock: u64,
    // One counting sink per shard, reused for every access: the hot path
    // allocates nothing (the same discipline as the serial runner).
    evictions: EvictionCount,
}

impl Shard {
    /// Wrap a freshly built cache.
    pub fn new(cache: Box<dyn ClipCache>) -> Self {
        Shard {
            cache,
            stats: HitStats::new(),
            clock: 0,
            evictions: EvictionCount(0),
        }
    }

    /// Service a request for `clip` of `size`, recording hit statistics.
    ///
    /// Mirrors the serial runner's loop exactly: tick the clock, access
    /// through the counting sink, record `(hit, size, evictions)`.
    pub fn get(&mut self, clip: ClipId, size: ByteSize) -> GetOutcome {
        self.clock += 1;
        self.evictions.0 = 0;
        let event = self
            .cache
            .access_into(clip, Timestamp(self.clock), &mut self.evictions);
        let (hit, admitted) = match event {
            AccessEvent::Hit => (true, true),
            AccessEvent::Miss { admitted } => (false, admitted),
        };
        self.stats.record(hit, size, self.evictions.0);
        GetOutcome {
            hit,
            admitted,
            evictions: self.evictions.0,
        }
    }

    /// Warm `clip` into the shard without touching the hit statistics.
    ///
    /// The access still advances the clock and the policy's reference
    /// history (a warmed clip looks recently used), so `admit` is for
    /// pre-loading before measurement, not for use mid-run.
    pub fn admit(&mut self, clip: ClipId) -> bool {
        self.clock += 1;
        self.evictions.0 = 0;
        match self
            .cache
            .access_into(clip, Timestamp(self.clock), &mut self.evictions)
        {
            AccessEvent::Hit => true,
            AccessEvent::Miss { admitted } => admitted,
        }
    }

    /// The shard's hit statistics so far.
    pub fn stats(&self) -> &HitStats {
        &self.stats
    }

    /// The shard's virtual clock (number of accesses serviced).
    pub fn clock(&self) -> Timestamp {
        Timestamp(self.clock)
    }

    /// The policy instance.
    pub fn cache(&self) -> &dyn ClipCache {
        self.cache.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipcache_core::PolicyKind;
    use clipcache_media::paper;
    use std::sync::Arc;

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in 1..=8 {
            for id in 1..200u32 {
                let s = shard_of(ClipId::new(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(ClipId::new(id), shards));
            }
        }
        // Everything routes to shard 0 when there is only one shard.
        assert_eq!(shard_of(ClipId::new(17), 1), 0);
    }

    #[test]
    fn shard_seeds_differ_per_shard() {
        let seeds: Vec<u64> = (0..8).map(|i| shard_seed(42, i)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn get_records_stats_and_ticks_clock() {
        let repo = Arc::new(paper::equi_sized_repository_of(8, ByteSize::mb(10)));
        let cache = PolicyKind::Lru.build(Arc::clone(&repo), ByteSize::mb(20), 1, None);
        let mut shard = Shard::new(cache);
        let clip = ClipId::new(3);
        let miss = shard.get(clip, repo.size_of(clip));
        assert!(!miss.hit && miss.admitted && miss.evictions == 0);
        let hit = shard.get(clip, repo.size_of(clip));
        assert!(hit.hit);
        assert_eq!(shard.stats().hits, 1);
        assert_eq!(shard.stats().misses, 1);
        assert_eq!(shard.clock(), Timestamp(2));
    }

    #[test]
    fn admit_warms_without_stats() {
        let repo = Arc::new(paper::equi_sized_repository_of(8, ByteSize::mb(10)));
        let cache = PolicyKind::Lru.build(Arc::clone(&repo), ByteSize::mb(20), 1, None);
        let mut shard = Shard::new(cache);
        assert!(shard.admit(ClipId::new(5)));
        assert_eq!(shard.stats().requests(), 0);
        // The warmed clip now hits, and only the hit is counted.
        assert!(shard.get(ClipId::new(5), repo.size_of(ClipId::new(5))).hit);
        assert_eq!(shard.stats().hits, 1);
    }
}
