//! One shard: a cache, its statistics, a private virtual clock, and the
//! recovery checkpoint that makes mutex poisoning survivable.
//!
//! The service routes each clip id to a fixed shard with
//! [`shard_of`] (a SplitMix64 hash of the id), so every request for a
//! given clip serializes on that shard's mutex and the policy inside
//! never sees concurrent access. Each shard keeps its own virtual clock
//! ticking 1, 2, 3, … per access — exactly the timestamps the serial
//! simulator assigns a trace — which is what makes a 1-shard service
//! reproduce [`clipcache_sim::runner::simulate`] bit for bit.
//!
//! ## Checkpoints and poison recovery
//!
//! A request that panics while holding the shard mutex poisons it. The
//! pre-chaos service answered that with `.expect("shard poisoned")` —
//! one bad request wedged the shard for the process lifetime. Instead,
//! every shard now refreshes a [`CacheSnapshot`] checkpoint every
//! [`CHECKPOINT_EVERY`] accesses (plus the statistics at that instant),
//! and [`Shard::recover`] rebuilds the cache from it with
//! [`clipcache_core::snapshot::restore`] — the same snapshot/restore
//! machinery the paper's device-restart path uses, repurposed as the
//! shard's crash-recovery journal. Recovery is deterministic: the
//! rebuilt policy is seeded with the shard's original seed, so the same
//! fault schedule produces the same post-recovery state.

use clipcache_core::snapshot::{restore, CacheSnapshot};
use clipcache_core::{AccessEvent, ClipCache, EvictionCount, PolicySpec};
use clipcache_media::{ByteSize, ClipId, Repository};
use clipcache_sim::metrics::HitStats;
use clipcache_workload::Timestamp;
use std::sync::Arc;

/// Accesses between checkpoint refreshes. Small enough that recovery
/// forgets little (the policy relearns the gap in a few dozen
/// requests), large enough that the `O(resident)` snapshot copy stays
/// off the per-request path.
pub const CHECKPOINT_EVERY: u64 = 128;

/// SplitMix64 — the finalizer used both to route clips to shards and to
/// derive per-shard policy seeds.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard a clip lives on. Stable for the lifetime of a service: the
/// same id always routes to the same shard, so a clip is resident in at
/// most one shard's cache.
#[inline]
pub fn shard_of(clip: ClipId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (splitmix64(clip.get() as u64) % shards as u64) as usize
}

/// The policy seed for shard `index`, derived from the service seed.
///
/// Shard 0 of any service gets `shard_seed(seed, 0)` — the loadgen's
/// serial baseline uses the same derivation so a 1-shard service and the
/// serial simulator run byte-identical policy randomness.
#[inline]
pub fn shard_seed(seed: u64, index: usize) -> u64 {
    splitmix64(seed ^ index as u64)
}

/// The outcome of one service access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetOutcome {
    /// Whether the clip was resident.
    pub hit: bool,
    /// Whether the clip is resident afterwards (always true on a hit).
    pub admitted: bool,
    /// Clips evicted by this access.
    pub evictions: usize,
}

/// The durable-enough state a poisoned shard rebuilds from.
struct Checkpoint {
    snapshot: CacheSnapshot,
    stats: HitStats,
}

/// One shard: a policy instance plus its counters, owned behind the
/// service's per-shard mutex.
pub struct Shard {
    cache: Box<dyn ClipCache>,
    stats: HitStats,
    clock: u64,
    // One counting sink per shard, reused for every access: the hot path
    // allocates nothing (the same discipline as the serial runner).
    evictions: EvictionCount,
    // Everything recovery needs to rebuild the cache from scratch.
    repo: Arc<Repository>,
    policy: PolicySpec,
    seed: u64,
    frequencies: Option<Vec<f64>>,
    checkpoint: Checkpoint,
}

impl Shard {
    /// Wrap a freshly built cache, remembering the build inputs so
    /// [`recover`](Self::recover) can rebuild it after a poisoning.
    pub fn new(
        cache: Box<dyn ClipCache>,
        repo: Arc<Repository>,
        policy: PolicySpec,
        seed: u64,
        frequencies: Option<Vec<f64>>,
    ) -> Self {
        let checkpoint = Checkpoint {
            snapshot: CacheSnapshot::take(cache.as_ref(), policy, Timestamp::ZERO),
            stats: HitStats::new(),
        };
        Shard {
            cache,
            stats: HitStats::new(),
            clock: 0,
            evictions: EvictionCount(0),
            repo,
            policy,
            seed,
            frequencies,
            checkpoint,
        }
    }

    /// Service a request for `clip` of `size`, recording hit statistics.
    ///
    /// Mirrors the serial runner's loop exactly: tick the clock, access
    /// through the counting sink, record `(hit, size, evictions)`.
    pub fn get(&mut self, clip: ClipId, size: ByteSize) -> GetOutcome {
        self.clock += 1;
        self.evictions.0 = 0;
        let event = self
            .cache
            .access_into(clip, Timestamp(self.clock), &mut self.evictions);
        let (hit, admitted) = match event {
            AccessEvent::Hit => (true, true),
            AccessEvent::Miss { admitted } => (false, admitted),
        };
        self.stats.record(hit, size, self.evictions.0);
        self.maybe_checkpoint();
        GetOutcome {
            hit,
            admitted,
            evictions: self.evictions.0,
        }
    }

    /// Warm `clip` into the shard without touching the hit statistics.
    ///
    /// The access still advances the clock and the policy's reference
    /// history (a warmed clip looks recently used), so `admit` is for
    /// pre-loading before measurement, not for use mid-run.
    pub fn admit(&mut self, clip: ClipId) -> bool {
        self.clock += 1;
        self.evictions.0 = 0;
        let admitted =
            match self
                .cache
                .access_into(clip, Timestamp(self.clock), &mut self.evictions)
            {
                AccessEvent::Hit => true,
                AccessEvent::Miss { admitted } => admitted,
            };
        self.maybe_checkpoint();
        admitted
    }

    fn maybe_checkpoint(&mut self) {
        if self.clock - self.checkpoint.snapshot.tick.get() >= CHECKPOINT_EVERY {
            self.checkpoint = Checkpoint {
                snapshot: CacheSnapshot::take(
                    self.cache.as_ref(),
                    self.policy,
                    Timestamp(self.clock),
                ),
                stats: self.stats.clone(),
            };
        }
    }

    /// Rebuild the shard from its last checkpoint after its mutex was
    /// poisoned mid-request.
    ///
    /// The in-memory cache may have been caught mid-mutation by the
    /// panic, so nothing of it is trusted: a fresh policy instance is
    /// built with the shard's original seed and the checkpoint's
    /// resident set is re-materialized through
    /// [`clipcache_core::snapshot::restore`] (residency-exact,
    /// metadata-approximate — the policy relearns popularity, exactly as
    /// after a device restart). Statistics and the virtual clock rewind
    /// to the checkpoint; requests recorded since are forgotten
    /// server-side, which is why chaos invariants are asserted against
    /// client-observed counters.
    pub fn recover(&mut self) {
        let (cache, tick) = restore(
            &self.checkpoint.snapshot,
            Arc::clone(&self.repo),
            self.seed,
            self.frequencies.as_deref(),
        )
        .expect("checkpoint was built from this exact policy spec");
        self.cache = cache;
        self.clock = tick.get();
        self.stats = self.checkpoint.stats.clone();
        self.evictions = EvictionCount(0);
    }

    /// The shard's hit statistics so far.
    pub fn stats(&self) -> &HitStats {
        &self.stats
    }

    /// The shard's virtual clock (number of accesses serviced).
    pub fn clock(&self) -> Timestamp {
        Timestamp(self.clock)
    }

    /// The policy instance.
    pub fn cache(&self) -> &dyn ClipCache {
        self.cache.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipcache_core::PolicyKind;
    use clipcache_media::paper;
    use std::sync::Arc;

    fn shard_with(
        policy: PolicyKind,
        clips: usize,
        capacity: ByteSize,
    ) -> (Arc<Repository>, Shard) {
        let repo = Arc::new(paper::equi_sized_repository_of(clips, ByteSize::mb(10)));
        let cache = policy.build(Arc::clone(&repo), capacity, 1, None);
        let shard = Shard::new(cache, Arc::clone(&repo), policy.into(), 1, None);
        (repo, shard)
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in 1..=8 {
            for id in 1..200u32 {
                let s = shard_of(ClipId::new(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(ClipId::new(id), shards));
            }
        }
        // Everything routes to shard 0 when there is only one shard.
        assert_eq!(shard_of(ClipId::new(17), 1), 0);
    }

    #[test]
    fn shard_seeds_differ_per_shard() {
        let seeds: Vec<u64> = (0..8).map(|i| shard_seed(42, i)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn get_records_stats_and_ticks_clock() {
        let (repo, mut shard) = shard_with(PolicyKind::Lru, 8, ByteSize::mb(20));
        let clip = ClipId::new(3);
        let miss = shard.get(clip, repo.size_of(clip));
        assert!(!miss.hit && miss.admitted && miss.evictions == 0);
        let hit = shard.get(clip, repo.size_of(clip));
        assert!(hit.hit);
        assert_eq!(shard.stats().hits, 1);
        assert_eq!(shard.stats().misses, 1);
        assert_eq!(shard.clock(), Timestamp(2));
    }

    #[test]
    fn admit_warms_without_stats() {
        let (repo, mut shard) = shard_with(PolicyKind::Lru, 8, ByteSize::mb(20));
        assert!(shard.admit(ClipId::new(5)));
        assert_eq!(shard.stats().requests(), 0);
        // The warmed clip now hits, and only the hit is counted.
        assert!(shard.get(ClipId::new(5), repo.size_of(ClipId::new(5))).hit);
        assert_eq!(shard.stats().hits, 1);
    }

    #[test]
    fn recover_rewinds_to_checkpoint() {
        let (repo, mut shard) = shard_with(PolicyKind::Lru, 16, ByteSize::mb(40));
        // Drive exactly one checkpoint interval: the checkpoint then
        // holds this state.
        for i in 0..CHECKPOINT_EVERY {
            let clip = ClipId::new((i % 4 + 1) as u32);
            shard.get(clip, repo.size_of(clip));
        }
        let at_checkpoint = shard.stats().clone();
        let resident_at_checkpoint = {
            let mut r = shard.cache().resident_clips();
            r.sort();
            r
        };
        // A few more requests past the checkpoint, then a recovery.
        for i in 0..5u32 {
            let clip = ClipId::new(i % 16 + 1);
            shard.get(clip, repo.size_of(clip));
        }
        assert_ne!(shard.stats(), &at_checkpoint);
        shard.recover();
        assert_eq!(shard.stats(), &at_checkpoint, "stats rewind to checkpoint");
        let mut resident = shard.cache().resident_clips();
        resident.sort();
        assert_eq!(
            resident, resident_at_checkpoint,
            "residency restores exactly"
        );
        // The clock resumes past the re-materialization ticks, strictly
        // increasing (never reuses a timestamp the policy already saw).
        assert!(shard.clock().get() >= CHECKPOINT_EVERY);
        // The shard keeps serving correctly after recovery.
        assert!(shard.get(ClipId::new(1), repo.size_of(ClipId::new(1))).hit);
    }

    #[test]
    fn recover_on_fresh_shard_is_safe() {
        let (repo, mut shard) = shard_with(PolicyKind::Lru, 8, ByteSize::mb(20));
        shard.get(ClipId::new(2), repo.size_of(ClipId::new(2)));
        shard.recover(); // checkpoint is the empty initial snapshot
        assert_eq!(shard.stats().requests(), 0);
        assert!(shard.cache().resident_clips().is_empty());
        assert!(!shard.get(ClipId::new(2), repo.size_of(ClipId::new(2))).hit);
    }
}
