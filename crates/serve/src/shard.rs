//! One shard: a cache, its statistics, a private virtual clock, and the
//! recovery checkpoint that makes mutex poisoning survivable.
//!
//! The service routes each clip id to a fixed shard with
//! [`shard_of`] (a SplitMix64 hash of the id), so every request for a
//! given clip serializes on that shard's mutex and the policy inside
//! never sees concurrent access. Each shard keeps its own virtual clock
//! ticking 1, 2, 3, … per access — exactly the timestamps the serial
//! simulator assigns a trace — which is what makes a 1-shard service
//! reproduce [`clipcache_sim::runner::simulate`] bit for bit.
//!
//! ## Checkpoints and poison recovery
//!
//! A request that panics while holding the shard mutex poisons it. The
//! pre-chaos service answered that with `.expect("shard poisoned")` —
//! one bad request wedged the shard for the process lifetime. Instead,
//! every shard now refreshes a [`CacheSnapshot`] checkpoint every
//! [`CHECKPOINT_EVERY`] accesses (plus the statistics at that instant),
//! and [`Shard::recover`] rebuilds the cache from it with
//! [`clipcache_core::snapshot::restore`] — the same snapshot/restore
//! machinery the paper's device-restart path uses, repurposed as the
//! shard's crash-recovery journal. Recovery is deterministic: the
//! rebuilt policy is seeded with the shard's original seed, so the same
//! fault schedule produces the same post-recovery state.
//!
//! ## Durability
//!
//! A shard opened with a data directory ([`Shard::attach_store`], via
//! `CacheService::open_persistent`) pairs the in-memory checkpoint with
//! a [`ShardStore`]: every access is appended to the store's write-ahead
//! log *before* it is applied, and each checkpoint refresh writes the
//! durable checkpoint first, so disk is never behind what a client was
//! told. On open, the durable checkpoint is restored and the WAL tail
//! replays through the same zero-alloc `access_into` path live requests
//! use — then the shard compacts (fresh checkpoint, truncated log) so
//! restarts converge instead of replaying ever-longer logs.

use crate::persist::{
    CommitTicket, CrashSpec, DurableCheckpoint, DurableState, PersistError, ShardStore, WalOp,
};
use clipcache_core::snapshot::{restore, CacheSnapshot};
use clipcache_core::{AccessEvent, ClipCache, EvictionCount, PolicySpec};
use clipcache_media::{ByteSize, ClipId, Repository};
use clipcache_sim::metrics::HitStats;
use clipcache_workload::Timestamp;
use std::sync::Arc;

/// Default accesses between checkpoint refreshes (the
/// `ServiceConfig::checkpoint_every` / `--checkpoint-every` knob).
/// Small enough that recovery forgets little (the policy relearns the
/// gap in a few dozen requests), large enough that the `O(resident)`
/// snapshot copy stays off the per-request path.
pub const CHECKPOINT_EVERY: u64 = 128;

/// SplitMix64 — the finalizer used both to route clips to shards and to
/// derive per-shard policy seeds.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard a clip lives on. Stable for the lifetime of a service: the
/// same id always routes to the same shard, so a clip is resident in at
/// most one shard's cache.
#[inline]
pub fn shard_of(clip: ClipId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (splitmix64(clip.get() as u64) % shards as u64) as usize
}

/// The policy seed for shard `index`, derived from the service seed.
///
/// Shard 0 of any service gets `shard_seed(seed, 0)` — the loadgen's
/// serial baseline uses the same derivation so a 1-shard service and the
/// serial simulator run byte-identical policy randomness.
#[inline]
pub fn shard_seed(seed: u64, index: usize) -> u64 {
    splitmix64(seed ^ index as u64)
}

/// The outcome of one service access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetOutcome {
    /// Whether the clip was resident.
    pub hit: bool,
    /// Whether the clip is resident afterwards (always true on a hit).
    pub admitted: bool,
    /// Clips evicted by this access.
    pub evictions: usize,
    /// Whether a local miss was filled from a cluster peer (a cluster
    /// hit). Always `false` at the shard layer — only the cluster tier
    /// sets it, after a `PEERGET` probe found the clip on a replica.
    pub peer: bool,
}

/// The outcome of one chunk-granular residency probe (`GETRANGE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeOutcome {
    /// Whether the probed chunk is resident (it lies inside the
    /// clip's resident prefix).
    pub hit: bool,
    /// Chunks of the clip's head currently resident (equal to `total`
    /// when the whole clip is resident, 0 when absent).
    pub resident: u32,
    /// Total chunks in the clip.
    pub total: u32,
}

/// The durable-enough state a poisoned shard rebuilds from.
struct Checkpoint {
    snapshot: CacheSnapshot,
    stats: HitStats,
}

/// One shard: a policy instance plus its counters, owned behind the
/// service's per-shard mutex.
pub struct Shard {
    cache: Box<dyn ClipCache>,
    stats: HitStats,
    clock: u64,
    // One counting sink per shard, reused for every access: the hot path
    // allocates nothing (the same discipline as the serial runner).
    evictions: EvictionCount,
    // Everything recovery needs to rebuild the cache from scratch.
    repo: Arc<Repository>,
    policy: PolicySpec,
    seed: u64,
    frequencies: Option<Vec<f64>>,
    checkpoint: Checkpoint,
    // Accesses between checkpoint refreshes (the service's knob).
    checkpoint_every: u64,
    // The durable store, when the service was opened with a data dir.
    store: Option<ShardStore>,
    // WAL records replayed into this shard when its store was attached.
    wal_replayed: u64,
}

impl Shard {
    /// Wrap a freshly built cache, remembering the build inputs so
    /// [`recover`](Self::recover) can rebuild it after a poisoning.
    ///
    /// # Panics
    /// If `checkpoint_every == 0`.
    pub fn new(
        cache: Box<dyn ClipCache>,
        repo: Arc<Repository>,
        policy: PolicySpec,
        seed: u64,
        frequencies: Option<Vec<f64>>,
        checkpoint_every: u64,
    ) -> Self {
        assert!(
            checkpoint_every > 0,
            "checkpoint cadence must be at least 1"
        );
        let checkpoint = Checkpoint {
            snapshot: CacheSnapshot::take(cache.as_ref(), policy, Timestamp::ZERO),
            stats: HitStats::new(),
        };
        Shard {
            cache,
            stats: HitStats::new(),
            clock: 0,
            evictions: EvictionCount(0),
            repo,
            policy,
            seed,
            frequencies,
            checkpoint,
            checkpoint_every,
            store: None,
            wal_replayed: 0,
        }
    }

    /// Service a request for `clip` of `size`, recording hit statistics.
    ///
    /// Mirrors the serial runner's loop exactly: tick the clock, access
    /// through the counting sink, record `(hit, size, evictions)`. With
    /// a store attached the access is WAL-logged *first* — on any
    /// failure the cache is untouched, so disk never lags a reply the
    /// client already saw. Under group commit the returned
    /// [`CommitTicket`] must be waited on *after* releasing the shard
    /// mutex (and before acking the client), so concurrent requests can
    /// ride the same batched fsync; `None` means the append is already
    /// as durable as the sync policy promises.
    pub fn get(
        &mut self,
        clip: ClipId,
        size: ByteSize,
    ) -> Result<(GetOutcome, Option<CommitTicket>), PersistError> {
        let mut ticket = None;
        if let Some(store) = &mut self.store {
            let seq = store.append(WalOp::Get, clip)?;
            ticket = store.commit_ticket(seq);
        }
        let outcome = self.apply_get(clip, size);
        self.maybe_checkpoint()?;
        Ok((outcome, ticket))
    }

    /// The in-memory half of [`get`](Self::get) — also the WAL replay
    /// path, which is what makes recovery re-derive exactly the state
    /// live requests produced.
    fn apply_get(&mut self, clip: ClipId, size: ByteSize) -> GetOutcome {
        self.clock += 1;
        self.evictions.0 = 0;
        let event = self
            .cache
            .access_into(clip, Timestamp(self.clock), &mut self.evictions);
        let (hit, admitted) = match event {
            AccessEvent::Hit => {
                self.stats.record(true, size, self.evictions.0);
                (true, true)
            }
            AccessEvent::PrefixHit { resident, .. } => {
                // Display starts from the resident prefix while the tail
                // streams in (and the access completes the clip to full
                // residency, so it is "admitted" afterwards).
                let resident_bytes = self.repo.prefix_bytes(clip, resident);
                self.stats
                    .record_prefix(resident_bytes, size - resident_bytes, self.evictions.0);
                (true, true)
            }
            AccessEvent::Miss { admitted } => {
                self.stats.record(false, size, self.evictions.0);
                (false, admitted)
            }
        };
        GetOutcome {
            hit,
            admitted,
            evictions: self.evictions.0,
            peer: false,
        }
    }

    /// Warm `clip` into the shard without touching the hit statistics.
    ///
    /// The access still advances the clock and the policy's reference
    /// history (a warmed clip looks recently used), so `admit` is for
    /// pre-loading before measurement, not for use mid-run.
    pub fn admit(&mut self, clip: ClipId) -> Result<(bool, Option<CommitTicket>), PersistError> {
        let mut ticket = None;
        if let Some(store) = &mut self.store {
            let seq = store.append(WalOp::Admit, clip)?;
            ticket = store.commit_ticket(seq);
        }
        let admitted = self.apply_admit(clip);
        self.maybe_checkpoint()?;
        Ok((admitted, ticket))
    }

    /// The in-memory half of [`admit`](Self::admit); also the replay
    /// path for logged warm-ups.
    fn apply_admit(&mut self, clip: ClipId) -> bool {
        self.clock += 1;
        self.evictions.0 = 0;
        match self
            .cache
            .access_into(clip, Timestamp(self.clock), &mut self.evictions)
        {
            AccessEvent::Hit | AccessEvent::PrefixHit { .. } => true,
            AccessEvent::Miss { admitted } => admitted,
        }
    }

    /// Probe chunk-granular residency: is chunk `chunk` of `clip`
    /// resident right now? Pure with respect to the policy — no clock
    /// tick, no recency update, no admission — but WAL-logged like every
    /// other request so the durable log is a complete account of what
    /// clients were told (replay applies it as the same no-op).
    ///
    /// The caller (the service) has already validated that `chunk` is in
    /// range for `clip`; this method only reads residency.
    pub fn get_range(
        &mut self,
        clip: ClipId,
        chunk: u32,
    ) -> Result<(RangeOutcome, Option<CommitTicket>), PersistError> {
        let mut ticket = None;
        if let Some(store) = &mut self.store {
            let seq = store.append_range(clip, chunk)?;
            ticket = store.commit_ticket(seq);
        }
        Ok((self.apply_get_range(clip, chunk), ticket))
    }

    /// The in-memory half of [`get_range`](Self::get_range); also the
    /// WAL replay path (a no-op on cache state, by design).
    fn apply_get_range(&mut self, clip: ClipId, chunk: u32) -> RangeOutcome {
        let total = self.repo.chunks_of(clip);
        let resident = if self.cache.contains(clip) {
            total
        } else {
            self.cache.partial_prefix(clip)
        };
        RangeOutcome {
            hit: chunk < resident,
            resident,
            total,
        }
    }

    fn maybe_checkpoint(&mut self) -> Result<(), PersistError> {
        if self.clock - self.checkpoint.snapshot.tick.get() >= self.checkpoint_every {
            self.force_checkpoint()?;
        }
        Ok(())
    }

    /// Refresh both checkpoints — durable first, so a crash mid-write
    /// leaves the in-memory checkpoint still describing the same state
    /// recovery will find on disk.
    fn force_checkpoint(&mut self) -> Result<(), PersistError> {
        let snapshot = CacheSnapshot::take(self.cache.as_ref(), self.policy, Timestamp(self.clock));
        if let Some(store) = &mut self.store {
            let seq = store.next_seq() - 1;
            store.checkpoint(&DurableCheckpoint {
                snapshot: snapshot.clone(),
                stats: self.stats.clone(),
                seq,
            })?;
        }
        self.checkpoint = Checkpoint {
            snapshot,
            stats: self.stats.clone(),
        };
        Ok(())
    }

    /// Attach a durable store, rebuilding the shard from what it found
    /// on disk. Returns how many WAL records were replayed.
    ///
    /// The durable checkpoint (if any) restores exactly like poison
    /// recovery; the WAL tail then replays through the same zero-alloc
    /// apply path live requests use. If anything replayed (or a torn
    /// tail was truncated), the shard compacts — writes a fresh durable
    /// checkpoint subsuming the log — so repeated crash-restarts step
    /// forward instead of replaying ever-longer logs. A restart with
    /// nothing to replay leaves the directory bytes untouched, which is
    /// what makes back-to-back recoveries bit-identical.
    pub fn attach_store(
        &mut self,
        store: ShardStore,
        state: DurableState,
    ) -> Result<u64, PersistError> {
        if let Some(ckpt) = &state.checkpoint {
            if ckpt.snapshot.policy != self.policy {
                return Err(PersistError::BadCheckpoint(format!(
                    "checkpoint policy {} does not match configured {}",
                    ckpt.snapshot.policy.spelling(),
                    self.policy.spelling()
                )));
            }
            if ckpt.snapshot.capacity != self.checkpoint.snapshot.capacity {
                return Err(PersistError::BadCheckpoint(format!(
                    "checkpoint capacity {} bytes does not match configured {}",
                    ckpt.snapshot.capacity.as_u64(),
                    self.checkpoint.snapshot.capacity.as_u64()
                )));
            }
            let (cache, tick) = restore(
                &ckpt.snapshot,
                Arc::clone(&self.repo),
                self.seed,
                self.frequencies.as_deref(),
            )
            .map_err(|e| PersistError::Build(e.to_string()))?;
            self.cache = cache;
            self.clock = tick.get();
            self.stats = ckpt.stats.clone();
            self.checkpoint = Checkpoint {
                snapshot: ckpt.snapshot.clone(),
                stats: ckpt.stats.clone(),
            };
        }
        for rec in &state.records {
            if self.repo.get(rec.clip).is_none() {
                return Err(PersistError::Corrupt {
                    offset: 0,
                    reason: format!(
                        "WAL record {} names clip {} outside the repository",
                        rec.seq,
                        rec.clip.get()
                    ),
                });
            }
            match rec.op {
                WalOp::Get => {
                    let size = self.repo.size_of(rec.clip);
                    self.apply_get(rec.clip, size);
                }
                WalOp::Admit => {
                    self.apply_admit(rec.clip);
                }
                WalOp::GetRange => {
                    if rec.chunk >= self.repo.chunks_of(rec.clip) {
                        return Err(PersistError::Corrupt {
                            offset: 0,
                            reason: format!(
                                "WAL record {} probes chunk {} of clip {} which has only \
                                 {} chunks",
                                rec.seq,
                                rec.chunk,
                                rec.clip.get(),
                                self.repo.chunks_of(rec.clip)
                            ),
                        });
                    }
                    self.apply_get_range(rec.clip, rec.chunk);
                }
            }
        }
        let replayed = state.records.len() as u64;
        self.wal_replayed = replayed;
        self.store = Some(store);
        if replayed > 0 || state.torn_bytes_dropped > 0 || state.subsumed_records > 0 {
            self.force_checkpoint()?;
        }
        Ok(replayed)
    }

    /// Arm (or disarm) a deterministic crash point on the attached
    /// store. No-op for a memory-only shard.
    pub fn arm_crash(&mut self, crash: Option<CrashSpec>) {
        if let Some(store) = &mut self.store {
            store.arm_crash(crash);
        }
    }

    /// WAL records replayed into this shard when it was last opened.
    pub fn wal_replayed(&self) -> u64 {
        self.wal_replayed
    }

    /// Rebuild the shard from its last checkpoint after its mutex was
    /// poisoned mid-request.
    ///
    /// The in-memory cache may have been caught mid-mutation by the
    /// panic, so nothing of it is trusted: a fresh policy instance is
    /// built with the shard's original seed and the checkpoint's
    /// resident set is re-materialized through
    /// [`clipcache_core::snapshot::restore`] (residency-exact,
    /// metadata-approximate — the policy relearns popularity, exactly as
    /// after a device restart). Statistics and the virtual clock rewind
    /// to the checkpoint; requests recorded since are forgotten
    /// server-side, which is why chaos invariants are asserted against
    /// client-observed counters.
    pub fn recover(&mut self) {
        let (cache, tick) = restore(
            &self.checkpoint.snapshot,
            Arc::clone(&self.repo),
            self.seed,
            self.frequencies.as_deref(),
        )
        .expect("checkpoint was built from this exact policy spec");
        self.cache = cache;
        self.clock = tick.get();
        self.stats = self.checkpoint.stats.clone();
        self.evictions = EvictionCount(0);
        // Keep the disk in step with the rewind: WAL records after the
        // checkpoint describe accesses the rebuilt shard never saw. If
        // even the truncation fails, kill the store — refusing further
        // appends beats silently diverging from the in-memory state.
        if let Some(store) = &mut self.store {
            if store.rewind_to_checkpoint().is_err() {
                store.kill();
            }
        }
    }

    /// The shard's hit statistics so far.
    pub fn stats(&self) -> &HitStats {
        &self.stats
    }

    /// The shard's virtual clock (number of accesses serviced).
    pub fn clock(&self) -> Timestamp {
        Timestamp(self.clock)
    }

    /// The policy instance.
    pub fn cache(&self) -> &dyn ClipCache {
        self.cache.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipcache_core::PolicyKind;
    use clipcache_media::paper;
    use std::sync::Arc;

    fn shard_with(
        policy: PolicyKind,
        clips: usize,
        capacity: ByteSize,
    ) -> (Arc<Repository>, Shard) {
        let repo = Arc::new(paper::equi_sized_repository_of(clips, ByteSize::mb(10)));
        let cache = policy.build(Arc::clone(&repo), capacity, 1, None);
        let shard = Shard::new(
            cache,
            Arc::clone(&repo),
            policy.into(),
            1,
            None,
            CHECKPOINT_EVERY,
        );
        (repo, shard)
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in 1..=8 {
            for id in 1..200u32 {
                let s = shard_of(ClipId::new(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(ClipId::new(id), shards));
            }
        }
        // Everything routes to shard 0 when there is only one shard.
        assert_eq!(shard_of(ClipId::new(17), 1), 0);
    }

    #[test]
    fn shard_seeds_differ_per_shard() {
        let seeds: Vec<u64> = (0..8).map(|i| shard_seed(42, i)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn get_records_stats_and_ticks_clock() {
        let (repo, mut shard) = shard_with(PolicyKind::Lru, 8, ByteSize::mb(20));
        let clip = ClipId::new(3);
        let (miss, _) = shard.get(clip, repo.size_of(clip)).unwrap();
        assert!(!miss.hit && miss.admitted && miss.evictions == 0);
        let (hit, _) = shard.get(clip, repo.size_of(clip)).unwrap();
        assert!(hit.hit);
        assert_eq!(shard.stats().hits, 1);
        assert_eq!(shard.stats().misses, 1);
        assert_eq!(shard.clock(), Timestamp(2));
    }

    #[test]
    fn admit_warms_without_stats() {
        let (repo, mut shard) = shard_with(PolicyKind::Lru, 8, ByteSize::mb(20));
        assert!(shard.admit(ClipId::new(5)).unwrap().0);
        assert_eq!(shard.stats().requests(), 0);
        // The warmed clip now hits, and only the hit is counted.
        assert!(
            shard
                .get(ClipId::new(5), repo.size_of(ClipId::new(5)))
                .unwrap()
                .0
                .hit
        );
        assert_eq!(shard.stats().hits, 1);
    }

    #[test]
    fn recover_rewinds_to_checkpoint() {
        let (repo, mut shard) = shard_with(PolicyKind::Lru, 16, ByteSize::mb(40));
        // Drive exactly one checkpoint interval: the checkpoint then
        // holds this state.
        for i in 0..CHECKPOINT_EVERY {
            let clip = ClipId::new((i % 4 + 1) as u32);
            shard.get(clip, repo.size_of(clip)).unwrap();
        }
        let at_checkpoint = shard.stats().clone();
        let resident_at_checkpoint = {
            let mut r = shard.cache().resident_clips();
            r.sort();
            r
        };
        // A few more requests past the checkpoint, then a recovery.
        for i in 0..5u32 {
            let clip = ClipId::new(i % 16 + 1);
            shard.get(clip, repo.size_of(clip)).unwrap();
        }
        assert_ne!(shard.stats(), &at_checkpoint);
        shard.recover();
        assert_eq!(shard.stats(), &at_checkpoint, "stats rewind to checkpoint");
        let mut resident = shard.cache().resident_clips();
        resident.sort();
        assert_eq!(
            resident, resident_at_checkpoint,
            "residency restores exactly"
        );
        // The clock resumes past the re-materialization ticks, strictly
        // increasing (never reuses a timestamp the policy already saw).
        assert!(shard.clock().get() >= CHECKPOINT_EVERY);
        // The shard keeps serving correctly after recovery.
        assert!(
            shard
                .get(ClipId::new(1), repo.size_of(ClipId::new(1)))
                .unwrap()
                .0
                .hit
        );
    }

    #[test]
    fn recover_on_fresh_shard_is_safe() {
        let (repo, mut shard) = shard_with(PolicyKind::Lru, 8, ByteSize::mb(20));
        shard
            .get(ClipId::new(2), repo.size_of(ClipId::new(2)))
            .unwrap();
        shard.recover(); // checkpoint is the empty initial snapshot
        assert_eq!(shard.stats().requests(), 0);
        assert!(shard.cache().resident_clips().is_empty());
        assert!(
            !shard
                .get(ClipId::new(2), repo.size_of(ClipId::new(2)))
                .unwrap()
                .0
                .hit
        );
    }

    #[test]
    fn durable_shard_survives_a_reopen() {
        use crate::persist::{ShardStore, WalSync};
        let dir =
            std::env::temp_dir().join(format!("clipcache-shard-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let trace: Vec<u32> = (0..300u32).map(|i| i * 7 % 16 + 1).collect();
        // Cadence beyond the trace: the whole run lives in the WAL, so
        // the first reopen is a pure replay from empty — which must be
        // bit-identical to a continuous memory-only run.
        let fresh = |every: u64| {
            let repo = Arc::new(paper::equi_sized_repository_of(16, ByteSize::mb(10)));
            let cache = PolicyKind::Lru.build(Arc::clone(&repo), ByteSize::mb(40), 1, None);
            let shard = Shard::new(
                cache,
                Arc::clone(&repo),
                PolicyKind::Lru.into(),
                1,
                None,
                every,
            );
            (repo, shard)
        };
        let (repo, mut reference) = fresh(1_000);
        for &c in &trace {
            reference
                .get(ClipId::new(c), repo.size_of(ClipId::new(c)))
                .unwrap();
        }

        let (_, mut durable) = fresh(1_000);
        let (store, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        assert_eq!(durable.attach_store(store, state).unwrap(), 0);
        for &c in &trace {
            durable
                .get(ClipId::new(c), repo.size_of(ClipId::new(c)))
                .unwrap();
        }
        // Persistence is invisible to behavior.
        assert_eq!(durable.stats(), reference.stats());
        assert_eq!(
            durable.cache().resident_clips(),
            reference.cache().resident_clips()
        );
        drop(durable);

        // First reopen: pure WAL replay from empty, bit-identical to the
        // continuous run — residency in the exact same order, not just
        // the same set.
        let (_, mut reopened) = fresh(1_000);
        let (store, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        assert_eq!(reopened.attach_store(store, state).unwrap(), 300);
        assert_eq!(reopened.wal_replayed(), 300);
        assert_eq!(reopened.stats(), reference.stats(), "stats conserved");
        assert_eq!(
            reopened.cache().resident_clips(),
            reference.cache().resident_clips()
        );
        drop(reopened);

        // The reopen compacted (checkpoint subsumes the log): a second
        // reopen restores from the checkpoint, replays nothing, and
        // still reports the same stats and residency.
        let (_, mut again) = fresh(1_000);
        let (store, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        assert_eq!(again.attach_store(store, state).unwrap(), 0, "compacted");
        assert_eq!(again.stats(), reference.stats());
        let mut a = again.cache().resident_clips();
        let mut b = reference.cache().resident_clips();
        a.sort();
        b.sort();
        assert_eq!(a, b, "residency conserved through the checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
