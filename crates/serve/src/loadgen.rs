//! The closed-loop load harness.
//!
//! [`run`] replays a materialized trace against a target — the in-process
//! service or a TCP front-end — from `clients` threads. Each client owns
//! a round-robin partition of the trace and issues its next request only
//! after the previous reply arrives (closed loop: offered load adapts to
//! service speed, there is no open-loop queue to overflow). Per-client
//! [`HitStats`] and [`LatencyLog`]s merge order-invariantly into the
//! [`LoadReport`].
//!
//! With `clients == 1` the replay is the exact trace order, so a 1-shard
//! in-process run reproduces the serial simulator bit for bit
//! ([`serial_baseline`] builds that reference).
//!
//! ## Chaos mode
//!
//! [`run_with`] threads an optional [`FaultPlan`] through the replay:
//! each `(client, request, attempt)` consults the plan before touching
//! the wire, and injected faults (dropped connections, lost replies,
//! garbage lines, torn writes, shard poisoning) are recovered by a
//! bounded, deterministic retry loop ([`RetryPolicy`]). The loop
//! guarantees delivery: a plan never schedules more faults for one
//! request than the client has retries, so every request's final reply
//! reaches the client exactly once — the "no lost or duplicated
//! responses" invariant `tests/chaos.rs` asserts. With no plan the
//! replay takes the exact pre-chaos code path, keeping the
//! serial-equivalence anchor bit for bit. A zero-rate plan injects
//! nothing (its stats are bit-identical to a clean run) but still
//! routes through the retrying transport — that is the restart-
//! resilient mode: a TCP request caught by a server crash-restart is
//! retried over a fresh connection and counted exactly once, so
//! [`LoadReport::conserved`] holds across a `kill -9` + recovery.

use crate::client::{TcpCacheClient, Wire};
use crate::cluster::{ClusterHarness, ClusterView};
use crate::fault::{ChaosStats, FaultKind, FaultPlan, RetryPolicy};
use crate::latency::LatencyLog;
use crate::protocol::parse_command;
use crate::service::CacheService;
use crate::shard::{shard_seed, GetOutcome};
use clipcache_core::PolicySpec;
use clipcache_media::{ByteSize, ClipId, Repository};
use clipcache_sim::metrics::HitStats;
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::Trace;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Ring-routed TCP cluster membership as a load target: the client-side
/// half of the cluster tier. Every parameter must match the servers'
/// (same list order, same seed, same replication) — placement is a pure
/// function of them, so agreement is by construction, never negotiated.
#[derive(Debug, Clone)]
pub struct ClusterRoute {
    /// Every member address, in shared membership order.
    pub peers: Vec<String>,
    /// Replication factor `R`: a GET may be served by any of the clip's
    /// `R` ring owners (read-any), tried in owner order.
    pub replication: usize,
    /// The shared ring seed.
    pub seed: u64,
}

impl ClusterRoute {
    /// The topology view this route induces.
    pub fn view(&self) -> ClusterView {
        ClusterView::new(self.seed, self.peers.len(), self.replication)
    }
}

/// Where the load goes.
#[derive(Clone)]
pub enum Target {
    /// Call the service directly (no sockets).
    InProcess(Arc<CacheService>),
    /// Speak the line protocol to this address, one connection per
    /// client thread.
    Tcp(String),
    /// The in-process cluster harness (ring routing + peer fill without
    /// sockets). Deterministic with `clients == 1`; multi-client runs
    /// serialize on the harness lock.
    Cluster(Arc<Mutex<ClusterHarness>>),
    /// Ring-route each GET across a TCP cluster, failing over to the
    /// clip's replica owners when the primary is unreachable.
    ClusterTcp(ClusterRoute),
}

/// Everything configurable about one load run.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Closed-loop client threads (≥ 1).
    pub clients: usize,
    /// The fault schedule; `None` replays clean. A zero-rate plan
    /// injects nothing but keeps the retrying transport, which makes
    /// the run resilient to server restarts (`--faults rate=0`).
    pub faults: Option<FaultPlan>,
    /// Retry/backoff discipline for injected faults and real I/O errors.
    pub retry: RetryPolicy,
    /// Per-request client read timeout for TCP targets (a reply slower
    /// than this surfaces as an error the retry loop recovers from).
    pub read_timeout: Option<Duration>,
    /// Wire protocol for TCP targets (in-process has no wire). Binary
    /// is the fast path; text is the debuggable default every
    /// pre-existing golden was recorded against.
    pub wire: Wire,
    /// Pipeline depth for *clean* TCP replays: each client keeps up to
    /// this many requests in flight on its connection (batched into
    /// one write per window). Depth 1 is the classic closed loop. The
    /// chaos replay always runs request-at-a-time regardless — fault
    /// attribution is per-request. Per-connection reply order is
    /// preserved by the server, so a 1-shard 1-client pipelined run is
    /// still bit-identical to the serial simulator.
    pub pipeline: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            clients: 1,
            faults: None,
            retry: RetryPolicy::default(),
            read_timeout: None,
            wire: Wire::Text,
            pipeline: 1,
        }
    }
}

impl LoadOptions {
    /// Clean-replay options for `clients` threads.
    pub fn clients(clients: usize) -> Self {
        LoadOptions {
            clients,
            ..LoadOptions::default()
        }
    }
}

/// Everything one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Hit statistics observed at the clients (merged across threads).
    pub observed: HitStats,
    /// Wall-clock request latencies (merged across threads).
    pub latency: LatencyLog,
    /// Wall-clock duration of the whole run in seconds.
    pub elapsed_secs: f64,
    /// Client threads used.
    pub clients: usize,
    /// Chaos counters (all zero for a clean replay).
    pub chaos: ChaosStats,
    /// Shard recoveries the *server* performed during the run.
    pub recoveries: u64,
    /// The fault plan the run used, if any.
    pub plan: Option<FaultPlan>,
}

impl LoadReport {
    /// Requests completed per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            return 0.0;
        }
        self.observed.requests() as f64 / self.elapsed_secs
    }

    /// The chaos invariant: every request's reply was delivered to the
    /// issuing client exactly once (no losses, no duplicates), and each
    /// delivered reply was recorded exactly once in the hit statistics
    /// (`hits + misses == delivered`).
    pub fn conserved(&self) -> bool {
        self.observed.requests() == self.chaos.delivered
            && self.latency.count() as u64 == self.chaos.delivered
    }

    /// A deterministic chaos summary: everything the run counted except
    /// wall-clock quantities, one `key=value` group per line. Two runs
    /// with the same `(trace, plan, clients)` must render byte-identical
    /// reports — CI diffs this against a committed golden.
    ///
    /// The `degraded` line appears only when the run actually degraded
    /// (the client received governor `BUSY` sheds), so every report
    /// from a non-degraded run — including all pre-existing goldens —
    /// renders byte-identically to before the line existed.
    pub fn chaos_report(&self) -> String {
        let plan = match &self.plan {
            Some(p) => p.spelling(),
            None => "none".into(),
        };
        let c = &self.chaos;
        let degraded = if c.busy_backoffs > 0 {
            format!("degraded busy_backoffs={}\n", c.busy_backoffs)
        } else {
            String::new()
        };
        format!(
            "chaos-report v1\n\
             plan {plan}\n\
             clients={} delivered={}\n\
             faults drop_pre={} drop_post={} garbage={} torn={} poison={} injected={}\n\
             recovery retries={} reconnects={} err_replies={} shard_recoveries={}\n\
             {degraded}observed hits={} misses={} byte_hits={} byte_misses={} evictions={}\n\
             invariant conservation={}\n",
            self.clients,
            c.delivered,
            c.drops_before,
            c.drops_after,
            c.garbage,
            c.torn,
            c.poisons,
            c.injected(),
            c.retries,
            c.reconnects,
            c.err_replies,
            self.recoveries,
            self.observed.hits,
            self.observed.misses,
            self.observed.byte_hits.as_u64(),
            self.observed.byte_misses.as_u64(),
            self.observed.evictions,
            if self.conserved() { "ok" } else { "VIOLATED" },
        )
    }
}

/// One client's view of the run.
struct ClientLog {
    stats: HitStats,
    latency: LatencyLog,
    chaos: ChaosStats,
}

/// The target-specific operations the chaos replay drives. Implementors
/// reconnect lazily: dropping the connection is cheap, and the next
/// operation re-establishes it (counting the reconnect).
trait Transport {
    fn get(&mut self, clip: ClipId) -> std::io::Result<GetOutcome>;
    /// `get` delivered with hostile framing (torn write). In-process
    /// targets have no wire, so this is a plain `get` there.
    fn get_torn(&mut self, clip: ClipId) -> std::io::Result<GetOutcome>;
    /// Inject one line of garbage; returns whether it was answered with
    /// a structured `ERR` (always true in-process: the parser rejected).
    fn send_garbage(&mut self, payload: &[u8]) -> std::io::Result<bool>;
    /// Poison the clip's shard.
    fn poison(&mut self, clip: ClipId) -> std::io::Result<()>;
    /// Drop the connection (no-op in-process).
    fn drop_conn(&mut self);
    /// Reconnections performed so far.
    fn reconnects(&self) -> u64;
}

struct InProcessTransport {
    service: Arc<CacheService>,
}

impl Transport for InProcessTransport {
    fn get(&mut self, clip: ClipId) -> std::io::Result<GetOutcome> {
        self.service
            .get(clip)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))
    }

    fn get_torn(&mut self, clip: ClipId) -> std::io::Result<GetOutcome> {
        self.get(clip)
    }

    fn send_garbage(&mut self, payload: &[u8]) -> std::io::Result<bool> {
        // No wire to corrupt; feed the garbage to the same parser the
        // server would use and report whether it was rejected.
        Ok(parse_command(&String::from_utf8_lossy(payload)).is_err())
    }

    fn poison(&mut self, clip: ClipId) -> std::io::Result<()> {
        self.service.poison(clip);
        Ok(())
    }

    fn drop_conn(&mut self) {}

    fn reconnects(&self) -> u64 {
        0
    }
}

struct TcpTransport {
    addr: String,
    read_timeout: Option<Duration>,
    wire: Wire,
    client: Option<TcpCacheClient>,
    reconnects: u64,
}

impl TcpTransport {
    fn new(addr: &str, read_timeout: Option<Duration>, wire: Wire) -> Self {
        TcpTransport {
            addr: addr.to_string(),
            read_timeout,
            wire,
            client: None,
            reconnects: 0,
        }
    }

    fn ensure(&mut self) -> std::io::Result<&mut TcpCacheClient> {
        if self.client.is_none() {
            self.client = Some(TcpCacheClient::connect_wire(
                self.addr.as_str(),
                self.read_timeout,
                self.wire,
            )?);
            self.reconnects += 1;
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    fn finish(mut self) -> std::io::Result<()> {
        match self.client.take() {
            Some(client) => client.quit(),
            None => Ok(()),
        }
    }
}

impl Transport for TcpTransport {
    fn get(&mut self, clip: ClipId) -> std::io::Result<GetOutcome> {
        self.ensure()?.get(clip)
    }

    fn get_torn(&mut self, clip: ClipId) -> std::io::Result<GetOutcome> {
        self.ensure()?.get_torn(clip)
    }

    fn send_garbage(&mut self, payload: &[u8]) -> std::io::Result<bool> {
        let client = self.ensure()?;
        let reply = match client.wire() {
            // Text garbage: the plan's payload as one hostile line.
            Wire::Text => client.send_raw(payload)?,
            // Binary garbage: a corrupt-length frame (valid check byte,
            // impossible length) — the recoverable header-corruption
            // path; the server must resync after exactly the header.
            Wire::Binary => client.send_corrupt_frame()?,
        };
        Ok(reply.starts_with("ERR "))
    }

    fn poison(&mut self, clip: ClipId) -> std::io::Result<()> {
        self.ensure()?.poison(clip).map(|_| ())
    }

    fn drop_conn(&mut self) {
        self.client = None; // closes the socket
    }

    fn reconnects(&self) -> u64 {
        // The first connection of the run is establishment, not
        // recovery.
        self.reconnects.saturating_sub(1)
    }
}

/// The in-process cluster harness as a transport: the harness already
/// models routing, failover, and the peer wire, so the transport is a
/// thin lock-and-forward.
struct HarnessTransport {
    harness: Arc<Mutex<ClusterHarness>>,
}

impl HarnessTransport {
    fn lock(&self) -> std::sync::MutexGuard<'_, ClusterHarness> {
        self.harness.lock().expect("cluster harness poisoned")
    }
}

impl Transport for HarnessTransport {
    fn get(&mut self, clip: ClipId) -> std::io::Result<GetOutcome> {
        self.lock()
            .get(clip)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::NotConnected, e))
    }

    fn get_torn(&mut self, clip: ClipId) -> std::io::Result<GetOutcome> {
        self.get(clip)
    }

    fn send_garbage(&mut self, payload: &[u8]) -> std::io::Result<bool> {
        Ok(parse_command(&String::from_utf8_lossy(payload)).is_err())
    }

    fn poison(&mut self, clip: ClipId) -> std::io::Result<()> {
        self.lock()
            .poison(clip)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::NotConnected, e))
    }

    fn drop_conn(&mut self) {}

    fn reconnects(&self) -> u64 {
        0
    }
}

/// The ring-routing TCP transport: one lazy connection per cluster
/// member, each GET sent to the clip's first reachable owner (read-any
/// failover in owner order). A member that refuses or times out has its
/// connection dropped; the next request to it redials, which is how a
/// killed-and-restarted node is picked back up without any membership
/// churn.
struct ClusterTcpTransport {
    route: ClusterRoute,
    view: ClusterView,
    read_timeout: Option<Duration>,
    wire: Wire,
    conns: Vec<Option<TcpCacheClient>>,
    /// Members dialled at least once (their first dial is
    /// establishment, not recovery).
    dialled: Vec<bool>,
    reconnects: u64,
}

impl ClusterTcpTransport {
    fn new(route: &ClusterRoute, read_timeout: Option<Duration>, wire: Wire) -> Self {
        let view = route.view();
        let conns = (0..route.peers.len()).map(|_| None).collect();
        let dialled = vec![false; route.peers.len()];
        ClusterTcpTransport {
            route: route.clone(),
            view,
            read_timeout,
            wire,
            conns,
            dialled,
            reconnects: 0,
        }
    }

    fn ensure(&mut self, node: usize) -> std::io::Result<&mut TcpCacheClient> {
        if self.conns[node].is_none() {
            self.conns[node] = Some(TcpCacheClient::connect_wire(
                self.route.peers[node].as_str(),
                self.read_timeout,
                self.wire,
            )?);
            if self.dialled[node] {
                self.reconnects += 1;
            }
            self.dialled[node] = true;
        }
        Ok(self.conns[node].as_mut().expect("just connected"))
    }

    /// Run `op` against each of `clip`'s owners in order until one
    /// succeeds; a failed owner's connection is dropped so its next use
    /// redials.
    fn on_owners<T>(
        &mut self,
        clip: ClipId,
        mut op: impl FnMut(&mut TcpCacheClient) -> std::io::Result<T>,
    ) -> std::io::Result<T> {
        let owners = self.view.owners_for(clip);
        let mut last: Option<std::io::Error> = None;
        for &node in &owners {
            match self.ensure(node).and_then(&mut op) {
                Ok(value) => return Ok(value),
                Err(e) => {
                    self.conns[node] = None;
                    last = Some(e);
                }
            }
        }
        Err(last.expect("owner set is never empty"))
    }

    fn finish(mut self) -> std::io::Result<()> {
        for conn in &mut self.conns {
            if let Some(client) = conn.take() {
                client.quit()?;
            }
        }
        Ok(())
    }
}

impl Transport for ClusterTcpTransport {
    fn get(&mut self, clip: ClipId) -> std::io::Result<GetOutcome> {
        self.on_owners(clip, |client| client.get(clip))
    }

    fn get_torn(&mut self, clip: ClipId) -> std::io::Result<GetOutcome> {
        self.on_owners(clip, |client| client.get_torn(clip))
    }

    fn send_garbage(&mut self, payload: &[u8]) -> std::io::Result<bool> {
        // Garbage has no clip to route by; member 0 takes the abuse.
        let client = self.ensure(0)?;
        let reply = match client.wire() {
            Wire::Text => client.send_raw(payload)?,
            Wire::Binary => client.send_corrupt_frame()?,
        };
        Ok(reply.starts_with("ERR "))
    }

    fn poison(&mut self, clip: ClipId) -> std::io::Result<()> {
        self.on_owners(clip, |client| client.poison(clip).map(|_| ()))
    }

    fn drop_conn(&mut self) {
        for conn in &mut self.conns {
            *conn = None;
        }
    }

    fn reconnects(&self) -> u64 {
        self.reconnects
    }
}

/// Deliver one request through the fault schedule, retrying until the
/// reply reaches the client.
///
/// `attempt` drives the plan (injection stops once the retry budget is
/// consumed, so delivery is guaranteed); `io_retries` separately bounds
/// recovery from *real* transport errors so a genuinely dead server
/// still surfaces as `Err` instead of an infinite loop.
fn chaos_get(
    transport: &mut dyn Transport,
    clip: ClipId,
    client: u64,
    request: u64,
    plan: &FaultPlan,
    retry: &RetryPolicy,
    chaos: &mut ChaosStats,
) -> std::io::Result<GetOutcome> {
    let mut attempt: u32 = 0;
    let mut io_retries: u32 = 0;
    loop {
        let injected = if attempt <= retry.max_retries {
            plan.decide(client, request, attempt)
        } else {
            None
        };
        // Faults that consume this attempt entirely and force a retry.
        match injected {
            Some(FaultKind::DropBeforeSend) => {
                chaos.drops_before += 1;
                chaos.retries += 1;
                transport.drop_conn();
                std::thread::sleep(retry.backoff(attempt));
                attempt += 1;
                continue;
            }
            Some(FaultKind::DropAfterSend) => {
                // The server processes the request; the reply is lost in
                // flight (read and discarded), so the retried GET is the
                // idempotent duplicate.
                match transport.get(clip) {
                    Ok(_) | Err(_) => {}
                }
                chaos.drops_after += 1;
                chaos.retries += 1;
                transport.drop_conn();
                std::thread::sleep(retry.backoff(attempt));
                attempt += 1;
                continue;
            }
            // Faults that precede the real request on this attempt.
            Some(FaultKind::Garbage) => {
                chaos.garbage += 1;
                let payload = plan.garbage_payload(client, request, attempt);
                match transport.send_garbage(&payload) {
                    Ok(true) => chaos.err_replies += 1,
                    Ok(false) => {}
                    Err(_) => transport.drop_conn(),
                }
            }
            Some(FaultKind::PoisonShard) => {
                chaos.poisons += 1;
                // A refusal (chaos-disabled server) is an ERR reply, not
                // a dead connection; either way the real GET proceeds.
                let _ = transport.poison(clip);
            }
            Some(FaultKind::TornWrite) | None => {}
        }
        let result = if injected == Some(FaultKind::TornWrite) {
            chaos.torn += 1;
            transport.get_torn(clip)
        } else {
            transport.get(clip)
        };
        match result {
            Ok(outcome) => {
                chaos.delivered += 1;
                return Ok(outcome);
            }
            Err(e) => {
                // A real transport failure (dead server, timeout,
                // refused admission): bounded reconnect-and-retry.
                if io_retries >= retry.max_retries {
                    return Err(e);
                }
                io_retries += 1;
                chaos.retries += 1;
                if crate::client::is_busy_error(&e) {
                    // A governor shed: the server is alive, just loaded.
                    // Keep the connection (redialing adds to its burden)
                    // and back off before the idempotent re-send.
                    chaos.busy_backoffs += 1;
                } else {
                    transport.drop_conn();
                }
                std::thread::sleep(retry.backoff(attempt));
                attempt += 1;
            }
        }
    }
}

/// The clean replay: the exact pre-chaos fast path, used whenever no
/// fault plan is active so the serial-equivalence anchor stays intact.
fn replay(
    part: &Trace,
    repo: &Repository,
    mut get: impl FnMut(ClipId) -> std::io::Result<GetOutcome>,
) -> std::io::Result<ClientLog> {
    let mut stats = HitStats::new();
    let mut latency = LatencyLog::new();
    let mut chaos = ChaosStats::default();
    for req in part {
        let size = repo.size_of(req.clip);
        let started = Instant::now();
        let outcome = get(req.clip)?;
        latency.record_nanos(started.elapsed().as_nanos() as u64);
        // A peer fill (`PHIT`) is an origin fetch avoided: the client
        // observes it as a hit. Non-cluster targets never set `peer`.
        stats.record(outcome.hit || outcome.peer, size, outcome.evictions);
        chaos.delivered += 1;
    }
    Ok(ClientLog {
        stats,
        latency,
        chaos,
    })
}

/// The pipelined clean replay: windows of up to `depth` requests are
/// batched into one write, then the replies are collected in order.
/// Per-reply latency is measured from the window's send, so it includes
/// the queueing a deep pipeline creates — that is the honest number.
///
/// Because the server preserves per-connection order, the sequence of
/// (request, outcome) pairs is identical to a depth-1 replay of the
/// same partition: pipelining changes timing, never results.
fn replay_pipelined(
    part: &Trace,
    repo: &Repository,
    client: &mut TcpCacheClient,
    depth: usize,
) -> std::io::Result<ClientLog> {
    let mut stats = HitStats::new();
    let mut latency = LatencyLog::new();
    let mut chaos = ChaosStats::default();
    let mut window: Vec<ClipId> = Vec::with_capacity(depth);
    for batch in part.requests().chunks(depth.max(1)) {
        window.clear();
        window.extend(batch.iter().map(|req| req.clip));
        let started = Instant::now();
        client.send_gets(&window)?;
        for req in batch {
            let outcome = client.recv_get()?;
            latency.record_nanos(started.elapsed().as_nanos() as u64);
            stats.record(
                outcome.hit || outcome.peer,
                repo.size_of(req.clip),
                outcome.evictions,
            );
            chaos.delivered += 1;
        }
    }
    Ok(ClientLog {
        stats,
        latency,
        chaos,
    })
}

/// The chaos replay: every request runs through [`chaos_get`].
fn replay_chaos(
    part: &Trace,
    repo: &Repository,
    transport: &mut dyn Transport,
    client: u64,
    plan: &FaultPlan,
    retry: &RetryPolicy,
) -> std::io::Result<ClientLog> {
    let mut stats = HitStats::new();
    let mut latency = LatencyLog::new();
    let mut chaos = ChaosStats::default();
    for (index, req) in part.requests().iter().enumerate() {
        let size = repo.size_of(req.clip);
        let started = Instant::now();
        let outcome = chaos_get(
            transport,
            req.clip,
            client,
            index as u64,
            plan,
            retry,
            &mut chaos,
        )?;
        latency.record_nanos(started.elapsed().as_nanos() as u64);
        stats.record(outcome.hit || outcome.peer, size, outcome.evictions);
    }
    chaos.reconnects = transport.reconnects();
    Ok(ClientLog {
        stats,
        latency,
        chaos,
    })
}

/// Replay `trace` against `target` from `options.clients` closed-loop
/// threads, injecting `options.faults` if set.
///
/// Client `c` replays partition `c` of
/// [`Trace::partition_round_robin`]`(clients)`, so the union of issued
/// requests is exactly the trace regardless of thread count; only the
/// interleaving (and therefore multi-shard cache state) varies.
///
/// # Panics
/// If `options.clients == 0`.
pub fn run_with(
    target: &Target,
    repo: &Arc<Repository>,
    trace: &Trace,
    options: &LoadOptions,
) -> std::io::Result<LoadReport> {
    let clients = options.clients;
    assert!(clients > 0, "need at least one client");
    let parts = trace.partition_round_robin(clients);
    let started = Instant::now();
    let logs: Vec<std::io::Result<ClientLog>> = if clients == 1 {
        // Single client: run on this thread — keeps the serial-equivalence
        // path free of scheduler noise.
        vec![run_client(target, repo, &parts[0], 0, options)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .enumerate()
                .map(|(c, part)| scope.spawn(move || run_client(target, repo, part, c, options)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread panicked"))
                .collect()
        })
    };
    let elapsed_secs = started.elapsed().as_secs_f64();
    let mut observed = HitStats::new();
    let mut latency = LatencyLog::new();
    let mut chaos = ChaosStats::default();
    for log in logs {
        let log = log?;
        observed.merge(&log.stats);
        latency.merge(&log.latency);
        chaos.merge(&log.chaos);
    }
    let recoveries = match target {
        Target::InProcess(service) => service.recoveries(),
        Target::Tcp(addr) => {
            let mut client =
                TcpCacheClient::connect_wire(addr.as_str(), options.read_timeout, options.wire)?;
            let recoveries = client.stats()?.recoveries;
            client.quit()?;
            recoveries
        }
        Target::Cluster(harness) => {
            let harness = harness.lock().expect("cluster harness poisoned");
            (0..harness.nodes())
                .map(|i| harness.node(i).recoveries())
                .sum()
        }
        // Cluster-wide recoveries: sum over every member that still
        // answers (a dead member's count is unknowable — report what
        // the living cluster performed).
        Target::ClusterTcp(route) => {
            let mut total = 0;
            for addr in &route.peers {
                if let Ok(mut client) =
                    TcpCacheClient::connect_wire(addr.as_str(), options.read_timeout, options.wire)
                {
                    total += client.stats()?.recoveries;
                    client.quit()?;
                }
            }
            total
        }
    };
    Ok(LoadReport {
        observed,
        latency,
        elapsed_secs,
        clients,
        chaos,
        recoveries,
        plan: options.faults.clone(),
    })
}

/// Replay `trace` against `target` from `clients` clean closed-loop
/// threads (no fault injection) — see [`run_with`].
pub fn run(
    target: &Target,
    repo: &Arc<Repository>,
    trace: &Trace,
    clients: usize,
) -> std::io::Result<LoadReport> {
    run_with(target, repo, trace, &LoadOptions::clients(clients))
}

fn run_client(
    target: &Target,
    repo: &Repository,
    part: &Trace,
    client_index: usize,
    options: &LoadOptions,
) -> std::io::Result<ClientLog> {
    // Any plan — even rate=0 — routes through the retrying chaos
    // transport: zero-rate injects nothing (bit-identical stats, the
    // test below pins it) but survives a server restart mid-run via
    // lazy reconnect + bounded io_retries, with the request counted
    // exactly once.
    let plan = options.faults.as_ref();
    match (target, plan) {
        (Target::InProcess(service), None) => replay(part, repo, |clip| {
            service
                .get(clip)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))
        }),
        (Target::Tcp(addr), None) => {
            let mut client =
                TcpCacheClient::connect_wire(addr.as_str(), options.read_timeout, options.wire)?;
            let log = if options.pipeline > 1 {
                replay_pipelined(part, repo, &mut client, options.pipeline)?
            } else {
                replay(part, repo, |clip| client.get(clip))?
            };
            client.quit()?;
            Ok(log)
        }
        (Target::InProcess(service), Some(plan)) => {
            let mut transport = InProcessTransport {
                service: Arc::clone(service),
            };
            replay_chaos(
                part,
                repo,
                &mut transport,
                client_index as u64,
                plan,
                &options.retry,
            )
        }
        (Target::Tcp(addr), Some(plan)) => {
            let mut transport = TcpTransport::new(addr, options.read_timeout, options.wire);
            let log = replay_chaos(
                part,
                repo,
                &mut transport,
                client_index as u64,
                plan,
                &options.retry,
            )?;
            transport.finish()?;
            Ok(log)
        }
        (Target::Cluster(harness), None) => replay(part, repo, |clip| {
            harness
                .lock()
                .expect("cluster harness poisoned")
                .get(clip)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::NotConnected, e))
        }),
        (Target::Cluster(harness), Some(plan)) => {
            let mut transport = HarnessTransport {
                harness: Arc::clone(harness),
            };
            replay_chaos(
                part,
                repo,
                &mut transport,
                client_index as u64,
                plan,
                &options.retry,
            )
        }
        // Ring routing picks a connection per clip, so there is no
        // single pipe to batch into: cluster replays run
        // request-at-a-time whatever `options.pipeline` says.
        (Target::ClusterTcp(route), None) => {
            let mut transport = ClusterTcpTransport::new(route, options.read_timeout, options.wire);
            let log = replay(part, repo, |clip| transport.get(clip))?;
            transport.finish()?;
            Ok(log)
        }
        (Target::ClusterTcp(route), Some(plan)) => {
            let mut transport = ClusterTcpTransport::new(route, options.read_timeout, options.wire);
            let log = replay_chaos(
                part,
                repo,
                &mut transport,
                client_index as u64,
                plan,
                &options.retry,
            )?;
            transport.finish()?;
            Ok(log)
        }
    }
}

/// The serial reference: replay `trace` through the plain simulator with
/// the seed shard 0 of a service would get. A 1-shard, 1-client load run
/// must produce these exact [`HitStats`].
pub fn serial_baseline(
    repo: &Arc<Repository>,
    policy: PolicySpec,
    capacity: ByteSize,
    seed: u64,
    trace: &Trace,
) -> HitStats {
    let mut cache = policy.build(Arc::clone(repo), capacity, shard_seed(seed, 0), None);
    simulate(
        cache.as_mut(),
        repo,
        trace.requests(),
        &SimulationConfig::default(),
    )
    .stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use clipcache_core::PolicyKind;
    use clipcache_media::paper;
    use clipcache_workload::RequestGenerator;

    fn fixture(shards: usize) -> (Arc<Repository>, Arc<CacheService>, Trace) {
        let repo = Arc::new(paper::variable_sized_repository_of(24));
        let service = Arc::new(
            CacheService::new(
                Arc::clone(&repo),
                ServiceConfig::new(
                    PolicyKind::Lru,
                    shards,
                    repo.cache_capacity_for_ratio(0.25),
                    42,
                ),
                None,
            )
            .unwrap(),
        );
        let trace = Trace::from_generator(RequestGenerator::new(24, 0.27, 0, 2_000, 9));
        (repo, service, trace)
    }

    #[test]
    fn observed_stats_match_service_stats() {
        let (repo, service, trace) = fixture(4);
        let report = run(&Target::InProcess(Arc::clone(&service)), &repo, &trace, 3).unwrap();
        // Client-observed and server-side counters describe the same
        // requests, so they agree exactly whatever the interleaving.
        assert_eq!(report.observed, service.stats());
        assert_eq!(report.observed.requests(), 2_000);
        assert_eq!(report.latency.count(), 2_000);
        assert!(report.throughput() > 0.0);
        assert_eq!(report.chaos.delivered, 2_000);
        assert!(report.conserved());
        assert_eq!(report.recoveries, 0);
    }

    #[test]
    fn single_client_single_shard_is_serial() {
        let (repo, service, trace) = fixture(1);
        let report = run(&Target::InProcess(Arc::clone(&service)), &repo, &trace, 1).unwrap();
        let baseline = serial_baseline(
            &repo,
            PolicyKind::Lru.into(),
            repo.cache_capacity_for_ratio(0.25),
            42,
            &trace,
        );
        assert_eq!(report.observed, baseline);
        assert_eq!(service.stats(), baseline);
    }

    #[test]
    fn zero_rate_plan_is_bit_identical_to_clean_replay() {
        let (repo, clean_service, trace) = fixture(1);
        let clean = run(
            &Target::InProcess(Arc::clone(&clean_service)),
            &repo,
            &trace,
            1,
        )
        .unwrap();
        let (_, chaos_service, _) = fixture(1);
        let options = LoadOptions {
            faults: Some(FaultPlan::new(7, 0.0)),
            ..LoadOptions::default()
        };
        let chaotic = run_with(
            &Target::InProcess(Arc::clone(&chaos_service)),
            &repo,
            &trace,
            &options,
        )
        .unwrap();
        assert_eq!(chaotic.observed, clean.observed);
        assert_eq!(chaotic.chaos.injected(), 0);
        assert!(chaotic.conserved());
    }
}
