//! The closed-loop load harness.
//!
//! [`run`] replays a materialized trace against a target — the in-process
//! service or a TCP front-end — from `clients` threads. Each client owns
//! a round-robin partition of the trace and issues its next request only
//! after the previous reply arrives (closed loop: offered load adapts to
//! service speed, there is no open-loop queue to overflow). Per-client
//! [`HitStats`] and [`LatencyLog`]s merge order-invariantly into the
//! [`LoadReport`].
//!
//! With `clients == 1` the replay is the exact trace order, so a 1-shard
//! in-process run reproduces the serial simulator bit for bit
//! ([`serial_baseline`] builds that reference).

use crate::client::TcpCacheClient;
use crate::latency::LatencyLog;
use crate::service::CacheService;
use crate::shard::{shard_seed, GetOutcome};
use clipcache_core::PolicySpec;
use clipcache_media::{ByteSize, ClipId, Repository};
use clipcache_sim::metrics::HitStats;
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::Trace;
use std::sync::Arc;
use std::time::Instant;

/// Where the load goes.
#[derive(Clone)]
pub enum Target {
    /// Call the service directly (no sockets).
    InProcess(Arc<CacheService>),
    /// Speak the line protocol to this address, one connection per
    /// client thread.
    Tcp(String),
}

/// Everything one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Hit statistics observed at the clients (merged across threads).
    pub observed: HitStats,
    /// Wall-clock request latencies (merged across threads).
    pub latency: LatencyLog,
    /// Wall-clock duration of the whole run in seconds.
    pub elapsed_secs: f64,
    /// Client threads used.
    pub clients: usize,
}

impl LoadReport {
    /// Requests completed per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            return 0.0;
        }
        self.observed.requests() as f64 / self.elapsed_secs
    }
}

/// One client's view of the run.
struct ClientLog {
    stats: HitStats,
    latency: LatencyLog,
}

fn replay(
    part: &Trace,
    repo: &Repository,
    mut get: impl FnMut(ClipId) -> std::io::Result<GetOutcome>,
) -> std::io::Result<ClientLog> {
    let mut stats = HitStats::new();
    let mut latency = LatencyLog::new();
    for req in part {
        let size = repo.size_of(req.clip);
        let started = Instant::now();
        let outcome = get(req.clip)?;
        latency.record_nanos(started.elapsed().as_nanos() as u64);
        stats.record(outcome.hit, size, outcome.evictions);
    }
    Ok(ClientLog { stats, latency })
}

/// Replay `trace` against `target` from `clients` closed-loop threads.
///
/// Client `c` replays partition `c` of
/// [`Trace::partition_round_robin`]`(clients)`, so the union of issued
/// requests is exactly the trace regardless of thread count; only the
/// interleaving (and therefore multi-shard cache state) varies.
///
/// # Panics
/// If `clients == 0`.
pub fn run(
    target: &Target,
    repo: &Arc<Repository>,
    trace: &Trace,
    clients: usize,
) -> std::io::Result<LoadReport> {
    assert!(clients > 0, "need at least one client");
    let parts = trace.partition_round_robin(clients);
    let started = Instant::now();
    let logs: Vec<std::io::Result<ClientLog>> = if clients == 1 {
        // Single client: run on this thread — keeps the serial-equivalence
        // path free of scheduler noise.
        vec![run_client(target, repo, &parts[0])]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|part| scope.spawn(|| run_client(target, repo, part)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread panicked"))
                .collect()
        })
    };
    let elapsed_secs = started.elapsed().as_secs_f64();
    let mut observed = HitStats::new();
    let mut latency = LatencyLog::new();
    for log in logs {
        let log = log?;
        observed.merge(&log.stats);
        latency.merge(&log.latency);
    }
    Ok(LoadReport {
        observed,
        latency,
        elapsed_secs,
        clients,
    })
}

fn run_client(target: &Target, repo: &Repository, part: &Trace) -> std::io::Result<ClientLog> {
    match target {
        Target::InProcess(service) => replay(part, repo, |clip| {
            service
                .get(clip)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))
        }),
        Target::Tcp(addr) => {
            let mut client = TcpCacheClient::connect(addr.as_str())?;
            let log = replay(part, repo, |clip| client.get(clip))?;
            client.quit()?;
            Ok(log)
        }
    }
}

/// The serial reference: replay `trace` through the plain simulator with
/// the seed shard 0 of a service would get. A 1-shard, 1-client load run
/// must produce these exact [`HitStats`].
pub fn serial_baseline(
    repo: &Arc<Repository>,
    policy: PolicySpec,
    capacity: ByteSize,
    seed: u64,
    trace: &Trace,
) -> HitStats {
    let mut cache = policy.build(Arc::clone(repo), capacity, shard_seed(seed, 0), None);
    simulate(
        cache.as_mut(),
        repo,
        trace.requests(),
        &SimulationConfig::default(),
    )
    .stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use clipcache_core::PolicyKind;
    use clipcache_media::paper;
    use clipcache_workload::RequestGenerator;

    fn fixture(shards: usize) -> (Arc<Repository>, Arc<CacheService>, Trace) {
        let repo = Arc::new(paper::variable_sized_repository_of(24));
        let service = Arc::new(
            CacheService::new(
                Arc::clone(&repo),
                ServiceConfig {
                    policy: PolicyKind::Lru.into(),
                    shards,
                    capacity: repo.cache_capacity_for_ratio(0.25),
                    seed: 42,
                },
                None,
            )
            .unwrap(),
        );
        let trace = Trace::from_generator(RequestGenerator::new(24, 0.27, 0, 2_000, 9));
        (repo, service, trace)
    }

    #[test]
    fn observed_stats_match_service_stats() {
        let (repo, service, trace) = fixture(4);
        let report = run(&Target::InProcess(Arc::clone(&service)), &repo, &trace, 3).unwrap();
        // Client-observed and server-side counters describe the same
        // requests, so they agree exactly whatever the interleaving.
        assert_eq!(report.observed, service.stats());
        assert_eq!(report.observed.requests(), 2_000);
        assert_eq!(report.latency.count(), 2_000);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn single_client_single_shard_is_serial() {
        let (repo, service, trace) = fixture(1);
        let report = run(&Target::InProcess(Arc::clone(&service)), &repo, &trace, 1).unwrap();
        let baseline = serial_baseline(
            &repo,
            PolicyKind::Lru.into(),
            repo.cache_capacity_for_ratio(0.25),
            42,
            &trace,
        );
        assert_eq!(report.observed, baseline);
        assert_eq!(service.stats(), baseline);
    }
}
