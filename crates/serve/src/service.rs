//! The concurrent service core: N shards behind independent mutexes.
//!
//! [`CacheService`] splits a byte budget across [`Shard`]s and routes
//! each request to the shard owning its clip ([`shard_of`]). Shards
//! never nest locks — every operation locks exactly one shard, and the
//! merged views ([`stats`](CacheService::stats),
//! [`snapshot`](CacheService::snapshot)) lock shards one at a time in
//! index order — so the service is trivially deadlock-free.
//!
//! With one shard the service *is* the serial simulator: same policy
//! seed (`shard_seed(seed, 0)`), same virtual clock, same statistics
//! recording. The serial-equivalence test pins this bit for bit.
//!
//! ## Poison recovery
//!
//! Every lock acquisition goes through `CacheService::lock_shard`,
//! which treats a poisoned mutex as a recoverable fault rather than a
//! reason to panic: the shard is rebuilt from its last checkpoint
//! ([`Shard::recover`]), the poison flag is cleared, and a service-wide
//! [`recoveries`](CacheService::recoveries) counter (surfaced in the
//! `STATS` protocol reply) records that it happened. One panicking
//! request can therefore no longer wedge a shard for the process
//! lifetime — the next request heals it.

use crate::persist::{CrashAction, PersistError, PersistOptions, RecoveryReport, ShardStore};
use crate::shard::{shard_of, shard_seed, GetOutcome, RangeOutcome, Shard, CHECKPOINT_EVERY};
use clipcache_core::registry::BuildError;
use clipcache_core::snapshot::CacheSnapshot;
use clipcache_core::PolicySpec;
use clipcache_media::{ByteSize, ClipId, Repository};
use clipcache_sim::metrics::HitStats;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Construction parameters for a [`CacheService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// The replacement policy every shard runs.
    pub policy: PolicySpec,
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Total byte budget, split evenly across shards.
    pub capacity: ByteSize,
    /// Service seed; shard `i` derives `shard_seed(seed, i)`.
    pub seed: u64,
    /// Accesses between checkpoint refreshes on every shard
    /// (`--checkpoint-every`; default [`CHECKPOINT_EVERY`]).
    pub checkpoint_every: u64,
}

impl ServiceConfig {
    /// A config with the default checkpoint cadence
    /// ([`CHECKPOINT_EVERY`]).
    pub fn new(
        policy: impl Into<PolicySpec>,
        shards: usize,
        capacity: ByteSize,
        seed: u64,
    ) -> Self {
        ServiceConfig {
            policy: policy.into(),
            shards,
            capacity,
            seed,
            checkpoint_every: CHECKPOINT_EVERY,
        }
    }

    /// Override the checkpoint cadence.
    ///
    /// # Panics
    /// If `every == 0`.
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        assert!(every > 0, "checkpoint cadence must be at least 1");
        self.checkpoint_every = every;
        self
    }
}

/// Errors a service request can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The clip id is not in the repository.
    UnknownClip(ClipId),
    /// A `GETRANGE` probe addressed a chunk index at or past the clip's
    /// chunk count. Always a loud refusal, never a stall or a silent
    /// miss: the reply names both the index and the valid range.
    ChunkOutOfRange {
        /// The clip probed.
        clip: ClipId,
        /// The out-of-range chunk index.
        chunk: u32,
        /// How many chunks the clip actually has.
        total: u32,
    },
    /// The durable store beneath a shard failed (I/O, corruption).
    Persist(String),
    /// An armed crash point fired with [`CrashAction::Surface`]; the
    /// service behaves as a killed process from here on (the binaries
    /// use [`CrashAction::ExitProcess`] and actually exit, code 137).
    Crashed,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownClip(c) => write!(f, "unknown clip id {}", c.get()),
            ServiceError::ChunkOutOfRange { clip, chunk, total } => write!(
                f,
                "chunk {chunk} out of range for clip {} ({total} chunks, indices 0..{total})",
                clip.get()
            ),
            ServiceError::Persist(reason) => write!(f, "durable store failed: {reason}"),
            ServiceError::Crashed => write!(f, "injected crash point fired"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Serializes the panic-hook swap in [`CacheService::poison`] so
/// concurrent injections do not clobber each other's saved hook.
static POISON_HOOK: Mutex<()> = Mutex::new(());

/// A sharded, thread-safe cache service.
pub struct CacheService {
    repo: Arc<Repository>,
    shards: Vec<Mutex<Shard>>,
    policy: PolicySpec,
    recoveries: AtomicU64,
    /// Total WAL records replayed while opening the durable stores
    /// (zero for an in-memory service or a cold start).
    wal_replayed: u64,
    /// What a fired crash point does: the binaries exit the process
    /// (mimicking `kill -9`), the in-process chaos tests surface
    /// [`ServiceError::Crashed`] instead.
    on_crash: CrashAction,
}

impl CacheService {
    /// Build a service: `config.shards` caches, each with
    /// `capacity / shards` bytes and its own derived seed.
    ///
    /// # Panics
    /// If `config.shards == 0`.
    pub fn new(
        repo: Arc<Repository>,
        config: ServiceConfig,
        frequencies: Option<&[f64]>,
    ) -> Result<Self, BuildError> {
        assert!(config.shards > 0, "a service needs at least one shard");
        let per_shard = ByteSize::bytes(config.capacity.as_u64() / config.shards as u64);
        let mut shards = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            let seed = shard_seed(config.seed, i);
            let cache = config
                .policy
                .try_build(Arc::clone(&repo), per_shard, seed, frequencies)?;
            shards.push(Mutex::new(Shard::new(
                cache,
                Arc::clone(&repo),
                config.policy,
                seed,
                frequencies.map(<[f64]>::to_vec),
                config.checkpoint_every,
            )));
        }
        Ok(CacheService {
            repo,
            shards,
            policy: config.policy,
            recoveries: AtomicU64::new(0),
            wal_replayed: 0,
            on_crash: CrashAction::Surface,
        })
    }

    /// Build a *durable* service rooted at `opts.dir`: each shard owns
    /// `dir/shard-{i}` (checkpoint + WAL), recovering whatever state a
    /// previous process made durable before attaching.
    ///
    /// Recovery per shard: load the newest valid checkpoint, replay the
    /// WAL tail through the normal access path, truncate a torn final
    /// record. Mid-log corruption and incompatible checkpoints
    /// (unknown version, wrong policy/capacity) are loud
    /// [`PersistError`]s — a durable service never silently starts
    /// cold over bad state.
    ///
    /// If `opts.crash` is set, *every* shard arms the crash point; each
    /// counts only its own post-recovery operations (deterministic for
    /// single-shard runs, which is what the crash tests use).
    pub fn open_persistent(
        repo: Arc<Repository>,
        config: ServiceConfig,
        frequencies: Option<&[f64]>,
        opts: &PersistOptions,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        let mut service = CacheService::new(repo, config, frequencies)
            .map_err(|e| PersistError::Build(e.to_string()))?;
        service.on_crash = opts.on_crash;
        let mut report = RecoveryReport::default();
        for i in 0..service.shards.len() {
            let dir = opts.dir.join(format!("shard-{i}"));
            let (store, state) = ShardStore::open_tuned(&dir, opts.sync, opts.tuning)?;
            let shard = service.shards[i].get_mut().expect("no one else holds it");
            if state.checkpoint.is_some() {
                report.checkpoints_loaded += 1;
            }
            report.torn_bytes_dropped += state.torn_bytes_dropped;
            report.replayed += shard.attach_store(store, state)?;
            shard.arm_crash(opts.crash);
        }
        service.wal_replayed = report.replayed;
        Ok((service, report))
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The repository served.
    pub fn repo(&self) -> &Arc<Repository> {
        &self.repo
    }

    /// The policy every shard runs.
    pub fn policy(&self) -> PolicySpec {
        self.policy
    }

    /// How many poisoned shards have been recovered so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// WAL records replayed when the durable stores were opened (zero
    /// for an in-memory service; surfaced in the `STATS` reply).
    pub fn wal_replayed(&self) -> u64 {
        self.wal_replayed
    }

    /// Map a shard-level persistence failure to the service error,
    /// honoring the configured crash action: the binaries die like a
    /// killed process, in-process harnesses see [`ServiceError::Crashed`].
    fn persist_failure(&self, err: PersistError) -> ServiceError {
        match (&err, self.on_crash) {
            (PersistError::CrashInjected, CrashAction::ExitProcess) => {
                eprintln!("clipcache-serve: injected crash point fired; exiting");
                std::process::exit(137);
            }
            (PersistError::CrashInjected, CrashAction::Surface) => ServiceError::Crashed,
            _ => ServiceError::Persist(err.to_string()),
        }
    }

    /// Lock shard `index`, recovering it first if a previous request
    /// panicked while holding the lock.
    ///
    /// Recovery rebuilds the shard from its checkpoint (the panic may
    /// have interrupted a mutation, so the live cache is not trusted),
    /// clears the poison flag, and bumps the recovery counter. Requests
    /// racing for a poisoned lock recover it exactly once: the loser
    /// blocks on `lock()` until the winner has cleared the flag.
    fn lock_shard(&self, index: usize) -> MutexGuard<'_, Shard> {
        match self.shards[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.recover();
                self.shards[index].clear_poison();
                self.recoveries.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    fn lock_clip_shard(&self, clip: ClipId) -> MutexGuard<'_, Shard> {
        self.lock_shard(shard_of(clip, self.shards.len()))
    }

    /// Service a request: route to the owning shard, access its cache,
    /// record hit statistics. Locks exactly one shard; under group
    /// commit the durability wait happens *after* the lock is released,
    /// so concurrent requests on the shard ride one batched fsync.
    pub fn get(&self, clip: ClipId) -> Result<GetOutcome, ServiceError> {
        let size = self
            .repo
            .get(clip)
            .ok_or(ServiceError::UnknownClip(clip))?
            .size;
        let mut shard = self.lock_clip_shard(clip);
        let (outcome, ticket) = shard.get(clip, size).map_err(|e| self.persist_failure(e))?;
        drop(shard);
        if let Some(ticket) = ticket {
            ticket.wait().map_err(|e| self.persist_failure(e))?;
        }
        Ok(outcome)
    }

    /// Probe chunk-granular residency: is `chunk` of `clip` resident?
    ///
    /// A pure read of the owning shard's residency — no clock tick, no
    /// recency update — but WAL-logged like every other request. An
    /// out-of-range chunk index is refused loudly *before* the shard is
    /// touched ([`ServiceError::ChunkOutOfRange`]), never answered with
    /// a stall or a fabricated miss.
    pub fn get_range(&self, clip: ClipId, chunk: u32) -> Result<RangeOutcome, ServiceError> {
        if self.repo.get(clip).is_none() {
            return Err(ServiceError::UnknownClip(clip));
        }
        let total = self.repo.chunks_of(clip);
        if chunk >= total {
            return Err(ServiceError::ChunkOutOfRange { clip, chunk, total });
        }
        let mut shard = self.lock_clip_shard(clip);
        let (outcome, ticket) = shard
            .get_range(clip, chunk)
            .map_err(|e| self.persist_failure(e))?;
        drop(shard);
        if let Some(ticket) = ticket {
            ticket.wait().map_err(|e| self.persist_failure(e))?;
        }
        Ok(outcome)
    }

    /// Warm `clip` into its shard without counting it in the hit
    /// statistics. Returns whether the clip is resident afterwards.
    pub fn admit(&self, clip: ClipId) -> Result<bool, ServiceError> {
        if self.repo.get(clip).is_none() {
            return Err(ServiceError::UnknownClip(clip));
        }
        let mut shard = self.lock_clip_shard(clip);
        let (admitted, ticket) = shard.admit(clip).map_err(|e| self.persist_failure(e))?;
        drop(shard);
        if let Some(ticket) = ticket {
            ticket.wait().map_err(|e| self.persist_failure(e))?;
        }
        Ok(admitted)
    }

    /// Inject a service-level fault: panic while holding `clip`'s shard
    /// mutex, leaving it poisoned exactly as a crashed request would.
    ///
    /// The next operation touching the shard takes the recovery path.
    /// Returns the poisoned shard's index. This is the chaos harness's
    /// entry point (`POISON` protocol command, `loadgen --faults` with
    /// the `poison` kind) — deliberately public so resilience stays
    /// testable end to end, and harmless in production terms: the
    /// injected panic is confined to this call.
    pub fn poison(&self, clip: ClipId) -> usize {
        let index = shard_of(clip, self.shards.len());
        // Silence the default "thread panicked" hook for the injected
        // panic; the swap is serialized so concurrent injections cannot
        // lose the real hook.
        let _swap = POISON_HOOK.lock().unwrap_or_else(|p| p.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // Bound (not `_`) so the guard is held when the panic fires.
            let _guard = self.shards[index].lock();
            panic!("injected shard fault");
        }));
        std::panic::set_hook(prev);
        debug_assert!(result.is_err());
        index
    }

    /// Merged hit statistics across all shards.
    ///
    /// Locks shards one at a time (never two at once) and folds with
    /// [`HitStats::merge`], whose order-invariance makes the result
    /// independent of the locking order.
    pub fn stats(&self) -> HitStats {
        let mut total = HitStats::new();
        for i in 0..self.shards.len() {
            total.merge(self.lock_shard(i).stats());
        }
        total
    }

    /// Per-shard hit statistics, in shard order.
    pub fn per_shard_stats(&self) -> Vec<HitStats> {
        (0..self.shards.len())
            .map(|i| self.lock_shard(i).stats().clone())
            .collect()
    }

    /// Snapshot every shard (one [`CacheSnapshot`] per shard, in shard
    /// order). Each snapshot is taken under that shard's lock, so it is
    /// internally consistent; the set is not a global atomic cut —
    /// requests may land on other shards between snapshots.
    pub fn snapshot(&self) -> Vec<CacheSnapshot> {
        (0..self.shards.len())
            .map(|i| {
                let shard = self.lock_shard(i);
                CacheSnapshot::take(shard.cache(), self.policy, shard.clock())
            })
            .collect()
    }

    /// Total bytes resident across shards.
    pub fn used(&self) -> ByteSize {
        let mut total = 0u64;
        for i in 0..self.shards.len() {
            total += self.lock_shard(i).cache().used().as_u64();
        }
        ByteSize::bytes(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipcache_core::PolicyKind;
    use clipcache_media::paper;
    use clipcache_workload::{RequestGenerator, Trace};

    fn service(shards: usize, seed: u64) -> CacheService {
        let repo = Arc::new(paper::variable_sized_repository_of(24));
        let capacity = repo.cache_capacity_for_ratio(0.25);
        CacheService::new(
            Arc::clone(&repo),
            ServiceConfig::new(PolicyKind::Lru, shards, capacity, seed),
            None,
        )
        .expect("LRU builds")
    }

    #[test]
    fn get_hits_after_miss() {
        let svc = service(4, 7);
        let clip = ClipId::new(5);
        assert!(!svc.get(clip).unwrap().hit);
        assert!(svc.get(clip).unwrap().hit);
        let stats = svc.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn unknown_clip_is_an_error() {
        let svc = service(2, 7);
        let err = svc.get(ClipId::new(999)).unwrap_err();
        assert_eq!(err, ServiceError::UnknownClip(ClipId::new(999)));
        assert!(err.to_string().contains("999"));
        assert!(svc.admit(ClipId::new(999)).is_err());
    }

    #[test]
    fn get_range_probes_residency_and_rejects_bad_chunks() {
        let repo = Arc::new(
            paper::equi_sized_repository_of(8, ByteSize::mb(10)).with_chunk_size(ByteSize::mb(2)),
        );
        let svc = CacheService::new(
            Arc::clone(&repo),
            ServiceConfig::new(PolicyKind::Lru, 1, ByteSize::mb(30), 7),
            None,
        )
        .unwrap();
        let clip = ClipId::new(3);
        // Absent: every chunk probe misses, resident prefix is 0 of 5.
        let probe = svc.get_range(clip, 0).unwrap();
        assert!(!probe.hit);
        assert_eq!((probe.resident, probe.total), (0, 5));
        // Fully resident after a GET: probes hit across the range.
        svc.get(clip).unwrap();
        let probe = svc.get_range(clip, 4).unwrap();
        assert!(probe.hit);
        assert_eq!((probe.resident, probe.total), (5, 5));
        // Probes are pure: they counted nothing and ticked nothing.
        assert_eq!(svc.stats().requests(), 1);
        // Out-of-range chunk: a loud structured refusal, never a stall.
        let err = svc.get_range(clip, 5).unwrap_err();
        assert_eq!(
            err,
            ServiceError::ChunkOutOfRange {
                clip,
                chunk: 5,
                total: 5
            }
        );
        assert!(err.to_string().contains("out of range"));
        assert!(svc.get_range(ClipId::new(999), 0).is_err());
    }

    #[test]
    fn stats_merge_shard_counters() {
        let svc = service(4, 7);
        let trace = Trace::from_generator(RequestGenerator::new(24, 0.27, 0, 500, 11));
        for req in &trace {
            svc.get(req.clip).unwrap();
        }
        let merged = svc.stats();
        assert_eq!(merged.requests(), 500);
        let per_shard = svc.per_shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(HitStats::merged(per_shard.iter()), merged);
    }

    #[test]
    fn snapshots_cover_disjoint_clip_sets() {
        let svc = service(4, 7);
        let trace = Trace::from_generator(RequestGenerator::new(24, 0.27, 0, 300, 3));
        for req in &trace {
            svc.get(req.clip).unwrap();
        }
        let snaps = svc.snapshot();
        assert_eq!(snaps.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for (i, snap) in snaps.iter().enumerate() {
            for &clip in &snap.resident {
                assert_eq!(shard_of(clip, 4), i, "clip on the wrong shard");
                assert!(seen.insert(clip), "clip resident in two shards");
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn capacity_splits_evenly() {
        let repo = Arc::new(paper::equi_sized_repository_of(16, ByteSize::mb(10)));
        let svc = CacheService::new(
            Arc::clone(&repo),
            ServiceConfig::new(PolicyKind::Lru, 4, ByteSize::mb(40), 1),
            None,
        )
        .unwrap();
        for snap in svc.snapshot() {
            assert_eq!(snap.capacity, ByteSize::mb(10));
        }
    }

    #[test]
    fn poisoned_shard_recovers_and_keeps_serving() {
        let svc = service(2, 7);
        let clip = ClipId::new(5);
        assert!(!svc.get(clip).unwrap().hit);
        assert_eq!(svc.recoveries(), 0);
        let shard = svc.poison(clip);
        assert_eq!(shard, shard_of(clip, 2));
        // The next access on the poisoned shard recovers it (the
        // pre-checkpoint state is empty, so the clip misses again) and
        // the shard keeps serving.
        assert!(!svc.get(clip).unwrap().hit);
        assert_eq!(svc.recoveries(), 1);
        assert!(svc.get(clip).unwrap().hit);
        assert_eq!(svc.recoveries(), 1, "recovery happens exactly once");
    }

    #[test]
    fn poison_recovery_works_at_any_checkpoint_cadence() {
        // Satellite: the cadence is a knob now; recovery must hold at
        // values other than the default 128 (including the degenerate
        // checkpoint-every-access setting).
        for every in [1u64, 5, 1000] {
            let repo = Arc::new(paper::variable_sized_repository_of(24));
            let capacity = repo.cache_capacity_for_ratio(0.25);
            let svc = CacheService::new(
                Arc::clone(&repo),
                ServiceConfig::new(PolicyKind::Lru, 1, capacity, 7).with_checkpoint_every(every),
                None,
            )
            .unwrap();
            for i in 0..12u32 {
                svc.get(ClipId::new(i % 6 + 1)).unwrap();
            }
            let before = svc.stats();
            svc.poison(ClipId::new(1));
            // Recovery rolls back to the last checkpoint: at most
            // `every - 1` requests are lost, never more.
            svc.get(ClipId::new(1)).unwrap();
            let after = svc.stats();
            assert_eq!(svc.recoveries(), 1, "cadence {every}");
            let floor = before.requests().saturating_sub(every - 1);
            assert!(
                after.requests() > floor,
                "cadence {every}: {} requests after recovery, checkpoint floor {}",
                after.requests(),
                floor
            );
        }
    }

    #[test]
    fn repeated_poisoning_never_wedges() {
        let svc = service(1, 3);
        for round in 0..5u32 {
            let clip = ClipId::new(round % 8 + 1);
            svc.poison(clip);
            assert!(svc.get(clip).is_ok(), "round {round} wedged the shard");
        }
        assert_eq!(svc.recoveries(), 5);
        // Merged views also survive a poisoned shard.
        svc.poison(ClipId::new(1));
        assert_eq!(svc.stats().requests(), 0, "recovered to empty checkpoint");
        assert_eq!(svc.recoveries(), 6);
        assert_eq!(svc.snapshot().len(), 1);
    }
}
