//! A blocking client for the TCP front-end, speaking either wire
//! protocol.
//!
//! The client defaults to the text line protocol (debuggable, and what
//! every pre-existing golden pins); [`Wire::Binary`] switches every
//! request to length-prefixed frames. The interesting addition is
//! pipelining: [`send_gets`](TcpCacheClient::send_gets) batches many
//! requests into one write and [`recv_get`](TcpCacheClient::recv_get)
//! collects the replies one at a time, so a window of requests is in
//! flight on the connection at once — this is where the epoll
//! front-end's throughput comes from.
//!
//! Besides the plain request/reply surface, the client exposes the
//! hooks the chaos harness drives: an optional per-request read
//! timeout (a request whose reply never arrives surfaces as a timeout
//! `io::Error` the retry loop can act on, instead of blocking
//! forever), raw-byte injection ([`send_raw`](TcpCacheClient::send_raw)
//! for text, [`send_corrupt_frame`](TcpCacheClient::send_corrupt_frame)
//! for binary) and torn writes ([`get_torn`](TcpCacheClient::get_torn),
//! which tears a text line or a binary frame across two flushed
//! writes).

use crate::protocol::{
    corrupt_length_get_frame, decode_reply, encode_command, parse_get, parse_peer, parse_poisoned,
    parse_range, parse_stats, parse_version, Command, Decoded, Reply, ServerStats, WireVersions,
};
use crate::shard::{GetOutcome, RangeOutcome};
use clipcache_media::ClipId;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Which wire protocol a client speaks. Both land on the same server —
/// it auto-detects per message — but a single client sticks to one so
/// its replies are unambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Wire {
    /// Newline-delimited text (`GET 7`, `HIT …`). The default.
    #[default]
    Text,
    /// Length-prefixed binary frames with batched pipelined writes.
    Binary,
}

impl std::str::FromStr for Wire {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(Wire::Text),
            "binary" => Ok(Wire::Binary),
            other => Err(format!("unknown wire '{other}' (expected text|binary)")),
        }
    }
}

impl std::fmt::Display for Wire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Wire::Text => "text",
            Wire::Binary => "binary",
        })
    }
}

/// The message carried by the `io::Error` a governor `BUSY` shed maps
/// to; match it with [`is_busy_error`].
const BUSY_ERROR: &str = "server shed the request (BUSY)";

/// Whether an error from [`TcpCacheClient::get`] /
/// [`recv_get`](TcpCacheClient::recv_get) is the server's governor
/// shedding the request. Busy is retryable-after-backoff on the *same*
/// connection — it is neither a timeout (`WouldBlock`/`TimedOut`, which
/// the chaos loop treats as a possible lost write) nor a protocol error
/// (`InvalidData`, which is a reason to redial).
pub fn is_busy_error(err: &std::io::Error) -> bool {
    err.kind() == std::io::ErrorKind::Other && err.to_string().contains(BUSY_ERROR)
}

/// One connection to a serve front-end.
pub struct TcpCacheClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    wire: Wire,
    /// Reassembly buffer for binary frames torn across reads.
    frame_buf: Vec<u8>,
}

impl TcpCacheClient {
    /// Connect speaking text, with no read timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, None)
    }

    /// Connect speaking text; with `read_timeout` set, a reply that
    /// takes longer surfaces as a `WouldBlock`/`TimedOut` error — the
    /// client-level timeout the chaos retry loop recovers from.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        read_timeout: Option<Duration>,
    ) -> std::io::Result<Self> {
        Self::connect_wire(addr, read_timeout, Wire::Text)
    }

    /// Connect speaking the given wire protocol.
    ///
    /// `read_timeout` bounds the *connect* too: a peer that is
    /// mid-recovery (listening socket up, accept loop not yet draining
    /// its SYN backlog) used to block the caller indefinitely inside
    /// `TcpStream::connect`; now the same budget that bounds each reply
    /// bounds establishment, so lazy reconnects surface a timeout error
    /// the retry loop can act on. Use
    /// [`connect_deadline`](Self::connect_deadline) to pick a separate
    /// connect budget.
    pub fn connect_wire(
        addr: impl ToSocketAddrs,
        read_timeout: Option<Duration>,
        wire: Wire,
    ) -> std::io::Result<Self> {
        Self::connect_deadline(addr, read_timeout, read_timeout, wire)
    }

    /// Connect with independent read and connect budgets (`None` =
    /// block). The cluster peer pool uses a short connect budget so a
    /// dead peer costs one bounded probe, not a stalled event loop.
    pub fn connect_deadline(
        addr: impl ToSocketAddrs,
        read_timeout: Option<Duration>,
        connect_timeout: Option<Duration>,
        wire: Wire,
    ) -> std::io::Result<Self> {
        let stream = match connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(limit) => {
                // `TcpStream::connect_timeout` takes one resolved
                // address; try each resolution, keeping the last error.
                let mut last: Option<std::io::Error> = None;
                let mut connected = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, limit) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                connected.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            "address resolved to nothing",
                        )
                    })
                })?
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpCacheClient {
            reader,
            writer: stream,
            wire,
            frame_buf: Vec::new(),
        })
    }

    /// The wire protocol this client speaks.
    pub fn wire(&self) -> Wire {
        self.wire
    }

    fn read_reply(&mut self) -> std::io::Result<String> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    /// Read one binary reply frame, reassembling torn prefixes.
    fn read_reply_frame(&mut self) -> std::io::Result<Reply> {
        loop {
            if !self.frame_buf.is_empty() {
                match decode_reply(&self.frame_buf) {
                    Ok(Decoded::Frame { value, consumed }) => {
                        self.frame_buf.drain(..consumed);
                        return Ok(value);
                    }
                    Ok(Decoded::Incomplete) => {}
                    Err(e) => return Err(Self::protocol_err(format!("corrupt reply frame: {e}"))),
                }
            }
            let chunk = self.reader.fill_buf()?;
            if chunk.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let n = chunk.len();
            self.frame_buf.extend_from_slice(chunk);
            self.reader.consume(n);
        }
    }

    /// One request/reply round trip on the text wire.
    fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.read_reply()
    }

    /// One request/reply round trip on the binary wire.
    fn roundtrip_frame(&mut self, command: &Command) -> std::io::Result<Reply> {
        let mut out = Vec::new();
        encode_command(command, &mut out);
        self.writer.write_all(&out)?;
        self.read_reply_frame()
    }

    fn protocol_err(msg: String) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
    }

    fn busy_err() -> std::io::Error {
        std::io::Error::other(BUSY_ERROR)
    }

    /// Map a decoded reply to the GET outcome, surfacing `ERR` frames
    /// the same way text `ERR` lines surface (an `InvalidData` error)
    /// and `BUSY` sheds as the error [`is_busy_error`] recognizes.
    fn expect_get(reply: Reply) -> std::io::Result<GetOutcome> {
        match reply {
            Reply::Get(outcome) => Ok(outcome),
            Reply::Busy => Err(Self::busy_err()),
            Reply::Err(msg) => Err(Self::protocol_err(format!("ERR {msg}"))),
            other => Err(Self::protocol_err(format!(
                "expected a GET reply, got {other:?}"
            ))),
        }
    }

    /// Parse a text GET reply line, mapping `BUSY` to the shed error.
    fn parse_get_line(reply: &str) -> std::io::Result<GetOutcome> {
        if reply == "BUSY" {
            return Err(Self::busy_err());
        }
        parse_get(reply).map_err(Self::protocol_err)
    }

    /// `GET <clip>`: access the clip through its shard. A governor shed
    /// surfaces as the error [`is_busy_error`] recognizes; the
    /// connection stays usable — retry after a backoff, don't redial.
    pub fn get(&mut self, clip: ClipId) -> std::io::Result<GetOutcome> {
        match self.wire {
            Wire::Text => {
                let reply = self.roundtrip(&format!("GET {}", clip.get()))?;
                Self::parse_get_line(&reply)
            }
            Wire::Binary => {
                let reply = self.roundtrip_frame(&Command::Get(clip))?;
                Self::expect_get(reply)
            }
        }
    }

    /// `GETRANGE <clip> <chunk>`: probe chunk residency without
    /// touching policy state. An out-of-range chunk surfaces as the
    /// server's `ERR`/`R_ERR`, never a stall.
    pub fn get_range(&mut self, clip: ClipId, chunk: u32) -> std::io::Result<RangeOutcome> {
        match self.wire {
            Wire::Text => {
                let reply = self.roundtrip(&format!("GETRANGE {} {chunk}", clip.get()))?;
                parse_range(&reply).map_err(Self::protocol_err)
            }
            Wire::Binary => match self.roundtrip_frame(&Command::GetRange(clip, chunk))? {
                Reply::Range(outcome) => Ok(outcome),
                Reply::Err(msg) => Err(Self::protocol_err(format!("ERR {msg}"))),
                other => Err(Self::protocol_err(format!(
                    "expected a GETRANGE reply, got {other:?}"
                ))),
            },
        }
    }

    /// Send a batch of `GET` requests in one write — the pipelined
    /// fast path. Collect exactly one [`recv_get`](Self::recv_get) per
    /// clip, in order (the server preserves per-connection order).
    pub fn send_gets(&mut self, clips: &[ClipId]) -> std::io::Result<()> {
        let mut out = Vec::with_capacity(clips.len() * 16);
        match self.wire {
            Wire::Text => {
                for clip in clips {
                    out.extend_from_slice(format!("GET {}\n", clip.get()).as_bytes());
                }
            }
            Wire::Binary => {
                for clip in clips {
                    encode_command(&Command::Get(*clip), &mut out);
                }
            }
        }
        self.writer.write_all(&out)
    }

    /// Receive the next pipelined `GET` reply.
    pub fn recv_get(&mut self) -> std::io::Result<GetOutcome> {
        match self.wire {
            Wire::Text => {
                let reply = self.read_reply()?;
                Self::parse_get_line(&reply)
            }
            Wire::Binary => {
                let reply = self.read_reply_frame()?;
                Self::expect_get(reply)
            }
        }
    }

    /// `GET <clip>` delivered as a torn write: the request (line or
    /// frame) reaches the server in two flushed fragments.
    /// Wire-identical semantics — only the framing is hostile.
    pub fn get_torn(&mut self, clip: ClipId) -> std::io::Result<GetOutcome> {
        let bytes = match self.wire {
            Wire::Text => format!("GET {}\n", clip.get()).into_bytes(),
            Wire::Binary => {
                let mut out = Vec::new();
                encode_command(&Command::Get(clip), &mut out);
                out
            }
        };
        let split = bytes.len() / 2;
        self.writer.write_all(&bytes[..split])?;
        self.writer.flush()?;
        self.writer.write_all(&bytes[split..])?;
        match self.wire {
            Wire::Text => {
                let reply = self.read_reply()?;
                Self::parse_get_line(&reply)
            }
            Wire::Binary => {
                let reply = self.read_reply_frame()?;
                Self::expect_get(reply)
            }
        }
    }

    /// Send one raw text line (arbitrary bytes, newline appended) and
    /// return the server's reply line verbatim. The chaos harness uses
    /// this to inject garbage and assert the server answers `ERR`
    /// instead of disconnecting.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<String> {
        self.writer.write_all(bytes)?;
        self.writer.write_all(b"\n")?;
        self.read_reply()
    }

    /// Inject a corrupt-length binary frame (valid check byte,
    /// impossible length) and return the server's `ERR` reply — the
    /// binary-wire analogue of [`send_raw`](Self::send_raw) garbage.
    /// The connection must survive: only the 7 header bytes are
    /// consumed server-side.
    pub fn send_corrupt_frame(&mut self) -> std::io::Result<String> {
        self.writer.write_all(&corrupt_length_get_frame())?;
        match self.read_reply_frame()? {
            Reply::Err(msg) => Ok(format!("ERR {msg}")),
            other => Err(Self::protocol_err(format!(
                "expected an ERR reply to garbage, got {other:?}"
            ))),
        }
    }

    /// `PEERGET <clip>`: a cluster peer-fill probe — the receiving node
    /// performs a full local access (admitting on a miss) and reports
    /// whether the clip was already resident there.
    pub fn peer_get(&mut self, clip: ClipId) -> std::io::Result<bool> {
        match self.wire {
            Wire::Text => {
                let reply = self.roundtrip(&format!("PEERGET {}", clip.get()))?;
                parse_peer(&reply).map_err(Self::protocol_err)
            }
            Wire::Binary => match self.roundtrip_frame(&Command::PeerGet(clip))? {
                Reply::Peer(had) => Ok(had),
                Reply::Err(msg) => Err(Self::protocol_err(format!("ERR {msg}"))),
                other => Err(Self::protocol_err(format!(
                    "expected a PEERGET reply, got {other:?}"
                ))),
            },
        }
    }

    /// `VERSION` / `HELLO`: the server's wire and schema versions. The
    /// cluster handshake compares these against
    /// [`WireVersions::current`] and refuses skewed peers by name.
    pub fn version(&mut self) -> std::io::Result<WireVersions> {
        match self.wire {
            Wire::Text => {
                let reply = self.roundtrip("VERSION")?;
                parse_version(&reply).map_err(Self::protocol_err)
            }
            Wire::Binary => match self.roundtrip_frame(&Command::Version)? {
                Reply::Version(versions) => Ok(versions),
                Reply::Err(msg) => Err(Self::protocol_err(format!("ERR {msg}"))),
                other => Err(Self::protocol_err(format!(
                    "expected a VERSION reply, got {other:?}"
                ))),
            },
        }
    }

    /// `STATS`: the server's merged hit statistics and recovery count.
    pub fn stats(&mut self) -> std::io::Result<ServerStats> {
        match self.wire {
            Wire::Text => {
                let reply = self.roundtrip("STATS")?;
                parse_stats(&reply).map_err(Self::protocol_err)
            }
            Wire::Binary => match self.roundtrip_frame(&Command::Stats)? {
                Reply::Stats(stats) => Ok(stats),
                Reply::Err(msg) => Err(Self::protocol_err(format!("ERR {msg}"))),
                other => Err(Self::protocol_err(format!(
                    "expected a STATS reply, got {other:?}"
                ))),
            },
        }
    }

    /// `POISON <clip>`: inject a shard-poisoning fault (the server must
    /// be running with chaos enabled). Returns the poisoned shard.
    pub fn poison(&mut self, clip: ClipId) -> std::io::Result<usize> {
        match self.wire {
            Wire::Text => {
                let reply = self.roundtrip(&format!("POISON {}", clip.get()))?;
                parse_poisoned(&reply).map_err(Self::protocol_err)
            }
            Wire::Binary => match self.roundtrip_frame(&Command::Poison(clip))? {
                Reply::Poisoned(shard) => Ok(shard as usize),
                Reply::Err(msg) => Err(Self::protocol_err(format!("ERR {msg}"))),
                other => Err(Self::protocol_err(format!(
                    "expected a POISONED reply, got {other:?}"
                ))),
            },
        }
    }

    /// `SNAPSHOT`: the per-shard snapshot JSON array, verbatim.
    pub fn snapshot_json(&mut self) -> std::io::Result<String> {
        match self.wire {
            Wire::Text => {
                let reply = self.roundtrip("SNAPSHOT")?;
                reply
                    .strip_prefix("SNAPSHOT ")
                    .map(str::to_string)
                    .ok_or_else(|| {
                        Self::protocol_err(format!("malformed SNAPSHOT reply '{reply}'"))
                    })
            }
            Wire::Binary => match self.roundtrip_frame(&Command::Snapshot)? {
                Reply::Snapshot(json) => Ok(json),
                Reply::Err(msg) => Err(Self::protocol_err(format!("ERR {msg}"))),
                other => Err(Self::protocol_err(format!(
                    "expected a SNAPSHOT reply, got {other:?}"
                ))),
            },
        }
    }

    /// `QUIT`: close the session cleanly.
    pub fn quit(mut self) -> std::io::Result<()> {
        match self.wire {
            Wire::Text => {
                let reply = self.roundtrip("QUIT")?;
                if reply == "BYE" {
                    Ok(())
                } else {
                    Err(Self::protocol_err(format!("expected BYE, got '{reply}'")))
                }
            }
            Wire::Binary => match self.roundtrip_frame(&Command::Quit)? {
                Reply::Bye => Ok(()),
                other => Err(Self::protocol_err(format!("expected BYE, got {other:?}"))),
            },
        }
    }
}
