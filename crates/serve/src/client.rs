//! A blocking line-protocol client for the TCP front-end.

use crate::protocol::{parse_get, parse_stats};
use crate::shard::GetOutcome;
use clipcache_media::ClipId;
use clipcache_sim::metrics::HitStats;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a serve front-end.
pub struct TcpCacheClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpCacheClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpCacheClient {
            reader,
            writer: stream,
        })
    }

    /// One request/reply round trip.
    fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    fn protocol_err(msg: String) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
    }

    /// `GET <clip>`: access the clip through its shard.
    pub fn get(&mut self, clip: ClipId) -> std::io::Result<GetOutcome> {
        let reply = self.roundtrip(&format!("GET {}", clip.get()))?;
        parse_get(&reply).map_err(Self::protocol_err)
    }

    /// `STATS`: the server's merged hit statistics.
    pub fn stats(&mut self) -> std::io::Result<HitStats> {
        let reply = self.roundtrip("STATS")?;
        parse_stats(&reply).map_err(Self::protocol_err)
    }

    /// `SNAPSHOT`: the per-shard snapshot JSON array, verbatim.
    pub fn snapshot_json(&mut self) -> std::io::Result<String> {
        let reply = self.roundtrip("SNAPSHOT")?;
        reply
            .strip_prefix("SNAPSHOT ")
            .map(str::to_string)
            .ok_or_else(|| Self::protocol_err(format!("malformed SNAPSHOT reply '{reply}'")))
    }

    /// `QUIT`: close the session cleanly.
    pub fn quit(mut self) -> std::io::Result<()> {
        let reply = self.roundtrip("QUIT")?;
        if reply == "BYE" {
            Ok(())
        } else {
            Err(Self::protocol_err(format!("expected BYE, got '{reply}'")))
        }
    }
}
