//! A blocking line-protocol client for the TCP front-end.
//!
//! Besides the plain request/reply surface, the client exposes the
//! hooks the chaos harness drives: an optional per-request read
//! timeout (a request whose reply never arrives surfaces as a timeout
//! `io::Error` the retry loop can act on, instead of blocking
//! forever), raw-byte injection ([`send_raw`](TcpCacheClient::send_raw))
//! and torn writes ([`get_torn`](TcpCacheClient::get_torn)).

use crate::protocol::{parse_get, parse_poisoned, parse_stats, ServerStats};
use crate::shard::GetOutcome;
use clipcache_media::ClipId;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a serve front-end.
pub struct TcpCacheClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpCacheClient {
    /// Connect to a server with no read timeout (replies block forever).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, None)
    }

    /// Connect to a server; with `read_timeout` set, a reply that takes
    /// longer surfaces as a `WouldBlock`/`TimedOut` error — the
    /// client-level timeout the chaos retry loop recovers from.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        read_timeout: Option<Duration>,
    ) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpCacheClient {
            reader,
            writer: stream,
        })
    }

    fn read_reply(&mut self) -> std::io::Result<String> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    /// One request/reply round trip.
    fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.read_reply()
    }

    fn protocol_err(msg: String) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
    }

    /// `GET <clip>`: access the clip through its shard.
    pub fn get(&mut self, clip: ClipId) -> std::io::Result<GetOutcome> {
        let reply = self.roundtrip(&format!("GET {}", clip.get()))?;
        parse_get(&reply).map_err(Self::protocol_err)
    }

    /// `GET <clip>` delivered as a torn write: the request line reaches
    /// the server in two flushed fragments. Wire-identical semantics —
    /// only the framing is hostile.
    pub fn get_torn(&mut self, clip: ClipId) -> std::io::Result<GetOutcome> {
        let request = format!("GET {}\n", clip.get());
        let bytes = request.as_bytes();
        let split = bytes.len() / 2;
        self.writer.write_all(&bytes[..split])?;
        self.writer.flush()?;
        self.writer.write_all(&bytes[split..])?;
        let reply = self.read_reply()?;
        parse_get(&reply).map_err(Self::protocol_err)
    }

    /// Send one raw line (arbitrary bytes, newline appended) and return
    /// the server's reply line verbatim. The chaos harness uses this to
    /// inject garbage and assert the server answers `ERR` instead of
    /// disconnecting.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<String> {
        self.writer.write_all(bytes)?;
        self.writer.write_all(b"\n")?;
        self.read_reply()
    }

    /// `STATS`: the server's merged hit statistics and recovery count.
    pub fn stats(&mut self) -> std::io::Result<ServerStats> {
        let reply = self.roundtrip("STATS")?;
        parse_stats(&reply).map_err(Self::protocol_err)
    }

    /// `POISON <clip>`: inject a shard-poisoning fault (the server must
    /// be running with chaos enabled). Returns the poisoned shard.
    pub fn poison(&mut self, clip: ClipId) -> std::io::Result<usize> {
        let reply = self.roundtrip(&format!("POISON {}", clip.get()))?;
        parse_poisoned(&reply).map_err(Self::protocol_err)
    }

    /// `SNAPSHOT`: the per-shard snapshot JSON array, verbatim.
    pub fn snapshot_json(&mut self) -> std::io::Result<String> {
        let reply = self.roundtrip("SNAPSHOT")?;
        reply
            .strip_prefix("SNAPSHOT ")
            .map(str::to_string)
            .ok_or_else(|| Self::protocol_err(format!("malformed SNAPSHOT reply '{reply}'")))
    }

    /// `QUIT`: close the session cleanly.
    pub fn quit(mut self) -> std::io::Result<()> {
        let reply = self.roundtrip("QUIT")?;
        if reply == "BYE" {
            Ok(())
        } else {
            Err(Self::protocol_err(format!("expected BYE, got '{reply}'")))
        }
    }
}
