use super::*;
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use clipcache_workload::Timestamp;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clipcache-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record(seq: u64, clip: u32, op: WalOp) -> WalRecord {
    WalRecord {
        seq,
        clip: ClipId::new(clip),
        chunk: 0,
        op,
    }
}

fn range_record(seq: u64, clip: u32, chunk: u32) -> WalRecord {
    WalRecord {
        seq,
        clip: ClipId::new(clip),
        chunk,
        op: WalOp::GetRange,
    }
}

/// The newest-segment path most single-segment tests poke at.
fn seg1(dir: &Path) -> PathBuf {
    dir.join(segment_file_name(1))
}

/// Tuning that rolls after every two records (24-byte header + two
/// 25-byte frames = 74), with no commit window.
fn tiny_segments() -> WalTuning {
    WalTuning {
        segment_bytes: 74,
        commit_window: Duration::ZERO,
    }
}

/// Tuning that group-commits with the given batch window.
fn windowed(window: Duration) -> WalTuning {
    WalTuning {
        segment_bytes: DEFAULT_SEGMENT_BYTES,
        commit_window: window,
    }
}

/// A complete sealed segment, in memory.
fn sealed_segment_bytes(no: u64, records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = segment_header(no).to_vec();
    for r in records {
        bytes.extend_from_slice(&r.encode());
    }
    let footer = seal_footer(&bytes, records.last().map_or(0, |r| r.seq));
    bytes.extend_from_slice(&footer);
    bytes
}

#[test]
fn crc32_matches_known_vectors() {
    // The standard IEEE check values (zlib's crc32 agrees).
    assert_eq!(crc32(b""), 0);
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(
        crc32(b"The quick brown fox jumps over the lazy dog"),
        0x414F_A339
    );
}

#[test]
fn records_round_trip_through_the_frame() {
    let recs = [
        record(1, 1, WalOp::Get),
        record(2, u32::MAX, WalOp::Admit),
        record(3, 17, WalOp::Get),
        range_record(4, 9, 0),
        range_record(5, 9, u32::MAX),
    ];
    let mut log = Vec::new();
    for r in &recs {
        log.extend_from_slice(&r.encode());
    }
    let (decoded, tail) = decode_wal(&log).unwrap();
    assert_eq!(decoded, recs);
    assert_eq!(tail, WalTail::Clean);
    assert_eq!(decode_wal(&[]).unwrap(), (vec![], WalTail::Clean));
}

#[test]
fn v1_records_are_rejected_by_name() {
    // Hand-build a version-1 frame: 13-byte payload (seq + clip +
    // op), valid CRC. It must be refused naming the old layout, not
    // reinterpreted or written off as a torn tail.
    let mut payload = [0u8; 13];
    payload[..8].copy_from_slice(&1u64.to_le_bytes());
    payload[8..12].copy_from_slice(&7u32.to_le_bytes());
    payload[12] = 0; // v1 Get
    let len = 13u32.to_le_bytes();
    let mut crc = Crc32::new();
    crc.update(&len);
    crc.update(&payload);
    let mut frame = Vec::new();
    frame.extend_from_slice(&len);
    frame.extend_from_slice(&crc.finish().to_le_bytes());
    frame.extend_from_slice(&payload);
    match decode_wal(&frame) {
        Err(PersistError::Corrupt { offset, reason }) => {
            assert_eq!(offset, 0);
            assert!(reason.contains("version-1"), "names the version: {reason}");
            assert!(reason.contains("13-byte"), "names the layout: {reason}");
        }
        other => panic!("v1 record must be refused loudly, got {other:?}"),
    }
}

#[test]
fn whole_clip_records_with_nonzero_chunk_are_corrupt() {
    let mut forged = record(1, 3, WalOp::Get);
    forged.chunk = 5;
    match decode_wal(&forged.encode()) {
        Err(PersistError::Corrupt { reason, .. }) => {
            assert!(reason.contains("nonzero chunk"), "{reason}");
        }
        other => panic!("nonzero chunk on a Get must be loud, got {other:?}"),
    }
}

#[test]
fn torn_tail_is_truncated_not_replayed() {
    let full = record(1, 3, WalOp::Get).encode();
    let torn = record(2, 4, WalOp::Get).encode();
    for cut in 1..torn.len() {
        let mut log = full.clone();
        log.extend_from_slice(&torn[..cut]);
        let (decoded, tail) = decode_wal(&log).unwrap();
        assert_eq!(decoded.len(), 1, "cut at {cut} must keep the valid prefix");
        assert_eq!(
            tail,
            WalTail::Torn {
                valid_bytes: full.len() as u64,
                dropped_bytes: cut as u64,
            },
            "cut at {cut}"
        );
    }
}

#[test]
fn mid_log_corruption_is_loud() {
    let mut log = Vec::new();
    for seq in 1..=3 {
        log.extend_from_slice(&record(seq, seq as u32, WalOp::Get).encode());
    }
    // Flip one payload bit in the middle record.
    let frame = FRAME_HEADER_BYTES + RECORD_PAYLOAD_BYTES;
    let mut corrupt = log.clone();
    corrupt[frame + FRAME_HEADER_BYTES + 2] ^= 0x10;
    match decode_wal(&corrupt) {
        Err(PersistError::Corrupt { offset, .. }) => assert_eq!(offset, frame as u64),
        other => panic!("corruption must be loud, got {other:?}"),
    }
    // Flip a CRC bit: same refusal.
    let mut bad_crc = log;
    bad_crc[frame + 5] ^= 0x01;
    assert!(matches!(
        decode_wal(&bad_crc),
        Err(PersistError::Corrupt { .. })
    ));
}

#[test]
fn crash_spec_round_trips_and_rejects_garbage() {
    for spec in [
        "append:1",
        "torn:64",
        "checkpoint:3",
        "seal:2",
        "segment-roll:4",
    ] {
        let parsed = CrashSpec::parse(spec).unwrap();
        assert_eq!(parsed.spelling(), spec);
        assert_eq!(CrashSpec::parse(&parsed.spelling()).unwrap(), parsed);
    }
    for bad in [
        "",
        "append",
        "append:",
        "append:0",
        "append:x",
        "frob:1",
        "torn:-1",
        "seal:0",
        "segment-roll:",
        "roll:1",
    ] {
        assert!(CrashSpec::parse(bad).is_err(), "accepted '{bad}'");
    }
    assert_eq!(WalSync::parse("always").unwrap(), WalSync::Always);
    assert_eq!(WalSync::parse("off").unwrap(), WalSync::Off);
    assert!(WalSync::parse("sometimes").is_err());
}

fn sample_checkpoint() -> DurableCheckpoint {
    let repo = Arc::new(paper::equi_sized_repository_of(8, ByteSize::mb(10)));
    let mut cache = PolicyKind::Lru.build(Arc::clone(&repo), ByteSize::mb(30), 1, None);
    for i in 1..=3u32 {
        cache.access(ClipId::new(i), Timestamp(i as u64));
    }
    let mut stats = HitStats::new();
    stats.record(false, ByteSize::mb(10), 0);
    stats.record(true, ByteSize::mb(10), 1);
    DurableCheckpoint {
        snapshot: CacheSnapshot::take(cache.as_ref(), PolicyKind::Lru, Timestamp(3)),
        stats,
        seq: 2,
    }
}

#[test]
fn checkpoint_json_round_trips_and_rejects_other_versions() {
    let ckpt = sample_checkpoint();
    let json = ckpt.to_json();
    assert_eq!(DurableCheckpoint::from_json(&json).unwrap(), ckpt);
    let future = json.replacen("\"version\":2", "\"version\":7", 1);
    let err = DurableCheckpoint::from_json(&future).unwrap_err();
    assert!(err.contains("not supported"), "weak rejection: {err}");
    assert!(
        err.contains("version 2"),
        "names what this build reads: {err}"
    );
    // A version-1 (whole-clip) checkpoint refuses naming both
    // versions — never silently restored without prefix state.
    let v1 = json.replacen("\"version\":2", "\"version\":1", 1);
    let err = DurableCheckpoint::from_json(&v1).unwrap_err();
    assert!(err.contains("version 1"), "names the found version: {err}");
    assert!(err.contains("whole-clip"), "says why: {err}");
    // An unsupported *snapshot* version nested inside also refuses.
    let nested = json.replace("\"snapshot\":{\"version\":2", "\"snapshot\":{\"version\":9");
    assert!(DurableCheckpoint::from_json(&nested).is_err());
    assert!(DurableCheckpoint::from_json("{}").is_err());
    assert!(DurableCheckpoint::from_json("not json").is_err());
}

#[test]
fn store_persists_appends_and_checkpoints_across_reopens() {
    let dir = tmp_dir("roundtrip");
    {
        let (mut store, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        assert!(state.checkpoint.is_none());
        assert!(state.records.is_empty());
        assert_eq!(store.append(WalOp::Get, ClipId::new(5)).unwrap(), 1);
        assert_eq!(store.append(WalOp::Admit, ClipId::new(6)).unwrap(), 2);
    }
    {
        let (mut store, state) = ShardStore::open(&dir, WalSync::Always).unwrap();
        assert_eq!(
            state.records,
            vec![record(1, 5, WalOp::Get), record(2, 6, WalOp::Admit)]
        );
        assert_eq!(state.torn_bytes_dropped, 0);
        // Checkpoint subsumes the log.
        let mut ckpt = sample_checkpoint();
        ckpt.seq = 2;
        store.checkpoint(&ckpt).unwrap();
        assert_eq!(store.append(WalOp::Get, ClipId::new(7)).unwrap(), 3);
    }
    let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
    let ckpt = state.checkpoint.expect("checkpoint survived");
    assert_eq!(ckpt.seq, 2);
    assert_eq!(state.records, vec![record(3, 7, WalOp::Get)]);
}

#[test]
fn range_probes_persist_with_their_chunk() {
    let dir = tmp_dir("range");
    {
        let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
        store.append(WalOp::Get, ClipId::new(2)).unwrap();
        store.append_range(ClipId::new(2), 7).unwrap();
    }
    let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
    assert_eq!(
        state.records,
        vec![record(1, 2, WalOp::Get), range_record(2, 2, 7)]
    );
}

#[test]
#[should_panic(expected = "GETRANGE records go through append_range")]
fn append_refuses_getrange_ops() {
    let dir = tmp_dir("append-range-misuse");
    let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
    let _ = store.append(WalOp::GetRange, ClipId::new(1));
}

#[test]
fn open_truncates_a_torn_tail_and_reports_it() {
    let dir = tmp_dir("torn");
    {
        let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
        store.append(WalOp::Get, ClipId::new(1)).unwrap();
        store.arm_crash(Some(CrashSpec::parse("torn:1").unwrap()));
        assert!(matches!(
            store.append(WalOp::Get, ClipId::new(2)),
            Err(PersistError::CrashInjected)
        ));
        // The store is dead now, like the process it models.
        assert!(matches!(
            store.append(WalOp::Get, ClipId::new(3)),
            Err(PersistError::CrashInjected)
        ));
    }
    let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
    assert_eq!(state.records, vec![record(1, 1, WalOp::Get)]);
    assert!(state.torn_bytes_dropped > 0, "the torn tail was dropped");
    // Second open: the tail is gone, the log is clean.
    let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
    assert_eq!(state.torn_bytes_dropped, 0);
}

#[test]
fn crash_after_append_keeps_the_record_durable() {
    let dir = tmp_dir("after-append");
    {
        let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
        store.arm_crash(Some(CrashSpec::parse("append:2").unwrap()));
        store.append(WalOp::Get, ClipId::new(1)).unwrap();
        assert!(matches!(
            store.append(WalOp::Get, ClipId::new(2)),
            Err(PersistError::CrashInjected)
        ));
    }
    let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
    // Both records survive: append:N dies *after* durability.
    assert_eq!(state.records.len(), 2);
    assert_eq!(state.torn_bytes_dropped, 0);
}

#[test]
fn crash_mid_checkpoint_keeps_the_old_checkpoint_and_wal() {
    let dir = tmp_dir("mid-ckpt");
    let mut first = sample_checkpoint();
    first.seq = 0;
    {
        let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
        store.checkpoint(&first).unwrap();
        store.append(WalOp::Get, ClipId::new(1)).unwrap();
        store.append(WalOp::Get, ClipId::new(2)).unwrap();
        store.arm_crash(Some(CrashSpec::parse("checkpoint:1").unwrap()));
        let mut second = sample_checkpoint();
        second.seq = 2;
        assert!(matches!(
            store.checkpoint(&second),
            Err(PersistError::CrashInjected)
        ));
    }
    assert!(dir.join(CHECKPOINT_TMP).exists(), "tmp half-written");
    let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
    // The old checkpoint and the full WAL both survive; the torn tmp
    // is swept away.
    assert_eq!(state.checkpoint.expect("old checkpoint").seq, 0);
    assert_eq!(state.records.len(), 2);
    assert!(!dir.join(CHECKPOINT_TMP).exists());
}

#[test]
fn sequence_breaks_are_corruption() {
    let dir = tmp_dir("seq-break");
    {
        let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
        store.append(WalOp::Get, ClipId::new(1)).unwrap();
    }
    // Forge a record with a gapped sequence number onto the active
    // segment's end.
    let mut bytes = std::fs::read(seg1(&dir)).unwrap();
    bytes.extend_from_slice(&record(5, 2, WalOp::Get).encode());
    std::fs::write(seg1(&dir), &bytes).unwrap();
    assert!(matches!(
        ShardStore::open(&dir, WalSync::Off),
        Err(PersistError::Corrupt { .. })
    ));
}

#[test]
fn records_subsumed_by_the_checkpoint_are_skipped_on_open() {
    let dir = tmp_dir("subsumed");
    let seg_bytes = {
        let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
        store.append(WalOp::Get, ClipId::new(1)).unwrap();
        store.append(WalOp::Get, ClipId::new(2)).unwrap();
        let pre_checkpoint = std::fs::read(seg1(&dir)).unwrap();
        let mut ckpt = sample_checkpoint();
        ckpt.seq = 2;
        store.checkpoint(&ckpt).unwrap();
        pre_checkpoint
    };
    // Simulate a crash between the checkpoint rename and the segment
    // truncation: the subsumed records reappear on disk.
    std::fs::write(seg1(&dir), &seg_bytes).unwrap();
    let (mut store, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
    assert_eq!(state.checkpoint.expect("checkpoint intact").seq, 2);
    assert!(state.records.is_empty(), "subsumed records not replayed");
    assert_eq!(state.subsumed_records, 2);
    assert_eq!(state.torn_bytes_dropped, 0);
    // Open finished the interrupted truncation: bare header remains.
    assert_eq!(
        std::fs::metadata(seg1(&dir)).unwrap().len(),
        SEGMENT_HEADER_BYTES as u64
    );
    // Appends continue the chain exactly where the checkpoint ends.
    assert_eq!(store.append(WalOp::Get, ClipId::new(3)).unwrap(), 3);
    drop(store);
    let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
    assert_eq!(state.records, vec![record(3, 3, WalOp::Get)]);
    assert_eq!(state.subsumed_records, 0);

    // A stale prefix *plus* live records skips only the prefix.
    let mut mixed = seg_bytes.clone();
    mixed.extend_from_slice(&record(3, 3, WalOp::Get).encode());
    std::fs::write(seg1(&dir), &mixed).unwrap();
    let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
    assert_eq!(state.subsumed_records, 2);
    assert_eq!(state.records, vec![record(3, 3, WalOp::Get)]);

    // Recovery from a subsumed prefix is deterministic: a second
    // open of the same bytes agrees.
    std::fs::write(seg1(&dir), &mixed).unwrap();
    let (_, again) = ShardStore::open(&dir, WalSync::Off).unwrap();
    assert_eq!(again.records, state.records);
    assert_eq!(again.subsumed_records, state.subsumed_records);

    // A gap after the checkpoint is still corruption (records 3..4
    // missing), as is a 0 sequence number.
    let forged = |r: WalRecord| {
        let mut bytes = segment_header(1).to_vec();
        bytes.extend_from_slice(&r.encode());
        bytes
    };
    std::fs::write(seg1(&dir), forged(record(5, 1, WalOp::Get))).unwrap();
    assert!(matches!(
        ShardStore::open(&dir, WalSync::Off),
        Err(PersistError::Corrupt { .. })
    ));
    std::fs::write(seg1(&dir), forged(record(0, 1, WalOp::Get))).unwrap();
    assert!(matches!(
        ShardStore::open(&dir, WalSync::Off),
        Err(PersistError::Corrupt { .. })
    ));
}

#[test]
fn inflated_length_prefix_is_corruption_not_a_torn_tail() {
    let mut log = Vec::new();
    for seq in 1..=3 {
        log.extend_from_slice(&record(seq, seq as u32, WalOp::Get).encode());
    }
    let frame = FRAME_HEADER_BYTES + RECORD_PAYLOAD_BYTES;
    // Inflate the middle record's length so it claims more bytes
    // than remain: the valid final frame must not be silently
    // swallowed as a "torn tail".
    let mut corrupt = log.clone();
    corrupt[frame + 1] ^= 0x10;
    match decode_wal(&corrupt) {
        Err(PersistError::Corrupt { offset, .. }) => assert_eq!(offset, frame as u64),
        other => panic!("bad length must be loud, got {other:?}"),
    }
    // Same for the final frame, and for a deflated length: the
    // length field is written first, so a complete-but-wrong value
    // is never a crash artifact.
    let mut tail = log.clone();
    tail[2 * frame] ^= 0x02;
    assert!(matches!(
        decode_wal(&tail),
        Err(PersistError::Corrupt { .. })
    ));
}

#[test]
fn a_failed_checkpoint_kills_the_store() {
    let dir = tmp_dir("ckpt-io-fail");
    let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
    store.append(WalOp::Get, ClipId::new(1)).unwrap();
    // Rip the directory out from under the store so the tmp-file
    // write fails mid-checkpoint.
    std::fs::remove_dir_all(&dir).unwrap();
    let mut ckpt = sample_checkpoint();
    ckpt.seq = 1;
    assert!(matches!(store.checkpoint(&ckpt), Err(PersistError::Io(_))));
    // Disk and memory can no longer be reconciled: the store refuses
    // every later operation instead of silently diverging.
    assert!(matches!(
        store.append(WalOp::Get, ClipId::new(2)),
        Err(PersistError::CrashInjected)
    ));
    assert!(matches!(
        store.checkpoint(&ckpt),
        Err(PersistError::CrashInjected)
    ));
    assert!(matches!(
        store.rewind_to_checkpoint(),
        Err(PersistError::CrashInjected)
    ));
}

#[test]
fn rewind_discards_post_checkpoint_records() {
    let dir = tmp_dir("rewind");
    {
        let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
        let mut ckpt = sample_checkpoint();
        ckpt.seq = 0;
        store.checkpoint(&ckpt).unwrap();
        store.append(WalOp::Get, ClipId::new(1)).unwrap();
        store.append(WalOp::Get, ClipId::new(2)).unwrap();
        store.rewind_to_checkpoint().unwrap();
        // Sequence numbers restart from the checkpoint.
        assert_eq!(store.append(WalOp::Get, ClipId::new(9)).unwrap(), 1);
    }
    let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
    assert_eq!(state.records, vec![record(1, 9, WalOp::Get)]);
}

// ---- segmented-log tests ----------------------------------------------

#[test]
fn segment_names_and_headers_round_trip() {
    for no in [1, 2, 999_999, 1_234_567, u64::MAX] {
        let name = segment_file_name(no);
        assert_eq!(parse_segment_no(&name), Some(no), "{name}");
    }
    assert_eq!(segment_file_name(1), "wal.000001.log");
    // Width grows past six digits rather than wrapping or truncating.
    assert_eq!(segment_file_name(1_234_567), "wal.1234567.log");
    for bad in ["wal.log", "wal..log", "wal.x1.log", "wal.1.txt", "other"] {
        assert_eq!(parse_segment_no(bad), None, "{bad}");
    }
    let header = segment_header(42);
    assert_eq!(&header[..8], &SEGMENT_MAGIC);
    assert_eq!(
        u64::from_le_bytes(header[8..16].try_into().unwrap()),
        WAL_VERSION
    );
    assert_eq!(u64::from_le_bytes(header[16..24].try_into().unwrap()), 42);
}

#[test]
fn sealed_and_unsealed_segments_decode_round_trip() {
    let recs = [
        record(4, 2, WalOp::Get),
        record(5, 9, WalOp::Admit),
        range_record(6, 9, 3),
    ];
    let sealed = sealed_segment_bytes(3, &recs);
    let (decoded, end) = decode_segment(&sealed, 3).unwrap();
    assert_eq!(decoded, recs);
    assert_eq!(end, SegmentEnd::Sealed { last_seq: 6 });
    // The same bytes without the footer are a clean unsealed segment.
    let unsealed = &sealed[..sealed.len() - SEGMENT_FOOTER_BYTES];
    let (decoded, end) = decode_segment(unsealed, 3).unwrap();
    assert_eq!(decoded, recs);
    assert_eq!(end, SegmentEnd::Unsealed(WalTail::Clean));
    // A bare header is a clean, empty segment.
    let (decoded, end) = decode_segment(&segment_header(3), 3).unwrap();
    assert!(decoded.is_empty());
    assert_eq!(end, SegmentEnd::Unsealed(WalTail::Clean));
}

#[test]
fn segment_version_skew_and_renames_are_rejected() {
    let recs = [record(1, 1, WalOp::Get)];
    let mut skewed = sealed_segment_bytes(1, &recs);
    skewed[8..16].copy_from_slice(&1u64.to_le_bytes());
    match decode_segment(&skewed, 1) {
        Err(PersistError::Corrupt { offset, reason }) => {
            assert_eq!(offset, 8);
            assert!(
                reason.contains("version 1"),
                "names what it found: {reason}"
            );
            assert!(
                reason.contains("version 2"),
                "names what it reads: {reason}"
            );
        }
        other => panic!("version skew must be loud, got {other:?}"),
    }
    // A segment renamed to a different number is refused too.
    let honest = sealed_segment_bytes(1, &recs);
    match decode_segment(&honest, 7) {
        Err(PersistError::Corrupt { reason, .. }) => {
            assert!(reason.contains("renamed"), "{reason}");
        }
        other => panic!("renamed segment must be loud, got {other:?}"),
    }
    // Wrong magic: not a segment at all.
    let mut alien = honest;
    alien[0] ^= 0xFF;
    assert!(matches!(
        decode_segment(&alien, 1),
        Err(PersistError::Corrupt { .. })
    ));
}

#[test]
fn a_bit_flip_anywhere_in_a_sealed_segment_is_loud() {
    let sealed = sealed_segment_bytes(2, &[record(7, 3, WalOp::Get), record(8, 5, WalOp::Admit)]);
    for byte in 0..sealed.len() {
        for bit in 0..8 {
            let mut flipped = sealed.clone();
            flipped[byte] ^= 1 << bit;
            assert!(
                matches!(
                    decode_segment(&flipped, 2),
                    Err(PersistError::Corrupt { .. })
                ),
                "flip of byte {byte} bit {bit} was not loud"
            );
        }
    }
}

#[test]
fn a_torn_seal_footer_keeps_the_records_and_stays_unsealed() {
    let recs = [record(1, 1, WalOp::Get), record(2, 2, WalOp::Get)];
    let sealed = sealed_segment_bytes(1, &recs);
    let body = sealed.len() - SEGMENT_FOOTER_BYTES;
    for cut in 1..SEGMENT_FOOTER_BYTES {
        let torn = &sealed[..body + cut];
        let (decoded, end) = decode_segment(torn, 1).unwrap();
        assert_eq!(decoded, recs, "cut at {cut}");
        // Footers shorter than 4 bytes don't even show the mark and
        // decode as a torn frame; either way the records survive and
        // the tail points at the footer start.
        assert_eq!(
            end,
            SegmentEnd::Unsealed(WalTail::Torn {
                valid_bytes: body as u64,
                dropped_bytes: cut as u64,
            }),
            "cut at {cut}"
        );
    }
}

#[test]
fn appends_roll_into_sealed_segments_and_reopen_flattens_them() {
    let dir = tmp_dir("roll");
    {
        let (mut store, _) = ShardStore::open_tuned(&dir, WalSync::Off, tiny_segments()).unwrap();
        for i in 1..=5u32 {
            assert_eq!(store.append(WalOp::Get, ClipId::new(i)).unwrap(), i as u64);
        }
        assert_eq!(store.segment_span(), (1, 3));
    }
    // Segments 1 and 2 are sealed on disk; 3 is the active one.
    let bytes = std::fs::read(seg1(&dir)).unwrap();
    let (decoded, end) = decode_segment(&bytes, 1).unwrap();
    assert_eq!(decoded.len(), 2);
    assert_eq!(end, SegmentEnd::Sealed { last_seq: 2 });
    let (_, end) =
        decode_segment(&std::fs::read(dir.join(segment_file_name(2))).unwrap(), 2).unwrap();
    assert_eq!(end, SegmentEnd::Sealed { last_seq: 4 });
    // Reopen flattens all three segments into one contiguous run.
    let (store, state) = ShardStore::open_tuned(&dir, WalSync::Off, tiny_segments()).unwrap();
    assert_eq!(
        state.records,
        (1..=5u32)
            .map(|i| record(i as u64, i, WalOp::Get))
            .collect::<Vec<_>>()
    );
    assert_eq!(state.torn_bytes_dropped, 0);
    assert_eq!(store.segment_span(), (1, 3));
    assert_eq!(store.next_seq(), 6);
}

#[test]
fn checkpoints_delete_subsumed_segments() {
    let dir = tmp_dir("seg-ckpt");
    let (mut store, _) = ShardStore::open_tuned(&dir, WalSync::Off, tiny_segments()).unwrap();
    for i in 1..=5u32 {
        store.append(WalOp::Get, ClipId::new(i)).unwrap();
    }
    assert_eq!(store.segment_span(), (1, 3));
    let mut ckpt = sample_checkpoint();
    ckpt.seq = 5;
    store.checkpoint(&ckpt).unwrap();
    // The sealed predecessors are gone; the active segment is a bare
    // header again.
    assert_eq!(store.segment_span(), (3, 3));
    assert!(!seg1(&dir).exists());
    assert!(!dir.join(segment_file_name(2)).exists());
    assert_eq!(
        std::fs::metadata(dir.join(segment_file_name(3)))
            .unwrap()
            .len(),
        SEGMENT_HEADER_BYTES as u64
    );
    // Appends continue the chain and the next reopen replays only them.
    assert_eq!(store.append(WalOp::Get, ClipId::new(9)).unwrap(), 6);
    drop(store);
    let (store, state) = ShardStore::open_tuned(&dir, WalSync::Off, tiny_segments()).unwrap();
    assert_eq!(state.checkpoint.expect("checkpoint").seq, 5);
    assert_eq!(state.records, vec![record(6, 9, WalOp::Get)]);
    assert_eq!(store.segment_span(), (3, 3));
}

#[test]
fn gapped_segment_numbering_is_corruption() {
    let dir = tmp_dir("seg-gap");
    {
        let (mut store, _) = ShardStore::open_tuned(&dir, WalSync::Off, tiny_segments()).unwrap();
        for i in 1..=5u32 {
            store.append(WalOp::Get, ClipId::new(i)).unwrap();
        }
    }
    // Deleting a *middle* segment leaves a hole no crash can explain.
    std::fs::remove_file(dir.join(segment_file_name(2))).unwrap();
    match ShardStore::open_tuned(&dir, WalSync::Off, tiny_segments()).map(|_| ()) {
        Err(PersistError::Corrupt { reason, .. }) => {
            assert!(reason.contains("gap"), "{reason}");
        }
        other => panic!("numbering gap must be loud, got {other:?}"),
    }
}

#[test]
fn a_legacy_single_file_wal_is_rejected_by_name() {
    let dir = tmp_dir("legacy");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(LEGACY_WAL_FILE), record(1, 1, WalOp::Get).encode()).unwrap();
    match ShardStore::open(&dir, WalSync::Off).map(|_| ()) {
        Err(PersistError::Corrupt { reason, .. }) => {
            assert!(reason.contains(LEGACY_WAL_FILE), "{reason}");
            assert!(reason.contains("segmented"), "says what to do: {reason}");
        }
        other => panic!("legacy wal.log must be refused, got {other:?}"),
    }
    // So is an unparseable wal.*.log name.
    std::fs::remove_file(dir.join(LEGACY_WAL_FILE)).unwrap();
    std::fs::write(dir.join("wal.junk.log"), b"").unwrap();
    assert!(matches!(
        ShardStore::open(&dir, WalSync::Off),
        Err(PersistError::Corrupt { .. })
    ));
}

#[test]
fn torn_seal_crash_keeps_the_segment_active() {
    let dir = tmp_dir("seal-crash");
    {
        let (mut store, _) = ShardStore::open_tuned(&dir, WalSync::Off, tiny_segments()).unwrap();
        store.arm_crash(Some(CrashSpec::parse("seal:1").unwrap()));
        store.append(WalOp::Get, ClipId::new(1)).unwrap();
        // The second append fills the segment; the seal tears halfway.
        assert!(matches!(
            store.append(WalOp::Get, ClipId::new(2)),
            Err(PersistError::CrashInjected)
        ));
    }
    // Half a footer sits on disk after the two (durable) records.
    let (store, state) = ShardStore::open_tuned(&dir, WalSync::Off, tiny_segments()).unwrap();
    assert_eq!(
        state.records.len(),
        2,
        "no record was lost to the torn seal"
    );
    assert_eq!(state.torn_bytes_dropped, (SEGMENT_FOOTER_BYTES / 2) as u64);
    assert_eq!(store.segment_span(), (1, 1), "the segment stays active");
    // The store keeps appending — and can seal the segment for real.
    let mut store = store;
    store.append(WalOp::Get, ClipId::new(3)).unwrap();
    assert_eq!(store.segment_span(), (1, 2), "roll completed this time");
    drop(store);
    let (_, state) = ShardStore::open_tuned(&dir, WalSync::Off, tiny_segments()).unwrap();
    assert_eq!(state.records.len(), 3);
}

#[test]
fn segment_roll_crash_recovers_with_a_fresh_successor() {
    let dir = tmp_dir("roll-crash");
    {
        let (mut store, _) = ShardStore::open_tuned(&dir, WalSync::Off, tiny_segments()).unwrap();
        store.arm_crash(Some(CrashSpec::parse("segment-roll:1").unwrap()));
        store.append(WalOp::Get, ClipId::new(1)).unwrap();
        // The seal lands durably; the successor is never created.
        assert!(matches!(
            store.append(WalOp::Get, ClipId::new(2)),
            Err(PersistError::CrashInjected)
        ));
    }
    let (_, end) = decode_segment(&std::fs::read(seg1(&dir)).unwrap(), 1).unwrap();
    assert_eq!(end, SegmentEnd::Sealed { last_seq: 2 });
    assert!(!dir.join(segment_file_name(2)).exists());
    // Recovery opens the missing successor and the chain continues.
    let (mut store, state) = ShardStore::open_tuned(&dir, WalSync::Off, tiny_segments()).unwrap();
    assert_eq!(state.records.len(), 2);
    assert_eq!(state.torn_bytes_dropped, 0);
    assert_eq!(store.segment_span(), (1, 2));
    assert_eq!(store.append(WalOp::Get, ClipId::new(3)).unwrap(), 3);
    drop(store);
    let (_, state) = ShardStore::open_tuned(&dir, WalSync::Off, tiny_segments()).unwrap();
    assert_eq!(state.records.len(), 3);
}

// ---- group-commit tests -----------------------------------------------

#[test]
fn commit_tickets_exist_only_under_sync_always_with_a_window() {
    let window = Duration::from_micros(100);
    let dir = tmp_dir("ticket-gate");
    {
        let (mut store, _) =
            ShardStore::open_tuned(&dir, WalSync::Always, windowed(window)).unwrap();
        let seq = store.append(WalOp::Get, ClipId::new(1)).unwrap();
        let ticket = store.commit_ticket(seq).expect("group commit is on");
        ticket.wait().expect("the batched fsync lands");
    }
    // Zero window: inline fsync per append, no tickets.
    let dir0 = tmp_dir("ticket-gate-zero");
    let (mut store, _) = ShardStore::open(&dir0, WalSync::Always).unwrap();
    let seq = store.append(WalOp::Get, ClipId::new(1)).unwrap();
    assert!(store.commit_ticket(seq).is_none());
    // Sync off: durability is not promised, no tickets either.
    let dir_off = tmp_dir("ticket-gate-off");
    let (mut store, _) = ShardStore::open_tuned(&dir_off, WalSync::Off, windowed(window)).unwrap();
    let seq = store.append(WalOp::Get, ClipId::new(1)).unwrap();
    assert!(store.commit_ticket(seq).is_none());
}

#[test]
fn concurrent_appends_ride_one_batched_fsync() {
    let dir = tmp_dir("group");
    let tuning = windowed(Duration::from_millis(2));
    let (store, _) = ShardStore::open_tuned(&dir, WalSync::Always, tuning).unwrap();
    let store = Arc::new(Mutex::new(store));
    let threads: Vec<_> = (0..4u32)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..25u32 {
                    // Hold the lock only for the append, like the shard
                    // does; ride the batch outside it.
                    let ticket = {
                        let mut s = store.lock().unwrap();
                        let seq = s.append(WalOp::Get, ClipId::new(t * 25 + i + 1)).unwrap();
                        s.commit_ticket(seq).expect("group commit is on")
                    };
                    ticket.wait().expect("batched fsync lands");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    drop(store);
    let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
    assert_eq!(state.records.len(), 100, "every acked append is on disk");
    assert_eq!(state.torn_bytes_dropped, 0);
}

#[test]
fn rewinds_and_kills_wake_pending_tickets_with_errors() {
    let window = Duration::from_secs(5); // longer than the test: only
                                         // explicit wakeups end a wait
    let dir = tmp_dir("ticket-rewind");
    let (mut store, _) = ShardStore::open_tuned(&dir, WalSync::Always, windowed(window)).unwrap();
    let mut ckpt = sample_checkpoint();
    ckpt.seq = 0;
    store.checkpoint(&ckpt).unwrap();
    let seq = store.append(WalOp::Get, ClipId::new(1)).unwrap();
    let ticket = store.commit_ticket(seq).unwrap();
    store.rewind_to_checkpoint().unwrap();
    // The record the ticket covered was discarded; waiting must error,
    // not hang and not claim durability.
    assert!(matches!(ticket.wait(), Err(PersistError::Io(_))));
    // A killed store wakes riders with an error too.
    let seq = store.append(WalOp::Get, ClipId::new(2)).unwrap();
    let ticket = store.commit_ticket(seq).unwrap();
    store.kill();
    assert!(matches!(ticket.wait(), Err(PersistError::Io(_))));
}

#[test]
fn crash_points_release_riders_before_dying() {
    // Every injected death that fsyncs must mark the synced records
    // durable so a concurrent rider is woken with Ok, never left
    // hanging on a dead store.
    let window = Duration::from_secs(5);
    for (spec, clip_count) in [("append:2", 2u32), ("torn:2", 1), ("seal:1", 2)] {
        let dir = tmp_dir(&format!("rider-{}", spec.replace(':', "-")));
        let (mut store, _) = ShardStore::open_tuned(&dir, WalSync::Always, {
            let mut t = windowed(window);
            t.segment_bytes = 74; // roll after two records
            t
        })
        .unwrap();
        store.arm_crash(Some(CrashSpec::parse(spec).unwrap()));
        let seq = store.append(WalOp::Get, ClipId::new(1)).unwrap();
        let ticket = store.commit_ticket(seq).unwrap();
        // The second append triggers the crash point...
        let _ = store.append(WalOp::Get, ClipId::new(2));
        // ...whose fsync (full or partial) made record 1 durable.
        ticket
            .wait()
            .unwrap_or_else(|e| panic!("rider of seq 1 must be released by {spec}: {e}"));
        drop(store);
        let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        assert!(
            state.records.len() >= clip_count as usize,
            "{spec}: acked records survive"
        );
    }
}
