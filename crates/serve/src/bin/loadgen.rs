//! `loadgen` — closed-loop load harness for the sharded cache service.
//!
//! ```text
//! loadgen [--target inproc|host:port] [--policy spec] [--shards n]
//!         [--clients n] [--requests n] [--clips n] [--theta f]
//!         [--ratio f] [--chunk-size mb] [--seed n|0xHEX]
//!         [--check-serial tol] [--wire text|binary] [--pipeline n]
//!         [--faults spec] [--retries n] [--backoff-ms n]
//!         [--chaos-report path] [--data-dir path] [--wal-sync always|off]
//! ```
//!
//! Replays a seeded Zipf trace from `--clients` closed-loop threads
//! against the in-process service (`--target inproc`, the default) or a
//! running `serve` front-end, then reports hit rate, throughput and
//! latency percentiles.
//!
//! TCP targets choose a wire protocol with `--wire` (text lines, the
//! debuggable default, or length-prefixed binary frames — the fast
//! path) and a pipeline depth with `--pipeline n`: each client keeps up
//! to `n` requests in flight per connection, batched into one write per
//! window. Pipelining changes timing, never results — the server
//! preserves per-connection order, so `--shards 1 --clients 1
//! --check-serial 0` passes at any depth. Chaos replays always run
//! request-at-a-time (fault attribution is per request).
//!
//! `--faults` switches the replay into chaos mode: the spec (e.g.
//! `rate=0.02,seed=7,kinds=drop-pre+garbage+torn+poison`) seeds a
//! deterministic fault schedule; each injected fault is recovered by a
//! bounded retry loop (`--retries`, default 4) with jitter-free
//! exponential backoff starting at `--backoff-ms` (default 0). After a
//! chaos run the delivery invariants are checked (every request's reply
//! delivered exactly once; hits + misses == delivered) and the run
//! fails loudly if they don't hold. `--chaos-report path` additionally
//! writes the deterministic, wall-clock-free chaos summary to `path`
//! (or stdout with `-`) — two runs with the same flags must produce
//! byte-identical reports, which CI pins against a committed golden.
//!
//! `--check-serial tol` compares the run's hit statistics against the
//! serial simulator replaying the same trace (policy seeded like shard 0
//! of the service). With `tol 0` the counters must match **bit for
//! bit** — the honest setting for 1 shard + 1 client, where the service
//! is provably the serial simulator. With `tol > 0` the hit rates must
//! agree within `tol` — the setting for multi-shard runs, whose split
//! capacity changes cache state. When the target is TCP, pass the same
//! `--policy/--shards/--clips/--ratio/--seed` the server was started
//! with so the baseline matches.
//!
//! `--data-dir` (inproc targets only) runs the in-process service
//! durably — checkpoint + WAL per shard, recovered on open — so
//! `--check-serial 0` against a fresh data dir proves persistence does
//! not perturb behavior, the check CI's crash-smoke job runs. A
//! `--faults` spec carrying `crash=append:N` (etc.) arms the durable
//! store's deterministic crash point; the process exits 137 when it
//! fires, exactly like `serve --crash-at`.

use clipcache_media::paper;
use clipcache_serve::{
    run_load_with, serial_baseline, CacheService, CrashAction, FaultPlan, LoadOptions,
    PersistOptions, RetryPolicy, ServiceConfig, Target, WalSync, Wire,
};
use clipcache_workload::{RequestGenerator, Trace};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    target: String,
    policy: clipcache_core::PolicySpec,
    shards: usize,
    clients: usize,
    requests: u64,
    clips: usize,
    theta: f64,
    ratio: f64,
    chunk_mb: u64,
    seed: u64,
    check_serial: Option<f64>,
    faults: Option<FaultPlan>,
    retry: RetryPolicy,
    chaos_report: Option<String>,
    data_dir: Option<std::path::PathBuf>,
    wal_sync: WalSync,
    wire: Wire,
    pipeline: usize,
}

/// Parse a seed as decimal or `0x`-prefixed hex (matches `repro`).
fn parse_u64(v: &str) -> Result<u64, String> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).map_err(|e| e.to_string()),
        None => v
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string()),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        target: "inproc".into(),
        policy: clipcache_core::PolicyKind::Lru.into(),
        shards: 4,
        clients: 4,
        requests: 100_000,
        clips: 100,
        theta: 0.27,
        ratio: 0.25,
        chunk_mb: 0,
        seed: 0x5EED_2007,
        check_serial: None,
        faults: None,
        retry: RetryPolicy::default(),
        chaos_report: None,
        data_dir: None,
        wal_sync: WalSync::default(),
        wire: Wire::Text,
        pipeline: 1,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--target" => args.target = argv.next().ok_or("--target needs inproc or host:port")?,
            "--policy" => {
                let v = argv.next().ok_or("--policy needs a spec")?;
                args.policy = v.parse()?;
            }
            "--shards" => {
                let v = argv.next().ok_or("--shards needs a count")?;
                args.shards = v.parse().map_err(|e| format!("bad --shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--clients" => {
                let v = argv.next().ok_or("--clients needs a count")?;
                args.clients = v.parse().map_err(|e| format!("bad --clients: {e}"))?;
                if args.clients == 0 {
                    return Err("--clients must be at least 1".into());
                }
            }
            "--requests" => {
                let v = argv.next().ok_or("--requests needs a count")?;
                args.requests = v.parse().map_err(|e| format!("bad --requests: {e}"))?;
            }
            "--clips" => {
                let v = argv.next().ok_or("--clips needs a count")?;
                args.clips = v.parse().map_err(|e| format!("bad --clips: {e}"))?;
            }
            "--theta" => {
                let v = argv.next().ok_or("--theta needs a value")?;
                args.theta = v.parse().map_err(|e| format!("bad --theta: {e}"))?;
            }
            "--ratio" => {
                let v = argv.next().ok_or("--ratio needs a fraction")?;
                args.ratio = v.parse().map_err(|e| format!("bad --ratio: {e}"))?;
            }
            "--chunk-size" => {
                let v = argv
                    .next()
                    .ok_or("--chunk-size needs megabytes (0 = whole-clip)")?;
                args.chunk_mb = v.parse().map_err(|e| format!("bad --chunk-size: {e}"))?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                args.seed = parse_u64(&v).map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--check-serial" => {
                let v = argv.next().ok_or("--check-serial needs a tolerance")?;
                let tol: f64 = v.parse().map_err(|e| format!("bad --check-serial: {e}"))?;
                if !(0.0..=1.0).contains(&tol) {
                    return Err("--check-serial tolerance must be in [0, 1]".into());
                }
                args.check_serial = Some(tol);
            }
            "--faults" => {
                let v = argv
                    .next()
                    .ok_or("--faults needs a spec (e.g. rate=0.02)")?;
                args.faults = Some(FaultPlan::parse(&v).map_err(|e| format!("bad --faults: {e}"))?);
            }
            "--retries" => {
                let v = argv.next().ok_or("--retries needs a count")?;
                args.retry.max_retries = v.parse().map_err(|e| format!("bad --retries: {e}"))?;
            }
            "--backoff-ms" => {
                let v = argv.next().ok_or("--backoff-ms needs milliseconds")?;
                let ms: u64 = v.parse().map_err(|e| format!("bad --backoff-ms: {e}"))?;
                args.retry.base_backoff = Duration::from_millis(ms);
            }
            "--chaos-report" => {
                args.chaos_report = Some(argv.next().ok_or("--chaos-report needs a path or -")?);
            }
            "--data-dir" => {
                let v = argv.next().ok_or("--data-dir needs a path")?;
                args.data_dir = Some(std::path::PathBuf::from(v));
            }
            "--wal-sync" => {
                let v = argv.next().ok_or("--wal-sync needs always or off")?;
                args.wal_sync = WalSync::parse(&v)?;
            }
            "--wire" => {
                let v = argv.next().ok_or("--wire needs text or binary")?;
                args.wire = v.parse()?;
            }
            "--pipeline" => {
                let v = argv.next().ok_or("--pipeline needs a depth")?;
                args.pipeline = v.parse().map_err(|e| format!("bad --pipeline: {e}"))?;
                if args.pipeline == 0 {
                    return Err("--pipeline must be at least 1".into());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: loadgen [--target inproc|host:port] [--policy spec] \
                     [--shards n] [--clients n] [--requests n] [--clips n] \
                     [--theta f] [--ratio f] [--chunk-size mb] [--seed n|0xHEX] \
                     [--check-serial tol] \
                     [--wire text|binary] [--pipeline n] \
                     [--faults spec] [--retries n] [--backoff-ms n] \
                     [--chaos-report path|-] [--data-dir path] [--wal-sync always|off]\n\
                     --wire binary speaks length-prefixed frames; --pipeline n \
                     keeps n requests in flight per connection (clean TCP \
                     replays only; results are depth-invariant)\n\
                     --check-serial 0 demands bit-for-bit equality with the \
                     serial simulator (valid for --shards 1 --clients 1); \
                     tol > 0 allows that hit-rate deviation for sharded runs\n\
                     --faults rate=0.02,seed=7,kinds=drop-pre+drop-post+garbage+torn+poison \
                     injects a deterministic fault schedule recovered by \
                     --retries (default 4) with jitter-free exponential \
                     backoff from --backoff-ms (default 0)"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.data_dir.is_some() && args.target != "inproc" {
        return Err(
            "--data-dir only applies to --target inproc (persist the server instead)".into(),
        );
    }
    if args.faults.is_some() && args.pipeline > 1 {
        return Err(
            "--pipeline cannot be combined with --faults: chaos replays run \
             request-at-a-time so every injected fault is attributable to exactly \
             one request; drop --pipeline (or the --faults spec)"
                .into(),
        );
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut repo = paper::variable_sized_repository_of(args.clips);
    if args.chunk_mb > 0 {
        repo = repo.with_chunk_size(clipcache_media::ByteSize::mb(args.chunk_mb));
    }
    let repo = Arc::new(repo);
    let capacity = repo.cache_capacity_for_ratio(args.ratio);
    let trace = Trace::from_generator(RequestGenerator::new(
        args.clips,
        args.theta,
        0,
        args.requests,
        args.seed,
    ));

    let config = ServiceConfig::new(args.policy, args.shards, capacity, args.seed);
    // Whether the durable service recovered prior state: server-side
    // counters then include a previous run's requests and cannot be
    // compared against this run's client-observed counters.
    let mut warm_start = false;
    let service = if args.target == "inproc" {
        let built = match &args.data_dir {
            Some(dir) => {
                let opts = PersistOptions {
                    dir: dir.clone(),
                    sync: args.wal_sync,
                    crash: args.faults.as_ref().and_then(|p| p.crash()),
                    on_crash: CrashAction::ExitProcess,
                };
                CacheService::open_persistent(Arc::clone(&repo), config, None, &opts)
                    .map(|(s, report)| {
                        warm_start = report.checkpoints_loaded > 0 || report.replayed > 0;
                        println!(
                            "recovered {} (checkpoints={} wal_replayed={} torn_bytes_dropped={})",
                            dir.display(),
                            report.checkpoints_loaded,
                            report.replayed,
                            report.torn_bytes_dropped
                        );
                        s
                    })
                    .map_err(|e| e.to_string())
            }
            None => CacheService::new(Arc::clone(&repo), config, None).map_err(|e| e.to_string()),
        };
        match built {
            Ok(s) => Some(Arc::new(s)),
            Err(e) => {
                eprintln!("cannot build service: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let target = match &service {
        Some(s) => Target::InProcess(Arc::clone(s)),
        None => Target::Tcp(args.target.clone()),
    };

    let options = LoadOptions {
        clients: args.clients,
        faults: args.faults.clone(),
        retry: args.retry,
        read_timeout: None,
        wire: args.wire,
        pipeline: args.pipeline,
    };
    let report = match run_load_with(&target, &repo, &trace, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("load run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let lat = &report.latency;
    let us = |n: u64| n as f64 / 1_000.0;
    println!(
        "requests={} clients={} shards={} policy={}",
        report.observed.requests(),
        report.clients,
        args.shards,
        args.policy.spelling()
    );
    println!(
        "hit_rate={:.6} byte_hit_rate={:.6} evictions={}",
        report.observed.hit_rate(),
        report.observed.byte_hit_rate(),
        report.observed.evictions
    );
    println!(
        "elapsed={:.3}s throughput={:.0} req/s",
        report.elapsed_secs,
        report.throughput()
    );
    println!(
        "latency_us mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
        lat.mean_nanos() / 1_000.0,
        us(lat.percentile_nanos(0.5)),
        us(lat.percentile_nanos(0.95)),
        us(lat.percentile_nanos(0.99)),
        us(lat.max_nanos())
    );
    if args.faults.is_some() {
        let c = &report.chaos;
        println!(
            "chaos injected={} (drop_pre={} drop_post={} garbage={} torn={} poison={}) \
             retries={} reconnects={} err_replies={} recoveries={}",
            c.injected(),
            c.drops_before,
            c.drops_after,
            c.garbage,
            c.torn,
            c.poisons,
            c.retries,
            c.reconnects,
            c.err_replies,
            report.recoveries
        );
        // The delivery invariants: every request's reply reached its
        // client exactly once, and each was recorded exactly once.
        if report.chaos.delivered != args.requests {
            eprintln!(
                "chaos invariant FAILED: delivered {} of {} requests",
                report.chaos.delivered, args.requests
            );
            return ExitCode::FAILURE;
        }
        if !report.conserved() {
            eprintln!("chaos invariant FAILED: hits + misses != delivered");
            return ExitCode::FAILURE;
        }
        println!(
            "chaos invariants hold: delivered={} exactly once",
            c.delivered
        );
    } else if let Some(service) = &service {
        // Clean runs only: under chaos, duplicate processing (lost
        // replies) and checkpoint rewinds (poison recovery) legitimately
        // shift the server-side counters, so the client-observed side is
        // the authoritative one. A warm durable start also skips: the
        // recovered counters include a previous run's requests.
        if !warm_start {
            let server_side = service.stats();
            // Chunked runs: the GET wire reports whole-clip outcomes, so
            // the client's byte split cannot see prefix refinements (the
            // server splits resident head from streamed tail and counts
            // prefix_hits). The event-level counters must still agree.
            let agrees = if args.chunk_mb == 0 {
                server_side == report.observed
            } else {
                server_side.hits == report.observed.hits
                    && server_side.misses == report.observed.misses
                    && server_side.evictions == report.observed.evictions
            };
            if !agrees {
                eprintln!("server-side stats disagree with client-observed stats");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.chaos_report {
        let rendered = report.chaos_report();
        if path == "-" {
            print!("{rendered}");
        } else if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("cannot write chaos report to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(tol) = args.check_serial {
        let baseline = serial_baseline(&repo, args.policy, capacity, args.seed, &trace);
        if tol == 0.0 {
            // On chunked runs the authoritative bit-for-bit comparand is
            // the server-side stats (they carry the prefix byte split the
            // GET wire cannot); the client still pins the event counters.
            let matched = match (&service, args.chunk_mb) {
                (_, 0) => report.observed == baseline,
                (Some(s), _) => s.stats() == baseline,
                (None, _) => {
                    report.observed.hits == baseline.hits
                        && report.observed.misses == baseline.misses
                        && report.observed.evictions == baseline.evictions
                }
            };
            if !matched {
                eprintln!(
                    "serial check FAILED: observed {:?} != serial {:?}",
                    report.observed, baseline
                );
                return ExitCode::FAILURE;
            }
            println!("serial check passed: bit-for-bit equal");
        } else {
            let delta = (report.observed.hit_rate() - baseline.hit_rate()).abs();
            if delta > tol {
                eprintln!(
                    "serial check FAILED: hit rate {:.6} vs serial {:.6} (|Δ|={:.6} > {tol})",
                    report.observed.hit_rate(),
                    baseline.hit_rate(),
                    delta
                );
                return ExitCode::FAILURE;
            }
            println!(
                "serial check passed: hit rate {:.6} vs serial {:.6} (|Δ|={:.6} ≤ {tol})",
                report.observed.hit_rate(),
                baseline.hit_rate(),
                delta
            );
        }
    }
    ExitCode::SUCCESS
}
