//! `loadgen` — closed-loop load harness for the sharded cache service.
//!
//! ```text
//! loadgen [--target inproc|host:port] [--policy spec] [--shards n]
//!         [--clients n] [--requests n] [--clips n] [--theta f]
//!         [--ratio f] [--chunk-size mb] [--seed n|0xHEX]
//!         [--check-serial tol] [--wire text|binary] [--pipeline n]
//!         [--faults spec] [--retries n] [--backoff-ms n] [--max-backoff-ms n]
//!         [--chaos-report path] [--data-dir path] [--wal-sync always|off]
//!         [--peers a,b,c | --cluster-nodes n] [--replication r]
//!         [--peer-faults spec] [--kill-span node:from:to]
//! ```
//!
//! Replays a seeded Zipf trace from `--clients` closed-loop threads
//! against the in-process service (`--target inproc`, the default) or a
//! running `serve` front-end, then reports hit rate, throughput and
//! latency percentiles.
//!
//! TCP targets choose a wire protocol with `--wire` (text lines, the
//! debuggable default, or length-prefixed binary frames — the fast
//! path) and a pipeline depth with `--pipeline n`: each client keeps up
//! to `n` requests in flight per connection, batched into one write per
//! window. Pipelining changes timing, never results — the server
//! preserves per-connection order, so `--shards 1 --clients 1
//! --check-serial 0` passes at any depth. Chaos replays always run
//! request-at-a-time (fault attribution is per request).
//!
//! `--faults` switches the replay into chaos mode: the spec (e.g.
//! `rate=0.02,seed=7,kinds=drop-pre+garbage+torn+poison`) seeds a
//! deterministic fault schedule; each injected fault is recovered by a
//! bounded retry loop (`--retries`, default 4) with jitter-free
//! exponential backoff starting at `--backoff-ms` (default 0) and
//! capped at `--max-backoff-ms` (default unbounded). After a
//! chaos run the delivery invariants are checked (every request's reply
//! delivered exactly once; hits + misses == delivered) and the run
//! fails loudly if they don't hold. `--chaos-report path` additionally
//! writes the deterministic, wall-clock-free chaos summary to `path`
//! (or stdout with `-`) — two runs with the same flags must produce
//! byte-identical reports, which CI pins against a committed golden.
//!
//! `--check-serial tol` compares the run's hit statistics against the
//! serial simulator replaying the same trace (policy seeded like shard 0
//! of the service). With `tol 0` the counters must match **bit for
//! bit** — the honest setting for 1 shard + 1 client, where the service
//! is provably the serial simulator. With `tol > 0` the hit rates must
//! agree within `tol` — the setting for multi-shard runs, whose split
//! capacity changes cache state. When the target is TCP, pass the same
//! `--policy/--shards/--clips/--ratio/--seed` the server was started
//! with so the baseline matches.
//!
//! Cluster modes: `--peers a,b,c` ring-routes every GET across a
//! running TCP cluster (same member order, `--seed` and `--replication`
//! as the servers), failing over to replica owners when a member is
//! down. `--cluster-nodes n` instead builds an in-process n-node
//! cluster (the deterministic harness `clusterbench` and the cluster
//! chaos golden use); `--peer-faults spec` injects drop-pre/drop-post/
//! garbage faults on its modelled peer wire, and the cluster block is
//! appended to `--chaos-report` output. `--kill-span node:from:to`
//! (repeatable, harness only, `--clients 1`) kills `node` before
//! request `from` and revives it before request `to` — a deterministic
//! member outage that exercises the per-peer circuit breakers and
//! hinted handoff, rendered as the report's `degraded` block.
//!
//! `--data-dir` (inproc targets only) runs the in-process service
//! durably — checkpoint + WAL per shard, recovered on open — so
//! `--check-serial 0` against a fresh data dir proves persistence does
//! not perturb behavior, the check CI's crash-smoke job runs. A
//! `--faults` spec carrying `crash=append:N` (etc.) arms the durable
//! store's deterministic crash point; the process exits 137 when it
//! fires, exactly like `serve --crash-at`.

use clipcache_media::paper;
use clipcache_serve::{
    run_load_with, serial_baseline, CacheService, ClusterHarness, ClusterRoute, CrashAction,
    FaultPlan, LoadOptions, PeerFaults, PersistOptions, RetryPolicy, ServiceConfig, Target,
    WalSync, WalTuning, Wire,
};
use clipcache_workload::{RequestGenerator, Trace};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    target: String,
    policy: clipcache_core::PolicySpec,
    shards: usize,
    clients: usize,
    requests: u64,
    clips: usize,
    theta: f64,
    ratio: f64,
    chunk_mb: u64,
    seed: u64,
    check_serial: Option<f64>,
    faults: Option<FaultPlan>,
    retry: RetryPolicy,
    chaos_report: Option<String>,
    data_dir: Option<std::path::PathBuf>,
    wal_sync: WalSync,
    tuning: WalTuning,
    wire: Wire,
    pipeline: usize,
    peers: Vec<String>,
    cluster_nodes: Option<usize>,
    replication: usize,
    peer_faults: Option<FaultPlan>,
    /// Deterministic harness kill/revive windows: `(node, from, to)`
    /// kills `node` before request `from` and revives it before `to`.
    kill_spans: Vec<(usize, u64, u64)>,
}

/// Parse a seed as decimal or `0x`-prefixed hex (matches `repro`).
fn parse_u64(v: &str) -> Result<u64, String> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).map_err(|e| e.to_string()),
        None => v
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string()),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        target: "inproc".into(),
        policy: clipcache_core::PolicyKind::Lru.into(),
        shards: 4,
        clients: 4,
        requests: 100_000,
        clips: 100,
        theta: 0.27,
        ratio: 0.25,
        chunk_mb: 0,
        seed: 0x5EED_2007,
        check_serial: None,
        faults: None,
        retry: RetryPolicy::default(),
        chaos_report: None,
        data_dir: None,
        wal_sync: WalSync::default(),
        tuning: WalTuning::default(),
        wire: Wire::Text,
        pipeline: 1,
        peers: Vec::new(),
        cluster_nodes: None,
        replication: 1,
        peer_faults: None,
        kill_spans: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--target" => args.target = argv.next().ok_or("--target needs inproc or host:port")?,
            "--policy" => {
                let v = argv.next().ok_or("--policy needs a spec")?;
                args.policy = v.parse()?;
            }
            "--shards" => {
                let v = argv.next().ok_or("--shards needs a count")?;
                args.shards = v.parse().map_err(|e| format!("bad --shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--clients" => {
                let v = argv.next().ok_or("--clients needs a count")?;
                args.clients = v.parse().map_err(|e| format!("bad --clients: {e}"))?;
                if args.clients == 0 {
                    return Err("--clients must be at least 1".into());
                }
            }
            "--requests" => {
                let v = argv.next().ok_or("--requests needs a count")?;
                args.requests = v.parse().map_err(|e| format!("bad --requests: {e}"))?;
            }
            "--clips" => {
                let v = argv.next().ok_or("--clips needs a count")?;
                args.clips = v.parse().map_err(|e| format!("bad --clips: {e}"))?;
            }
            "--theta" => {
                let v = argv.next().ok_or("--theta needs a value")?;
                args.theta = v.parse().map_err(|e| format!("bad --theta: {e}"))?;
            }
            "--ratio" => {
                let v = argv.next().ok_or("--ratio needs a fraction")?;
                args.ratio = v.parse().map_err(|e| format!("bad --ratio: {e}"))?;
            }
            "--chunk-size" => {
                let v = argv
                    .next()
                    .ok_or("--chunk-size needs megabytes (0 = whole-clip)")?;
                args.chunk_mb = v.parse().map_err(|e| format!("bad --chunk-size: {e}"))?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                args.seed = parse_u64(&v).map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--check-serial" => {
                let v = argv.next().ok_or("--check-serial needs a tolerance")?;
                let tol: f64 = v.parse().map_err(|e| format!("bad --check-serial: {e}"))?;
                if !(0.0..=1.0).contains(&tol) {
                    return Err("--check-serial tolerance must be in [0, 1]".into());
                }
                args.check_serial = Some(tol);
            }
            "--faults" => {
                let v = argv
                    .next()
                    .ok_or("--faults needs a spec (e.g. rate=0.02)")?;
                args.faults = Some(FaultPlan::parse(&v).map_err(|e| format!("bad --faults: {e}"))?);
            }
            "--retries" => {
                let v = argv.next().ok_or("--retries needs a count")?;
                args.retry.max_retries = v.parse().map_err(|e| format!("bad --retries: {e}"))?;
            }
            "--backoff-ms" => {
                let v = argv.next().ok_or("--backoff-ms needs milliseconds")?;
                let ms: u64 = v.parse().map_err(|e| format!("bad --backoff-ms: {e}"))?;
                args.retry.base_backoff = Duration::from_millis(ms);
            }
            "--max-backoff-ms" => {
                let v = argv.next().ok_or("--max-backoff-ms needs milliseconds")?;
                let ms: u64 = v.parse().map_err(|e| format!("bad --max-backoff-ms: {e}"))?;
                if ms == 0 {
                    return Err("--max-backoff-ms must be at least 1".into());
                }
                args.retry.max_backoff = Duration::from_millis(ms);
            }
            "--kill-span" => {
                let v = argv
                    .next()
                    .ok_or("--kill-span needs node:from:to (e.g. 1:100:500)")?;
                let parts: Vec<&str> = v.split(':').collect();
                let [node, from, to] = parts.as_slice() else {
                    return Err(format!("bad --kill-span '{v}': expected node:from:to"));
                };
                let node: usize = node
                    .parse()
                    .map_err(|e| format!("bad --kill-span node: {e}"))?;
                let from = parse_u64(from).map_err(|e| format!("bad --kill-span from: {e}"))?;
                let to = parse_u64(to).map_err(|e| format!("bad --kill-span to: {e}"))?;
                if from >= to {
                    return Err(format!("bad --kill-span '{v}': from must precede to"));
                }
                args.kill_spans.push((node, from, to));
            }
            "--chaos-report" => {
                args.chaos_report = Some(argv.next().ok_or("--chaos-report needs a path or -")?);
            }
            "--data-dir" => {
                let v = argv.next().ok_or("--data-dir needs a path")?;
                args.data_dir = Some(std::path::PathBuf::from(v));
            }
            "--wal-sync" => {
                let v = argv.next().ok_or("--wal-sync needs always or off")?;
                args.wal_sync = WalSync::parse(&v)?;
            }
            "--commit-window-us" => {
                let v = argv
                    .next()
                    .ok_or("--commit-window-us needs microseconds (0 = fsync per record)")?;
                let us: u64 = v
                    .parse()
                    .map_err(|e| format!("bad --commit-window-us: {e}"))?;
                args.tuning.commit_window = Duration::from_micros(us);
            }
            "--segment-bytes" => {
                let v = argv.next().ok_or("--segment-bytes needs a byte count")?;
                let n: u64 = v.parse().map_err(|e| format!("bad --segment-bytes: {e}"))?;
                if n == 0 {
                    return Err("--segment-bytes must be at least 1".into());
                }
                args.tuning.segment_bytes = n;
            }
            "--wire" => {
                let v = argv.next().ok_or("--wire needs text or binary")?;
                args.wire = v.parse()?;
            }
            "--pipeline" => {
                let v = argv.next().ok_or("--pipeline needs a depth")?;
                args.pipeline = v.parse().map_err(|e| format!("bad --pipeline: {e}"))?;
                if args.pipeline == 0 {
                    return Err("--pipeline must be at least 1".into());
                }
            }
            "--peers" => {
                let v = argv
                    .next()
                    .ok_or("--peers needs a comma-separated address list")?;
                args.peers = v
                    .split(',')
                    .map(|a| a.trim().to_string())
                    .filter(|a| !a.is_empty())
                    .collect();
                if args.peers.is_empty() {
                    return Err("--peers needs at least one address".into());
                }
            }
            "--cluster-nodes" => {
                let v = argv.next().ok_or("--cluster-nodes needs a count")?;
                let n: usize = v.parse().map_err(|e| format!("bad --cluster-nodes: {e}"))?;
                if n == 0 {
                    return Err("--cluster-nodes must be at least 1".into());
                }
                args.cluster_nodes = Some(n);
            }
            "--replication" => {
                let v = argv.next().ok_or("--replication needs a count")?;
                args.replication = v.parse().map_err(|e| format!("bad --replication: {e}"))?;
                if args.replication == 0 {
                    return Err("--replication must be at least 1".into());
                }
            }
            "--peer-faults" => {
                let v = argv
                    .next()
                    .ok_or("--peer-faults needs a spec (e.g. rate=0.01,kinds=drop-pre+garbage)")?;
                let plan = FaultPlan::parse(&v).map_err(|e| format!("bad --peer-faults: {e}"))?;
                // Validate the kind restriction now so a bad spec fails
                // at the flag, not mid-run.
                PeerFaults::new(plan.clone()).map_err(|e| format!("bad --peer-faults: {e}"))?;
                args.peer_faults = Some(plan);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: loadgen [--target inproc|host:port] [--policy spec] \
                     [--shards n] [--clients n] [--requests n] [--clips n] \
                     [--theta f] [--ratio f] [--chunk-size mb] [--seed n|0xHEX] \
                     [--check-serial tol] \
                     [--wire text|binary] [--pipeline n] \
                     [--faults spec] [--retries n] [--backoff-ms n] [--max-backoff-ms n] \
                     [--chaos-report path|-] [--data-dir path] [--wal-sync always|off] \
                     [--commit-window-us n] [--segment-bytes n]\n\
                     \x20       [--peers a,b,c | --cluster-nodes n] [--replication r] \
                     [--peer-faults spec] [--kill-span node:from:to]\n\
                     --wire binary speaks length-prefixed frames; --pipeline n \
                     keeps n requests in flight per connection (clean TCP \
                     replays only; results are depth-invariant)\n\
                     --check-serial 0 demands bit-for-bit equality with the \
                     serial simulator (valid for --shards 1 --clients 1); \
                     tol > 0 allows that hit-rate deviation for sharded runs\n\
                     --faults rate=0.02,seed=7,kinds=drop-pre+drop-post+garbage+torn+poison \
                     injects a deterministic fault schedule recovered by \
                     --retries (default 4) with jitter-free exponential \
                     backoff from --backoff-ms (default 0), capped at \
                     --max-backoff-ms\n\
                     --peers ring-routes GETs across a running TCP cluster \
                     (same member order, --seed and --replication as the \
                     servers); --cluster-nodes n builds an in-process n-node \
                     cluster, --peer-faults injects \
                     drop-pre/drop-post/garbage on its peer wire, and \
                     --kill-span node:from:to (repeatable, --clients 1) \
                     kills and revives a node at exact request counts"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.data_dir.is_some() && args.target != "inproc" {
        return Err(
            "--data-dir only applies to --target inproc (persist the server instead)".into(),
        );
    }
    if args.tuning != WalTuning::default() && args.data_dir.is_none() {
        return Err(
            "--commit-window-us / --segment-bytes need --data-dir (they tune the WAL)".into(),
        );
    }
    if !args.peers.is_empty() && args.cluster_nodes.is_some() {
        return Err("--peers (TCP cluster) and --cluster-nodes (in-process) are exclusive".into());
    }
    if !args.peers.is_empty() && args.target != "inproc" {
        return Err("--peers replaces --target; drop the --target flag".into());
    }
    let members = if !args.peers.is_empty() {
        Some(args.peers.len())
    } else {
        args.cluster_nodes
    };
    match members {
        Some(n) if args.replication > n => {
            return Err(format!(
                "--replication {} exceeds the {n} cluster member(s)",
                args.replication
            ));
        }
        None => {
            if args.replication != 1 {
                return Err("--replication needs --peers or --cluster-nodes".into());
            }
            if args.peer_faults.is_some() {
                return Err("--peer-faults needs --cluster-nodes (in-process peer wire)".into());
            }
        }
        _ => {}
    }
    if args.peer_faults.is_some() && args.cluster_nodes.is_none() {
        return Err("--peer-faults needs --cluster-nodes (in-process peer wire)".into());
    }
    if !args.kill_spans.is_empty() {
        let Some(n) = args.cluster_nodes else {
            return Err("--kill-span needs --cluster-nodes (in-process harness)".into());
        };
        for &(node, _, _) in &args.kill_spans {
            if node >= n {
                return Err(format!("--kill-span node {node} exceeds the {n} cluster node(s)"));
            }
        }
        if args.clients != 1 {
            return Err(
                "--kill-span needs --clients 1: the schedule is keyed on the \
                 harness's global request counter, which only a single client \
                 reaches deterministically"
                    .into(),
            );
        }
    }
    if members.is_some() {
        if args.data_dir.is_some() {
            return Err("--data-dir does not apply to cluster targets".into());
        }
        if args.pipeline > 1 {
            return Err(
                "--pipeline cannot be combined with cluster targets: ring routing \
                 picks a connection per clip, so there is no single pipe to batch into"
                    .into(),
            );
        }
    }
    if args.faults.is_some() && args.pipeline > 1 {
        return Err(
            "--pipeline cannot be combined with --faults: chaos replays run \
             request-at-a-time so every injected fault is attributable to exactly \
             one request; drop --pipeline (or the --faults spec)"
                .into(),
        );
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut repo = paper::variable_sized_repository_of(args.clips);
    if args.chunk_mb > 0 {
        repo = repo.with_chunk_size(clipcache_media::ByteSize::mb(args.chunk_mb));
    }
    let repo = Arc::new(repo);
    let capacity = repo.cache_capacity_for_ratio(args.ratio);
    let trace = Trace::from_generator(RequestGenerator::new(
        args.clips,
        args.theta,
        0,
        args.requests,
        args.seed,
    ));

    let config = ServiceConfig::new(args.policy, args.shards, capacity, args.seed);
    // Whether the durable service recovered prior state: server-side
    // counters then include a previous run's requests and cannot be
    // compared against this run's client-observed counters.
    let mut warm_start = false;
    let standalone_inproc =
        args.target == "inproc" && args.peers.is_empty() && args.cluster_nodes.is_none();
    let service = if standalone_inproc {
        let built = match &args.data_dir {
            Some(dir) => {
                let opts = PersistOptions {
                    dir: dir.clone(),
                    sync: args.wal_sync,
                    crash: args.faults.as_ref().and_then(|p| p.crash()),
                    on_crash: CrashAction::ExitProcess,
                    tuning: args.tuning,
                };
                CacheService::open_persistent(Arc::clone(&repo), config, None, &opts)
                    .map(|(s, report)| {
                        warm_start = report.checkpoints_loaded > 0 || report.replayed > 0;
                        println!(
                            "recovered {} (checkpoints={} wal_replayed={} torn_bytes_dropped={})",
                            dir.display(),
                            report.checkpoints_loaded,
                            report.replayed,
                            report.torn_bytes_dropped
                        );
                        s
                    })
                    .map_err(|e| e.to_string())
            }
            None => CacheService::new(Arc::clone(&repo), config, None).map_err(|e| e.to_string()),
        };
        match built {
            Ok(s) => Some(Arc::new(s)),
            Err(e) => {
                eprintln!("cannot build service: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    // The in-process cluster harness, when --cluster-nodes asked for
    // one. Node i runs its own full-capacity service seeded seed+i
    // (distinct shard seeds per node; node 0 of a 1-node cluster is
    // exactly the standalone service, preserving the serial anchor).
    let harness = match args.cluster_nodes {
        Some(n) => {
            let mut services = Vec::with_capacity(n);
            for i in 0..n {
                let config = ServiceConfig::new(
                    args.policy,
                    args.shards,
                    capacity,
                    args.seed.wrapping_add(i as u64),
                );
                match CacheService::new(Arc::clone(&repo), config, None) {
                    Ok(s) => services.push(Arc::new(s)),
                    Err(e) => {
                        eprintln!("cannot build cluster node {i}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let mut h = ClusterHarness::new(args.seed, args.replication, services);
            if let Some(plan) = &args.peer_faults {
                h.set_faults(Some(
                    PeerFaults::new(plan.clone()).expect("validated at parse"),
                ));
            }
            for &(node, from, to) in &args.kill_spans {
                h.schedule_kill(node, from);
                h.schedule_revive(node, to);
            }
            Some(Arc::new(std::sync::Mutex::new(h)))
        }
        None => None,
    };
    let target = if let Some(harness) = &harness {
        Target::Cluster(Arc::clone(harness))
    } else if !args.peers.is_empty() {
        Target::ClusterTcp(ClusterRoute {
            peers: args.peers.clone(),
            replication: args.replication,
            seed: args.seed,
        })
    } else {
        match &service {
            Some(s) => Target::InProcess(Arc::clone(s)),
            None => Target::Tcp(args.target.clone()),
        }
    };

    let options = LoadOptions {
        clients: args.clients,
        faults: args.faults.clone(),
        retry: args.retry,
        read_timeout: None,
        wire: args.wire,
        pipeline: args.pipeline,
    };
    let report = match run_load_with(&target, &repo, &trace, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("load run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let lat = &report.latency;
    let us = |n: u64| n as f64 / 1_000.0;
    println!(
        "requests={} clients={} shards={} policy={}",
        report.observed.requests(),
        report.clients,
        args.shards,
        args.policy.spelling()
    );
    println!(
        "hit_rate={:.6} byte_hit_rate={:.6} evictions={}",
        report.observed.hit_rate(),
        report.observed.byte_hit_rate(),
        report.observed.evictions
    );
    println!(
        "elapsed={:.3}s throughput={:.0} req/s",
        report.elapsed_secs,
        report.throughput()
    );
    println!(
        "latency_us mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
        lat.mean_nanos() / 1_000.0,
        us(lat.percentile_nanos(0.5)),
        us(lat.percentile_nanos(0.95)),
        us(lat.percentile_nanos(0.99)),
        us(lat.max_nanos())
    );
    if args.faults.is_some() {
        let c = &report.chaos;
        println!(
            "chaos injected={} (drop_pre={} drop_post={} garbage={} torn={} poison={}) \
             retries={} reconnects={} err_replies={} recoveries={}",
            c.injected(),
            c.drops_before,
            c.drops_after,
            c.garbage,
            c.torn,
            c.poisons,
            c.retries,
            c.reconnects,
            c.err_replies,
            report.recoveries
        );
        // The delivery invariants: every request's reply reached its
        // client exactly once, and each was recorded exactly once.
        if report.chaos.delivered != args.requests {
            eprintln!(
                "chaos invariant FAILED: delivered {} of {} requests",
                report.chaos.delivered, args.requests
            );
            return ExitCode::FAILURE;
        }
        if !report.conserved() {
            eprintln!("chaos invariant FAILED: hits + misses != delivered");
            return ExitCode::FAILURE;
        }
        println!(
            "chaos invariants hold: delivered={} exactly once",
            c.delivered
        );
    } else if let Some(service) = &service {
        // Clean runs only: under chaos, duplicate processing (lost
        // replies) and checkpoint rewinds (poison recovery) legitimately
        // shift the server-side counters, so the client-observed side is
        // the authoritative one. A warm durable start also skips: the
        // recovered counters include a previous run's requests.
        if !warm_start {
            let server_side = service.stats();
            // Chunked runs: the GET wire reports whole-clip outcomes, so
            // the client's byte split cannot see prefix refinements (the
            // server splits resident head from streamed tail and counts
            // prefix_hits). The event-level counters must still agree.
            let agrees = if args.chunk_mb == 0 {
                server_side == report.observed
            } else {
                server_side.hits == report.observed.hits
                    && server_side.misses == report.observed.misses
                    && server_side.evictions == report.observed.evictions
            };
            if !agrees {
                eprintln!("server-side stats disagree with client-observed stats");
                return ExitCode::FAILURE;
            }
        }
    }
    // The cluster block: harness counters are deterministic and
    // wall-clock-free, so they print with the summary and extend the
    // byte-stable chaos report.
    let cluster_lines = harness.as_ref().map(|h| {
        let h = h.lock().expect("cluster harness poisoned");
        let stats = h.stats();
        if !stats.conservation_ok() {
            eprintln!("cluster invariant FAILED: delivered != local + peer + miss");
        }
        (h.chaos_lines(), stats.conservation_ok())
    });
    if let Some((lines, ok)) = &cluster_lines {
        print!("{lines}");
        if !ok {
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.chaos_report {
        let mut rendered = report.chaos_report();
        if let Some((lines, _)) = &cluster_lines {
            rendered.push_str(lines);
        }
        if path == "-" {
            print!("{rendered}");
        } else if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("cannot write chaos report to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(tol) = args.check_serial {
        let baseline = serial_baseline(&repo, args.policy, capacity, args.seed, &trace);
        if tol == 0.0 {
            // On chunked runs the authoritative bit-for-bit comparand is
            // the server-side stats (they carry the prefix byte split the
            // GET wire cannot); the client still pins the event counters.
            let matched = match (&service, args.chunk_mb) {
                (_, 0) => report.observed == baseline,
                (Some(s), _) => s.stats() == baseline,
                (None, _) => {
                    report.observed.hits == baseline.hits
                        && report.observed.misses == baseline.misses
                        && report.observed.evictions == baseline.evictions
                }
            };
            if !matched {
                eprintln!(
                    "serial check FAILED: observed {:?} != serial {:?}",
                    report.observed, baseline
                );
                return ExitCode::FAILURE;
            }
            println!("serial check passed: bit-for-bit equal");
        } else {
            let delta = (report.observed.hit_rate() - baseline.hit_rate()).abs();
            if delta > tol {
                eprintln!(
                    "serial check FAILED: hit rate {:.6} vs serial {:.6} (|Δ|={:.6} > {tol})",
                    report.observed.hit_rate(),
                    baseline.hit_rate(),
                    delta
                );
                return ExitCode::FAILURE;
            }
            println!(
                "serial check passed: hit rate {:.6} vs serial {:.6} (|Δ|={:.6} ≤ {tol})",
                report.observed.hit_rate(),
                baseline.hit_rate(),
                delta
            );
        }
    }
    ExitCode::SUCCESS
}
