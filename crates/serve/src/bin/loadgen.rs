//! `loadgen` — closed-loop load harness for the sharded cache service.
//!
//! ```text
//! loadgen [--target inproc|host:port] [--policy spec] [--shards n]
//!         [--clients n] [--requests n] [--clips n] [--theta f]
//!         [--ratio f] [--seed n|0xHEX] [--check-serial tol]
//! ```
//!
//! Replays a seeded Zipf trace from `--clients` closed-loop threads
//! against the in-process service (`--target inproc`, the default) or a
//! running `serve` front-end, then reports hit rate, throughput and
//! latency percentiles.
//!
//! `--check-serial tol` compares the run's hit statistics against the
//! serial simulator replaying the same trace (policy seeded like shard 0
//! of the service). With `tol 0` the counters must match **bit for
//! bit** — the honest setting for 1 shard + 1 client, where the service
//! is provably the serial simulator. With `tol > 0` the hit rates must
//! agree within `tol` — the setting for multi-shard runs, whose split
//! capacity changes cache state. When the target is TCP, pass the same
//! `--policy/--shards/--clips/--ratio/--seed` the server was started
//! with so the baseline matches.

use clipcache_media::paper;
use clipcache_serve::{run_load, serial_baseline, CacheService, ServiceConfig, Target};
use clipcache_workload::{RequestGenerator, Trace};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    target: String,
    policy: clipcache_core::PolicySpec,
    shards: usize,
    clients: usize,
    requests: u64,
    clips: usize,
    theta: f64,
    ratio: f64,
    seed: u64,
    check_serial: Option<f64>,
}

/// Parse a seed as decimal or `0x`-prefixed hex (matches `repro`).
fn parse_u64(v: &str) -> Result<u64, String> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).map_err(|e| e.to_string()),
        None => v
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string()),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        target: "inproc".into(),
        policy: clipcache_core::PolicyKind::Lru.into(),
        shards: 4,
        clients: 4,
        requests: 100_000,
        clips: 100,
        theta: 0.27,
        ratio: 0.25,
        seed: 0x5EED_2007,
        check_serial: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--target" => args.target = argv.next().ok_or("--target needs inproc or host:port")?,
            "--policy" => {
                let v = argv.next().ok_or("--policy needs a spec")?;
                args.policy = v.parse()?;
            }
            "--shards" => {
                let v = argv.next().ok_or("--shards needs a count")?;
                args.shards = v.parse().map_err(|e| format!("bad --shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--clients" => {
                let v = argv.next().ok_or("--clients needs a count")?;
                args.clients = v.parse().map_err(|e| format!("bad --clients: {e}"))?;
                if args.clients == 0 {
                    return Err("--clients must be at least 1".into());
                }
            }
            "--requests" => {
                let v = argv.next().ok_or("--requests needs a count")?;
                args.requests = v.parse().map_err(|e| format!("bad --requests: {e}"))?;
            }
            "--clips" => {
                let v = argv.next().ok_or("--clips needs a count")?;
                args.clips = v.parse().map_err(|e| format!("bad --clips: {e}"))?;
            }
            "--theta" => {
                let v = argv.next().ok_or("--theta needs a value")?;
                args.theta = v.parse().map_err(|e| format!("bad --theta: {e}"))?;
            }
            "--ratio" => {
                let v = argv.next().ok_or("--ratio needs a fraction")?;
                args.ratio = v.parse().map_err(|e| format!("bad --ratio: {e}"))?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                args.seed = parse_u64(&v).map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--check-serial" => {
                let v = argv.next().ok_or("--check-serial needs a tolerance")?;
                let tol: f64 = v.parse().map_err(|e| format!("bad --check-serial: {e}"))?;
                if !(0.0..=1.0).contains(&tol) {
                    return Err("--check-serial tolerance must be in [0, 1]".into());
                }
                args.check_serial = Some(tol);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: loadgen [--target inproc|host:port] [--policy spec] \
                     [--shards n] [--clients n] [--requests n] [--clips n] \
                     [--theta f] [--ratio f] [--seed n|0xHEX] [--check-serial tol]\n\
                     --check-serial 0 demands bit-for-bit equality with the \
                     serial simulator (valid for --shards 1 --clients 1); \
                     tol > 0 allows that hit-rate deviation for sharded runs"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let repo = Arc::new(paper::variable_sized_repository_of(args.clips));
    let capacity = repo.cache_capacity_for_ratio(args.ratio);
    let trace = Trace::from_generator(RequestGenerator::new(
        args.clips,
        args.theta,
        0,
        args.requests,
        args.seed,
    ));

    let service = if args.target == "inproc" {
        match CacheService::new(
            Arc::clone(&repo),
            ServiceConfig {
                policy: args.policy,
                shards: args.shards,
                capacity,
                seed: args.seed,
            },
            None,
        ) {
            Ok(s) => Some(Arc::new(s)),
            Err(e) => {
                eprintln!("cannot build service: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let target = match &service {
        Some(s) => Target::InProcess(Arc::clone(s)),
        None => Target::Tcp(args.target.clone()),
    };

    let report = match run_load(&target, &repo, &trace, args.clients) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("load run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let lat = &report.latency;
    let us = |n: u64| n as f64 / 1_000.0;
    println!(
        "requests={} clients={} shards={} policy={}",
        report.observed.requests(),
        report.clients,
        args.shards,
        args.policy.spelling()
    );
    println!(
        "hit_rate={:.6} byte_hit_rate={:.6} evictions={}",
        report.observed.hit_rate(),
        report.observed.byte_hit_rate(),
        report.observed.evictions
    );
    println!(
        "elapsed={:.3}s throughput={:.0} req/s",
        report.elapsed_secs,
        report.throughput()
    );
    println!(
        "latency_us mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
        lat.mean_nanos() / 1_000.0,
        us(lat.percentile_nanos(0.5)),
        us(lat.percentile_nanos(0.95)),
        us(lat.percentile_nanos(0.99)),
        us(lat.max_nanos())
    );
    if let Some(service) = &service {
        let server_side = service.stats();
        if server_side != report.observed {
            eprintln!("server-side stats disagree with client-observed stats");
            return ExitCode::FAILURE;
        }
    }

    if let Some(tol) = args.check_serial {
        let baseline = serial_baseline(&repo, args.policy, capacity, args.seed, &trace);
        if tol == 0.0 {
            if report.observed != baseline {
                eprintln!(
                    "serial check FAILED: observed {:?} != serial {:?}",
                    report.observed, baseline
                );
                return ExitCode::FAILURE;
            }
            println!("serial check passed: bit-for-bit equal");
        } else {
            let delta = (report.observed.hit_rate() - baseline.hit_rate()).abs();
            if delta > tol {
                eprintln!(
                    "serial check FAILED: hit rate {:.6} vs serial {:.6} (|Δ|={:.6} > {tol})",
                    report.observed.hit_rate(),
                    baseline.hit_rate(),
                    delta
                );
                return ExitCode::FAILURE;
            }
            println!(
                "serial check passed: hit rate {:.6} vs serial {:.6} (|Δ|={:.6} ≤ {tol})",
                report.observed.hit_rate(),
                baseline.hit_rate(),
                delta
            );
        }
    }
    ExitCode::SUCCESS
}
