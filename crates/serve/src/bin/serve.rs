//! `serve` — run the sharded cache service behind a TCP front-end.
//!
//! ```text
//! serve [--addr host:port] [--policy spec] [--shards n] [--clips n]
//!       [--ratio f] [--seed n|0xHEX] [--max-conns n]
//!       [--read-timeout ms] [--chaos]
//!       [--data-dir path] [--wal-sync always|off]
//!       [--checkpoint-every n] [--crash-at kind:N]
//!       [--cluster i --peers a,b,c [--replication r] [--peer-timeout ms]
//!        [--peer-connect-timeout ms] [--peer-read-timeout ms]]
//! ```
//!
//! Binds, prints `listening on <addr>`, then serves the line protocol
//! (`GET <clip>`, `STATS`, `SNAPSHOT`, `QUIT`) until stdin reaches EOF
//! or a `quit` line arrives on stdin — the graceful-shutdown path CI
//! exercises by driving stdin through a FIFO. The repository is the
//! paper's variable-sized catalog of `--clips` clips; `--ratio` sets the
//! total cache budget as a fraction of the repository, split evenly
//! across `--shards` shards.
//!
//! Resilience knobs: `--max-conns` refuses connections beyond the limit
//! with `ERR server busy`; `--read-timeout` reclaims connections idle
//! for that many milliseconds with `ERR idle timeout`; `--chaos` honors
//! the `POISON` fault-injection command (refused otherwise).
//!
//! Durability knobs: `--data-dir` persists every shard (checkpoint +
//! WAL) beneath the given directory and recovers whatever a previous
//! process made durable before listening; `--wal-sync` picks the fsync
//! policy (`off` flushes to the OS per append — survives `kill -9`;
//! `always` adds an fsync — survives power loss); `--checkpoint-every`
//! sets the accesses between checkpoint refreshes; `--crash-at`
//! (requires `--data-dir`) arms a deterministic crash point
//! (`append:N`, `torn:N`, `checkpoint:N`) that kills the process with
//! exit code 137 — the chaos harness's crash-restart loop.
//!
//! Cluster knobs: `--cluster i` makes this process member `i` of a
//! static membership given by `--peers` (a comma-separated address
//! list, self included, identical on every member); `--replication r`
//! sets the replica count per clip (default 1). Members peer-fetch
//! missed clips from the clip's other ring owners (`PEERGET`) before
//! reporting a miss, after a `VERSION` handshake that refuses skewed
//! peers by name. `--peer-connect-timeout` and `--peer-read-timeout`
//! bound the two halves of each peer probe in milliseconds — a slow or
//! mutually-busy peer degrades to a timed-out probe (served as a miss),
//! never a deadlock; `--peer-timeout` is the coarse alias that sets
//! both, and the specific flags override it. If `--addr` is not given,
//! a cluster member binds its own `--peers` entry.

use clipcache_media::paper;
use clipcache_serve::{
    serve_with, CacheService, ClusterSpec, CrashAction, CrashSpec, PersistOptions, ServerConfig,
    ServiceConfig, WalSync, WalTuning,
};
use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: Option<String>,
    policy: clipcache_core::PolicySpec,
    shards: usize,
    clips: usize,
    ratio: f64,
    chunk_mb: u64,
    seed: u64,
    server: ServerConfig,
    data_dir: Option<std::path::PathBuf>,
    wal_sync: WalSync,
    tuning: WalTuning,
    checkpoint_every: Option<u64>,
    crash_at: Option<CrashSpec>,
    cluster: Option<usize>,
    peers: Vec<String>,
    replication: usize,
    peer_timeout: Option<Duration>,
    peer_connect_timeout: Option<Duration>,
    peer_read_timeout: Option<Duration>,
}

/// Parse a peer-timeout flag value as whole milliseconds (at least 1).
fn parse_timeout_ms(flag: &str, v: &str) -> Result<Duration, String> {
    let ms: u64 = v.parse().map_err(|e| format!("bad {flag}: {e}"))?;
    if ms == 0 {
        return Err(format!("{flag} must be at least 1 ms"));
    }
    Ok(Duration::from_millis(ms))
}

/// Parse a seed as decimal or `0x`-prefixed hex (matches `repro`).
fn parse_u64(v: &str) -> Result<u64, String> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).map_err(|e| e.to_string()),
        None => v
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string()),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        policy: clipcache_core::PolicyKind::Lru.into(),
        shards: 4,
        clips: 100,
        ratio: 0.25,
        chunk_mb: 0,
        seed: 0x5EED_2007,
        server: ServerConfig::default(),
        data_dir: None,
        wal_sync: WalSync::default(),
        tuning: WalTuning::default(),
        checkpoint_every: None,
        crash_at: None,
        cluster: None,
        peers: Vec::new(),
        replication: 1,
        peer_timeout: None,
        peer_connect_timeout: None,
        peer_read_timeout: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => args.addr = Some(argv.next().ok_or("--addr needs host:port")?),
            "--policy" => {
                let v = argv.next().ok_or("--policy needs a spec")?;
                args.policy = v.parse()?;
            }
            "--shards" => {
                let v = argv.next().ok_or("--shards needs a count")?;
                args.shards = v.parse().map_err(|e| format!("bad --shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--clips" => {
                let v = argv.next().ok_or("--clips needs a count")?;
                args.clips = v.parse().map_err(|e| format!("bad --clips: {e}"))?;
            }
            "--ratio" => {
                let v = argv.next().ok_or("--ratio needs a fraction")?;
                args.ratio = v.parse().map_err(|e| format!("bad --ratio: {e}"))?;
            }
            "--chunk-size" => {
                let v = argv
                    .next()
                    .ok_or("--chunk-size needs megabytes (0 = whole-clip)")?;
                args.chunk_mb = v.parse().map_err(|e| format!("bad --chunk-size: {e}"))?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                args.seed = parse_u64(&v).map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--max-conns" => {
                let v = argv.next().ok_or("--max-conns needs a count")?;
                let n: usize = v.parse().map_err(|e| format!("bad --max-conns: {e}"))?;
                if n == 0 {
                    return Err("--max-conns must be at least 1".into());
                }
                args.server.max_conns = Some(n);
            }
            "--read-timeout" => {
                let v = argv.next().ok_or("--read-timeout needs milliseconds")?;
                let ms: u64 = v.parse().map_err(|e| format!("bad --read-timeout: {e}"))?;
                if ms == 0 {
                    return Err("--read-timeout must be at least 1 ms".into());
                }
                args.server.read_timeout = Some(Duration::from_millis(ms));
            }
            "--chaos" => args.server.chaos = true,
            "--data-dir" => {
                let v = argv.next().ok_or("--data-dir needs a path")?;
                args.data_dir = Some(std::path::PathBuf::from(v));
            }
            "--wal-sync" => {
                let v = argv.next().ok_or("--wal-sync needs always or off")?;
                args.wal_sync = WalSync::parse(&v)?;
            }
            "--commit-window-us" => {
                let v = argv
                    .next()
                    .ok_or("--commit-window-us needs microseconds (0 = fsync per record)")?;
                let us: u64 = v
                    .parse()
                    .map_err(|e| format!("bad --commit-window-us: {e}"))?;
                args.tuning.commit_window = Duration::from_micros(us);
            }
            "--segment-bytes" => {
                let v = argv.next().ok_or("--segment-bytes needs a byte count")?;
                let n: u64 = v.parse().map_err(|e| format!("bad --segment-bytes: {e}"))?;
                if n == 0 {
                    return Err("--segment-bytes must be at least 1".into());
                }
                args.tuning.segment_bytes = n;
            }
            "--checkpoint-every" => {
                let v = argv.next().ok_or("--checkpoint-every needs a count")?;
                let n: u64 = v
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                if n == 0 {
                    return Err("--checkpoint-every must be at least 1".into());
                }
                args.checkpoint_every = Some(n);
            }
            "--crash-at" => {
                let v = argv.next().ok_or("--crash-at needs kind:N")?;
                args.crash_at = Some(CrashSpec::parse(&v)?);
            }
            "--cluster" => {
                let v = argv.next().ok_or("--cluster needs this node's index")?;
                args.cluster = Some(v.parse().map_err(|e| format!("bad --cluster: {e}"))?);
            }
            "--peers" => {
                let v = argv
                    .next()
                    .ok_or("--peers needs a comma-separated address list")?;
                args.peers = v
                    .split(',')
                    .map(|a| a.trim().to_string())
                    .filter(|a| !a.is_empty())
                    .collect();
                if args.peers.is_empty() {
                    return Err("--peers needs at least one address".into());
                }
            }
            "--replication" => {
                let v = argv.next().ok_or("--replication needs a count")?;
                args.replication = v.parse().map_err(|e| format!("bad --replication: {e}"))?;
                if args.replication == 0 {
                    return Err("--replication must be at least 1".into());
                }
            }
            "--peer-timeout" => {
                let v = argv.next().ok_or("--peer-timeout needs milliseconds")?;
                args.peer_timeout = Some(parse_timeout_ms("--peer-timeout", &v)?);
            }
            "--peer-connect-timeout" => {
                let v = argv
                    .next()
                    .ok_or("--peer-connect-timeout needs milliseconds")?;
                args.peer_connect_timeout = Some(parse_timeout_ms("--peer-connect-timeout", &v)?);
            }
            "--peer-read-timeout" => {
                let v = argv
                    .next()
                    .ok_or("--peer-read-timeout needs milliseconds")?;
                args.peer_read_timeout = Some(parse_timeout_ms("--peer-read-timeout", &v)?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: serve [--addr host:port] [--policy spec] [--shards n] \
                     [--clips n] [--ratio f] [--chunk-size mb] [--seed n|0xHEX] \
                     [--max-conns n] \
                     [--read-timeout ms] [--chaos] [--data-dir path] \
                     [--wal-sync always|off] [--commit-window-us n] \
                     [--segment-bytes n] [--checkpoint-every n] [--crash-at kind:N]\n\
                     \x20      [--cluster i --peers a,b,c [--replication r] \
                     [--peer-timeout ms] [--peer-connect-timeout ms] \
                     [--peer-read-timeout ms]]\n\
                     serves until stdin closes or reads a `quit` line;\n\
                     --chunk-size n addresses clips as n-MB chunks (prefix \
                     residency + GETRANGE probes; 0 = whole-clip, the default);\n\
                     --max-conns refuses excess connections with ERR server busy,\n\
                     --read-timeout reclaims idle connections, --chaos honors POISON;\n\
                     --data-dir makes every shard durable (checkpoint + segmented\n\
                     WAL) and recovers previous state on start; --commit-window-us\n\
                     batches concurrent WAL fsyncs under --wal-sync always (0 =\n\
                     one fsync per record), --segment-bytes sets the WAL\n\
                     segment-roll threshold; --crash-at arms a deterministic crash\n\
                     point (append:N, torn:N, checkpoint:N, seal:N,\n\
                     segment-roll:N);\n\
                     --cluster i joins the static membership in --peers (same list\n\
                     and --seed on every member) as member i, peer-filling misses\n\
                     from the clip's other ring owners at --replication r;\n\
                     --peer-timeout bounds each peer probe (sets both the\n\
                     connect and read bounds); --peer-connect-timeout /\n\
                     --peer-read-timeout set one side and override the alias"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.crash_at.is_some() && args.data_dir.is_none() {
        return Err("--crash-at needs --data-dir (crash points live in the durable store)".into());
    }
    if args.tuning != WalTuning::default() && args.data_dir.is_none() {
        return Err(
            "--commit-window-us / --segment-bytes need --data-dir (they tune the WAL)".into(),
        );
    }
    match args.cluster {
        Some(me) => {
            let mut spec = ClusterSpec::new(args.peers.clone(), me, args.replication, args.seed)?;
            // `--peer-timeout` is the coarse alias: it sets both bounds.
            // The specific flags override whichever side they name.
            if let Some(timeout) = args.peer_timeout {
                spec.connect_timeout = timeout;
                spec.read_timeout = timeout;
            }
            if let Some(timeout) = args.peer_connect_timeout {
                spec.connect_timeout = timeout;
            }
            if let Some(timeout) = args.peer_read_timeout {
                spec.read_timeout = timeout;
            }
            args.server.cluster = Some(spec);
        }
        None => {
            if !args.peers.is_empty() {
                return Err("--peers needs --cluster (this node's member index)".into());
            }
            if args.replication != 1 {
                return Err("--replication needs --cluster".into());
            }
            if args.peer_timeout.is_some() {
                return Err("--peer-timeout needs --cluster".into());
            }
            if args.peer_connect_timeout.is_some() {
                return Err("--peer-connect-timeout needs --cluster".into());
            }
            if args.peer_read_timeout.is_some() {
                return Err("--peer-read-timeout needs --cluster".into());
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut repo = paper::variable_sized_repository_of(args.clips);
    if args.chunk_mb > 0 {
        repo = repo.with_chunk_size(clipcache_media::ByteSize::mb(args.chunk_mb));
    }
    let repo = Arc::new(repo);
    let capacity = repo.cache_capacity_for_ratio(args.ratio);
    let mut config = ServiceConfig::new(args.policy, args.shards, capacity, args.seed);
    if let Some(every) = args.checkpoint_every {
        config = config.with_checkpoint_every(every);
    }
    let service = match &args.data_dir {
        Some(dir) => {
            let opts = PersistOptions {
                dir: dir.clone(),
                sync: args.wal_sync,
                crash: args.crash_at,
                on_crash: CrashAction::ExitProcess,
                tuning: args.tuning,
            };
            match CacheService::open_persistent(Arc::clone(&repo), config, None, &opts) {
                Ok((s, report)) => {
                    println!(
                        "recovered {} (checkpoints={} wal_replayed={} torn_bytes_dropped={})",
                        dir.display(),
                        report.checkpoints_loaded,
                        report.replayed,
                        report.torn_bytes_dropped
                    );
                    Arc::new(s)
                }
                Err(e) => {
                    eprintln!("cannot open data dir {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        None => match CacheService::new(Arc::clone(&repo), config, None) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("cannot build service: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    // A cluster member defaults to binding its own membership entry;
    // a standalone server keeps the ephemeral-port default.
    let addr = args
        .addr
        .clone()
        .unwrap_or_else(|| match &args.server.cluster {
            Some(spec) => spec.peers[spec.me].clone(),
            None => "127.0.0.1:0".into(),
        });
    let cluster = args.server.cluster.clone();
    let handle = match serve_with(service, &addr, args.server) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(spec) = &cluster {
        println!(
            "cluster member {}/{} (replication {})",
            spec.me,
            spec.peers.len(),
            spec.replication
        );
    }
    println!(
        "listening on {} ({} shards, {} policy, {} clips, {} bytes)",
        handle.addr(),
        args.shards,
        args.policy.spelling(),
        args.clips,
        capacity.as_u64()
    );

    // Serve until stdin closes or says quit, then drain gracefully.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    handle.shutdown();
    println!("shut down cleanly");
    ExitCode::SUCCESS
}
