//! `walbench` — the durable write path's performance envelope: what the
//! group-commit window buys, and what segmented recovery costs.
//!
//! ```text
//! walbench [--requests n] [--threads n] [--windows a,b,c]
//!          [--histories a,b,c] [--segment-bytes n] [--clips n] [--seed n]
//!          [--out path] [--check baseline.json] [--tolerance f]
//!          [--recovery-factor f]
//! ```
//!
//! Two sweeps, both over real disks and real fsyncs:
//!
//! * **commit cells** — acked-durable throughput under `--wal-sync
//!   always` for each `--commit-window-us` value: `--threads` workers
//!   drive a persistent in-process [`CacheService`] and every reply
//!   waits for its record's batched fsync. Window 0 is the
//!   one-fsync-per-record path; wider windows let concurrent requests
//!   ride one fsync. The default sweep samples the rising region of
//!   the curve — with a closed-loop load the batch saturates at the
//!   worker count, so past ~100 µs the curve plateaus (and wobbles
//!   with scheduler jitter) rather than keeps climbing.
//! * **recovery cells** — wall-clock reopen time versus WAL history,
//!   with and without a covering checkpoint. Without one, replay work
//!   grows with the log; with one, the checkpoint subsumes every
//!   segment and recovery stays flat no matter how long the history.
//!
//! The report *shape* is deterministic (same cells, same keys); the
//! wall-clock numbers vary run to run, which is why this is a serve
//! binary and not a `repro` figure. `--check baseline.json` turns the
//! run into a gate: it fails (exit 1) if any commit cell's throughput
//! drops more than `--tolerance` (default 0.50 — fsync timing on
//! shared runners is noisy) below the committed baseline, or any
//! recovery cell exceeds the baseline's by more than
//! `--recovery-factor` (default 10×). CI runs this against
//! `results/wal/BENCH_wal.json`.

use clipcache_core::snapshot::CacheSnapshot;
use clipcache_core::PolicyKind;
use clipcache_media::{paper, ByteSize, ClipId};
use clipcache_serve::persist::{DurableCheckpoint, ShardStore, WalOp, WalSync, WalTuning};
use clipcache_serve::{CacheService, PersistOptions, ServiceConfig};
use clipcache_sim::metrics::HitStats;
use clipcache_workload::{json, Timestamp};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    requests: u64,
    threads: usize,
    windows: Vec<u64>,
    histories: Vec<u64>,
    segment_bytes: u64,
    clips: usize,
    seed: u64,
    out: Option<String>,
    check: Option<String>,
    tolerance: f64,
    recovery_factor: f64,
}

fn parse_list(v: &str, flag: &str) -> Result<Vec<u64>, String> {
    let list: Result<Vec<u64>, _> = v.split(',').map(|s| s.trim().parse()).collect();
    match list {
        Ok(l) if !l.is_empty() => Ok(l),
        _ => Err(format!("bad {flag}: need a comma list of counts")),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 16_000,
        threads: 4,
        windows: vec![0, 50, 100],
        histories: vec![10_000, 40_000],
        segment_bytes: 256 * 1024,
        clips: 24,
        seed: 0x5EED_2009,
        out: None,
        check: None,
        tolerance: 0.50,
        recovery_factor: 10.0,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--requests" => {
                let v = argv.next().ok_or("--requests needs a count")?;
                args.requests = v.parse().map_err(|e| format!("bad --requests: {e}"))?;
            }
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a count")?;
                args.threads = v.parse().map_err(|e| format!("bad --threads: {e}"))?;
                if args.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--windows" => {
                let v = argv.next().ok_or("--windows needs a comma list (µs)")?;
                args.windows = parse_list(&v, "--windows")?;
            }
            "--histories" => {
                let v = argv.next().ok_or("--histories needs a comma list")?;
                args.histories = parse_list(&v, "--histories")?;
            }
            "--segment-bytes" => {
                let v = argv.next().ok_or("--segment-bytes needs a size")?;
                args.segment_bytes = v.parse().map_err(|e| format!("bad --segment-bytes: {e}"))?;
                if args.segment_bytes == 0 {
                    return Err("--segment-bytes must be at least 1".into());
                }
            }
            "--clips" => {
                let v = argv.next().ok_or("--clips needs a count")?;
                args.clips = v.parse().map_err(|e| format!("bad --clips: {e}"))?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => args.out = Some(argv.next().ok_or("--out needs a path")?),
            "--check" => args.check = Some(argv.next().ok_or("--check needs a baseline path")?),
            "--tolerance" => {
                let v = argv.next().ok_or("--tolerance needs a fraction")?;
                args.tolerance = v.parse().map_err(|e| format!("bad --tolerance: {e}"))?;
                if !(0.0..1.0).contains(&args.tolerance) {
                    return Err("--tolerance must be in [0, 1)".into());
                }
            }
            "--recovery-factor" => {
                let v = argv.next().ok_or("--recovery-factor needs a factor")?;
                args.recovery_factor = v
                    .parse()
                    .map_err(|e| format!("bad --recovery-factor: {e}"))?;
                if args.recovery_factor < 1.0 {
                    return Err("--recovery-factor must be at least 1".into());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: walbench [--requests n] [--threads n] [--windows a,b,c] \
                     [--histories a,b,c] [--segment-bytes n] [--clips n] [--seed n] \
                     [--out path] [--check baseline.json] [--tolerance f] \
                     [--recovery-factor f]\n\
                     Measures acked-durable throughput per --commit-window-us value \
                     (concurrent workers, --wal-sync always) and recovery wall-clock \
                     per WAL history length (with/without a covering checkpoint); \
                     --check gates against a committed baseline"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

struct CommitCell {
    window_us: u64,
    throughput_rps: f64,
}

struct RecoveryCell {
    history: u64,
    checkpointed: bool,
    recovery_ms: f64,
    replayed: u64,
    segments: u64,
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clipcache-walbench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One commit cell: the best of three trials, each `threads` workers
/// hammering a persistent service with `--wal-sync always` and the
/// given batch window; every acked reply waited for a durable fsync.
/// Best-of-N because fsync scheduling on shared machines is noisy and
/// the cell measures the path's capability, not one run's luck.
fn run_commit_cell(args: &Args, window_us: u64) -> Result<CommitCell, String> {
    let mut best = 0.0f64;
    for trial in 0..3 {
        let cell = run_commit_trial(args, window_us, trial)?;
        best = best.max(cell);
    }
    Ok(CommitCell {
        window_us,
        throughput_rps: best,
    })
}

/// One timed trial of a commit cell; returns acked-durable req/s.
fn run_commit_trial(args: &Args, window_us: u64, trial: u32) -> Result<f64, String> {
    let dir = scratch(&format!("commit-{window_us}-{trial}"));
    let repo = Arc::new(paper::equi_sized_repository_of(
        args.clips,
        ByteSize::mb(10),
    ));
    let config = ServiceConfig::new(
        PolicyKind::Lru,
        1,
        ByteSize::mb(10 * args.clips as u64),
        args.seed,
    )
    .with_checkpoint_every(u64::MAX);
    let opts = PersistOptions {
        dir: dir.clone(),
        sync: WalSync::Always,
        crash: None,
        on_crash: clipcache_serve::CrashAction::Surface,
        tuning: WalTuning {
            segment_bytes: args.segment_bytes,
            commit_window: Duration::from_micros(window_us),
        },
    };
    let (service, _) = CacheService::open_persistent(Arc::clone(&repo), config, None, &opts)
        .map_err(|e| format!("cannot open durable service: {e}"))?;
    let service = Arc::new(service);
    let per_thread = args.requests / args.threads as u64;
    let clips = args.clips as u32;
    let started = Instant::now();
    let workers: Vec<_> = (0..args.threads)
        .map(|w| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || -> Result<(), String> {
                for i in 0..per_thread {
                    let clip = ClipId::new(((i * 7 + w as u64 * 3) % clips as u64) as u32 + 1);
                    service
                        .get(clip)
                        .map_err(|e| format!("worker {w} request {i}: {e}"))?;
                }
                Ok(())
            })
        })
        .collect();
    for worker in workers {
        worker.join().map_err(|_| "worker panicked".to_string())??;
    }
    let elapsed = started.elapsed();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
    let acked = per_thread * args.threads as u64;
    Ok(acked as f64 / elapsed.as_secs_f64())
}

/// A checkpoint covering through `seq`, over a throwaway cache — only
/// its `seq` matters to the recovery scan.
fn checkpoint_at(seq: u64) -> DurableCheckpoint {
    let repo = Arc::new(paper::equi_sized_repository_of(4, ByteSize::mb(1)));
    let cache = PolicyKind::Lru.build(repo, ByteSize::mb(4), 1, None);
    DurableCheckpoint {
        snapshot: CacheSnapshot::take(cache.as_ref(), PolicyKind::Lru, Timestamp(seq)),
        stats: HitStats::new(),
        seq,
    }
}

/// One recovery cell: build a `history`-record segmented log at the
/// store level, optionally checkpoint it, and time the reopen.
fn run_recovery_cell(
    args: &Args,
    history: u64,
    checkpointed: bool,
) -> Result<RecoveryCell, String> {
    let dir = scratch(&format!("recover-{history}-{checkpointed}"));
    let tuning = WalTuning {
        segment_bytes: args.segment_bytes,
        commit_window: Duration::ZERO,
    };
    {
        let (mut store, _) = ShardStore::open_tuned(&dir, WalSync::Off, tuning)
            .map_err(|e| format!("cannot create store: {e}"))?;
        for i in 1..=history {
            store
                .append(WalOp::Get, ClipId::new((i % args.clips as u64) as u32 + 1))
                .map_err(|e| format!("append {i}: {e}"))?;
        }
        if checkpointed {
            store
                .checkpoint(&checkpoint_at(history))
                .map_err(|e| format!("checkpoint: {e}"))?;
        }
    }
    let started = Instant::now();
    let (store, state) = ShardStore::open_tuned(&dir, WalSync::Off, tuning)
        .map_err(|e| format!("recovery open: {e}"))?;
    let elapsed = started.elapsed();
    let (oldest, newest) = store.segment_span();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(RecoveryCell {
        history,
        checkpointed,
        recovery_ms: elapsed.as_secs_f64() * 1_000.0,
        replayed: state.records.len() as u64,
        segments: newest - oldest + 1,
    })
}

/// Render the report. Keys and cell order are deterministic; only the
/// measured values vary.
fn render(args: &Args, commits: &[CommitCell], recoveries: &[RecoveryCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"walbench\",\n  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"requests\": {}, \"threads\": {}, \"segment_bytes\": {}, \"seed\": {},\n",
        args.requests, args.threads, args.segment_bytes, args.seed
    ));
    out.push_str("  \"commit_cells\": [\n");
    for (i, c) in commits.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"window_us\": {}, \"throughput_rps\": {:.0}}}{}\n",
            c.window_us,
            c.throughput_rps,
            if i + 1 < commits.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"recovery_cells\": [\n");
    for (i, c) in recoveries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"history\": {}, \"checkpointed\": {}, \"recovery_ms\": {:.2}, \
             \"replayed\": {}, \"segments\": {}}}{}\n",
            c.history,
            c.checkpointed,
            c.recovery_ms,
            c.replayed,
            c.segments,
            if i + 1 < recoveries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compare measured cells against a committed baseline.
fn check(
    commits: &[CommitCell],
    recoveries: &[RecoveryCell],
    baseline: &json::Json,
    tolerance: f64,
    recovery_factor: f64,
) -> Result<(), String> {
    let base_commits = baseline
        .get("commit_cells")
        .and_then(|c| c.as_array())
        .ok_or("baseline has no commit_cells array")?;
    for base in base_commits {
        let window = base
            .get("window_us")
            .and_then(|v| v.as_u64())
            .ok_or("baseline commit cell missing window_us")?;
        let base_tp = base
            .get("throughput_rps")
            .and_then(|v| v.as_f64())
            .ok_or("baseline commit cell missing throughput_rps")?;
        let Some(cell) = commits.iter().find(|c| c.window_us == window) else {
            return Err(format!(
                "baseline commit cell window_us={window} was not measured \
                 (pass a matching --windows)"
            ));
        };
        let floor = base_tp * (1.0 - tolerance);
        if cell.throughput_rps < floor {
            return Err(format!(
                "REGRESSION window_us={window}: acked-durable {:.0} req/s fell \
                 below {floor:.0} (baseline {base_tp:.0}, tolerance {tolerance})",
                cell.throughput_rps
            ));
        }
        println!(
            "ok window_us={window}: {:.0} req/s (baseline {base_tp:.0})",
            cell.throughput_rps
        );
    }
    let base_recoveries = baseline
        .get("recovery_cells")
        .and_then(|c| c.as_array())
        .ok_or("baseline has no recovery_cells array")?;
    for base in base_recoveries {
        let history = base
            .get("history")
            .and_then(|v| v.as_u64())
            .ok_or("baseline recovery cell missing history")?;
        let checkpointed = matches!(base.get("checkpointed"), Some(json::Json::Bool(true)));
        let base_ms = base
            .get("recovery_ms")
            .and_then(|v| v.as_f64())
            .ok_or("baseline recovery cell missing recovery_ms")?;
        let Some(cell) = recoveries
            .iter()
            .find(|c| c.history == history && c.checkpointed == checkpointed)
        else {
            return Err(format!(
                "baseline recovery cell history={history} checkpointed={checkpointed} \
                 was not measured (pass a matching --histories)"
            ));
        };
        // Floor the ceiling at 50 ms: sub-millisecond baselines would
        // otherwise gate on scheduler noise.
        let ceiling = (base_ms * recovery_factor).max(50.0);
        if cell.recovery_ms > ceiling {
            return Err(format!(
                "REGRESSION history={history} checkpointed={checkpointed}: recovery \
                 took {:.2} ms, past {ceiling:.2} ms ({recovery_factor}× baseline \
                 {base_ms:.2})",
                cell.recovery_ms
            ));
        }
        println!(
            "ok history={history} checkpointed={checkpointed}: {:.2} ms \
             (baseline {base_ms:.2}), replayed {}",
            cell.recovery_ms, cell.replayed
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut commits = Vec::new();
    for &window_us in &args.windows {
        match run_commit_cell(&args, window_us) {
            Ok(cell) => {
                eprintln!(
                    "commit window_us={window_us}: {:.0} acked-durable req/s",
                    cell.throughput_rps
                );
                commits.push(cell);
            }
            Err(e) => {
                eprintln!("commit cell window_us={window_us} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut recoveries = Vec::new();
    for &history in &args.histories {
        for checkpointed in [false, true] {
            match run_recovery_cell(&args, history, checkpointed) {
                Ok(cell) => {
                    eprintln!(
                        "recovery history={history} checkpointed={checkpointed}: \
                         {:.2} ms, replayed {}, {} segment(s)",
                        cell.recovery_ms, cell.replayed, cell.segments
                    );
                    recoveries.push(cell);
                }
                Err(e) => {
                    eprintln!("recovery cell history={history} failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let rendered = render(&args, &commits, &recoveries);
    match &args.out {
        Some(path) => {
            if let Some(parent) = std::path::Path::new(path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{rendered}"),
    }

    if let Some(baseline_path) = &args.check {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("cannot parse baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(msg) = check(
            &commits,
            &recoveries,
            &baseline,
            args.tolerance,
            args.recovery_factor,
        ) {
            eprintln!("perf gate FAILED: {msg}");
            return ExitCode::FAILURE;
        }
        println!("perf gate passed");
    }
    ExitCode::SUCCESS
}
