//! `netbench` — the front-end's performance envelope, and the CI perf
//! gate that keeps it from regressing.
//!
//! ```text
//! netbench [--requests n] [--clips n] [--theta f] [--ratio f]
//!          [--seed n|0xHEX] [--shards n] [--depths a,b,c] [--conns a,b,c]
//!          [--out path] [--check baseline.json] [--tolerance f]
//!          [--p99-factor f]
//! ```
//!
//! Starts an in-process epoll server on an ephemeral loopback port and
//! sweeps the binary pipelined loadgen over every `pipeline depth ×
//! connection count` cell, reporting throughput and latency percentiles
//! per cell as JSON. The report *shape* is deterministic (same cells,
//! same keys, same request counts, hit rates bit-stable per cell config)
//! — only the wall-clock numbers vary run to run, which is why this is
//! a serve binary and not a `repro` figure (those are byte-identical).
//!
//! `--check baseline.json` turns the run into a gate: it fails (exit 1)
//! if any cell's throughput drops more than `--tolerance` (default
//! 0.30) below the committed baseline, or its p99 exceeds the
//! baseline's by more than `--p99-factor` (default 10× — generous
//! because shared CI runners have noisy tails; the throughput bound is
//! the tight one). CI runs this against `results/net/BENCH_net.json`.

use clipcache_media::paper;
use clipcache_serve::{
    run_load_with, serve, CacheService, LoadOptions, ServiceConfig, Target, Wire,
};
use clipcache_workload::{json, RequestGenerator, Trace};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    requests: u64,
    clips: usize,
    theta: f64,
    ratio: f64,
    seed: u64,
    shards: usize,
    depths: Vec<usize>,
    conns: Vec<usize>,
    out: Option<String>,
    check: Option<String>,
    tolerance: f64,
    p99_factor: f64,
}

fn parse_u64(v: &str) -> Result<u64, String> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).map_err(|e| e.to_string()),
        None => v
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string()),
    }
}

fn parse_list(v: &str, flag: &str) -> Result<Vec<usize>, String> {
    let list: Result<Vec<usize>, _> = v.split(',').map(|s| s.trim().parse()).collect();
    match list {
        Ok(l) if !l.is_empty() && l.iter().all(|&n| n > 0) => Ok(l),
        _ => Err(format!("bad {flag}: need a comma list of positive counts")),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 200_000,
        clips: 100,
        theta: 0.27,
        ratio: 0.25,
        seed: 0x5EED_2007,
        shards: 4,
        depths: vec![1, 8, 32],
        conns: vec![1, 4],
        out: None,
        check: None,
        tolerance: 0.30,
        p99_factor: 10.0,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--requests" => {
                let v = argv.next().ok_or("--requests needs a count")?;
                args.requests = v.parse().map_err(|e| format!("bad --requests: {e}"))?;
            }
            "--clips" => {
                let v = argv.next().ok_or("--clips needs a count")?;
                args.clips = v.parse().map_err(|e| format!("bad --clips: {e}"))?;
            }
            "--theta" => {
                let v = argv.next().ok_or("--theta needs a value")?;
                args.theta = v.parse().map_err(|e| format!("bad --theta: {e}"))?;
            }
            "--ratio" => {
                let v = argv.next().ok_or("--ratio needs a fraction")?;
                args.ratio = v.parse().map_err(|e| format!("bad --ratio: {e}"))?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                args.seed = parse_u64(&v).map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--shards" => {
                let v = argv.next().ok_or("--shards needs a count")?;
                args.shards = v.parse().map_err(|e| format!("bad --shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--depths" => {
                let v = argv.next().ok_or("--depths needs a comma list")?;
                args.depths = parse_list(&v, "--depths")?;
            }
            "--conns" => {
                let v = argv.next().ok_or("--conns needs a comma list")?;
                args.conns = parse_list(&v, "--conns")?;
            }
            "--out" => args.out = Some(argv.next().ok_or("--out needs a path")?),
            "--check" => args.check = Some(argv.next().ok_or("--check needs a baseline path")?),
            "--tolerance" => {
                let v = argv.next().ok_or("--tolerance needs a fraction")?;
                args.tolerance = v.parse().map_err(|e| format!("bad --tolerance: {e}"))?;
                if !(0.0..1.0).contains(&args.tolerance) {
                    return Err("--tolerance must be in [0, 1)".into());
                }
            }
            "--p99-factor" => {
                let v = argv.next().ok_or("--p99-factor needs a factor")?;
                args.p99_factor = v.parse().map_err(|e| format!("bad --p99-factor: {e}"))?;
                if args.p99_factor < 1.0 {
                    return Err("--p99-factor must be at least 1".into());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: netbench [--requests n] [--clips n] [--theta f] [--ratio f] \
                     [--seed n|0xHEX] [--shards n] [--depths a,b,c] [--conns a,b,c] \
                     [--out path] [--check baseline.json] [--tolerance f] [--p99-factor f]\n\
                     Sweeps the binary pipelined loadgen over pipeline-depth × \
                     connection-count cells against an in-process epoll server on \
                     loopback; --check gates against a committed baseline \
                     (fail on throughput drop > tolerance or p99 > factor × baseline)"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

struct Cell {
    depth: usize,
    conns: usize,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    hit_rate: f64,
}

/// Render the report. Keys and cell order are deterministic; only the
/// measured values vary.
fn render(args: &Args, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"netbench\",\n  \"version\": 1,\n");
    out.push_str("  \"wire\": \"binary\",\n");
    out.push_str(&format!(
        "  \"requests\": {}, \"clips\": {}, \"shards\": {}, \"seed\": {},\n",
        args.requests, args.clips, args.shards, args.seed
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"depth\": {}, \"conns\": {}, \"throughput_rps\": {:.0}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"hit_rate\": {:.6}}}{}\n",
            c.depth,
            c.conns,
            c.throughput_rps,
            c.p50_us,
            c.p99_us,
            c.hit_rate,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compare measured cells against a committed baseline.
fn check(
    cells: &[Cell],
    baseline: &json::Json,
    tolerance: f64,
    p99_factor: f64,
) -> Result<(), String> {
    let base_cells = baseline
        .get("cells")
        .and_then(|c| c.as_array())
        .ok_or("baseline has no cells array")?;
    for base in base_cells {
        let depth = base
            .get("depth")
            .and_then(|v| v.as_u64())
            .ok_or("baseline cell missing depth")? as usize;
        let conns = base
            .get("conns")
            .and_then(|v| v.as_u64())
            .ok_or("baseline cell missing conns")? as usize;
        let base_tp = base
            .get("throughput_rps")
            .and_then(|v| v.as_f64())
            .ok_or("baseline cell missing throughput_rps")?;
        let base_p99 = base
            .get("p99_us")
            .and_then(|v| v.as_f64())
            .ok_or("baseline cell missing p99_us")?;
        let Some(cell) = cells.iter().find(|c| c.depth == depth && c.conns == conns) else {
            return Err(format!(
                "baseline cell depth={depth} conns={conns} was not measured \
                 (pass matching --depths/--conns)"
            ));
        };
        let floor = base_tp * (1.0 - tolerance);
        if cell.throughput_rps < floor {
            return Err(format!(
                "REGRESSION depth={depth} conns={conns}: throughput {:.0} req/s \
                 fell below {floor:.0} (baseline {base_tp:.0}, tolerance {tolerance})",
                cell.throughput_rps
            ));
        }
        let ceiling = base_p99 * p99_factor;
        if cell.p99_us > ceiling {
            return Err(format!(
                "REGRESSION depth={depth} conns={conns}: p99 {:.1} µs blew past \
                 {ceiling:.1} µs ({p99_factor}× baseline {base_p99:.1})",
                cell.p99_us
            ));
        }
        println!(
            "ok depth={depth} conns={conns}: {:.0} req/s (baseline {base_tp:.0}), \
             p99 {:.1} µs (baseline {base_p99:.1})",
            cell.throughput_rps, cell.p99_us
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let repo = Arc::new(paper::variable_sized_repository_of(args.clips));
    let capacity = repo.cache_capacity_for_ratio(args.ratio);
    let trace = Trace::from_generator(RequestGenerator::new(
        args.clips,
        args.theta,
        0,
        args.requests,
        args.seed,
    ));

    let mut cells = Vec::new();
    for &conns in &args.conns {
        for &depth in &args.depths {
            // A fresh service per cell: every cell replays the same
            // trace from cold, so per-cell hit rates depend only on
            // (trace, shards, conns-partitioning) — deterministic.
            let service = match CacheService::new(
                Arc::clone(&repo),
                ServiceConfig::new(
                    clipcache_core::PolicySpec::from(clipcache_core::PolicyKind::Lru),
                    args.shards,
                    capacity,
                    args.seed,
                ),
                None,
            ) {
                Ok(s) => Arc::new(s),
                Err(e) => {
                    eprintln!("cannot build service: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let handle = match serve(service, "127.0.0.1:0") {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("cannot start server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let target = Target::Tcp(handle.addr().to_string());
            let options = LoadOptions {
                clients: conns,
                wire: Wire::Binary,
                pipeline: depth,
                ..LoadOptions::default()
            };
            let report = match run_load_with(&target, &repo, &trace, &options) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("cell depth={depth} conns={conns} failed: {e}");
                    handle.shutdown();
                    return ExitCode::FAILURE;
                }
            };
            handle.shutdown();
            eprintln!(
                "cell depth={depth} conns={conns}: {:.0} req/s p99={:.1}us",
                report.throughput(),
                report.latency.percentile_nanos(0.99) as f64 / 1_000.0
            );
            cells.push(Cell {
                depth,
                conns,
                throughput_rps: report.throughput(),
                p50_us: report.latency.percentile_nanos(0.5) as f64 / 1_000.0,
                p99_us: report.latency.percentile_nanos(0.99) as f64 / 1_000.0,
                hit_rate: report.observed.hit_rate(),
            });
        }
    }

    let rendered = render(&args, &cells);
    match &args.out {
        Some(path) => {
            if let Some(parent) = std::path::Path::new(path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{rendered}"),
    }

    if let Some(baseline_path) = &args.check {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("cannot parse baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(msg) = check(&cells, &baseline, args.tolerance, args.p99_factor) {
            eprintln!("perf gate FAILED: {msg}");
            return ExitCode::FAILURE;
        }
        println!("perf gate passed");
    }
    ExitCode::SUCCESS
}
