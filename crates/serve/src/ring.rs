//! Deterministic consistent-hash ring for the cluster tier.
//!
//! Placement must be a *pure function* of `(seed, membership, clip)` —
//! the same discipline shard selection follows (`shard::shard_of`) —
//! so every client and every node computes identical routing without a
//! coordination service, and a replayed trace routes identically at any
//! `--jobs` level and in any process. The ring therefore derives every
//! point from [`splitmix64`]: node `n`
//! contributes `vnodes` points at
//! `splitmix64(splitmix64(seed ^ RING_SALT) ^ (n << 32 | v))`, and a
//! clip hashes to `splitmix64(mixed_seed ^ clip)`, landing on the first
//! point clockwise.
//!
//! Vnodes exist because clip popularity is Zipf-like (PAPERS.md): with
//! one point per node, the arc lengths — and under a skewed trace, the
//! *request* shares — vary wildly. With the default
//! [`DEFAULT_VNODES`] points per node the per-node key share stays
//! within a small factor of `1/N` (pinned by `tests/ring_props.rs`).
//!
//! Replication walks the ring clockwise from the primary point
//! collecting *distinct* nodes: [`HashRing::owners`] returns the `R`
//! replicas in deterministic priority order. Membership is static (a
//! `--peers` list shared by every member); removing or adding one node
//! moves only the keys whose owner set involved that node — the
//! minimal-movement property the proptests pin.

use crate::shard::splitmix64;

/// Vnode count per node when the caller does not choose one. 64 points
/// keeps the balance factor under ~1.5 on Zipf traces (see
/// `tests/ring_props.rs`) while ring construction stays trivially cheap
/// for the single-digit node counts the cluster tier targets.
pub const DEFAULT_VNODES: usize = 64;

/// Salt folded into the ring seed so ring hashing can never collide
/// with shard selection or fault-plan hashing derived from the same
/// user seed.
const RING_SALT: u64 = 0xC1A5_7E12_0000_0008;

/// A deterministic consistent-hash ring over `nodes` members.
///
/// The ring is immutable: membership changes build a new ring (the
/// membership list is static configuration, not a gossip protocol).
/// Construction sorts the vnode points once; lookups are a binary
/// search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(point, node)` sorted by point; ties broken by node index so
    /// construction order can never leak into placement.
    points: Vec<(u64, usize)>,
    nodes: usize,
    vnodes: usize,
    seed: u64,
}

impl HashRing {
    /// A ring over `nodes` members with [`DEFAULT_VNODES`] points each.
    ///
    /// # Panics
    /// If `nodes` is zero.
    pub fn new(seed: u64, nodes: usize) -> Self {
        HashRing::with_vnodes(seed, nodes, DEFAULT_VNODES)
    }

    /// A ring with an explicit vnode count per node.
    ///
    /// # Panics
    /// If `nodes` or `vnodes` is zero.
    pub fn with_vnodes(seed: u64, nodes: usize, vnodes: usize) -> Self {
        assert!(nodes > 0, "a ring needs at least one node");
        assert!(vnodes > 0, "a ring needs at least one vnode per node");
        let mixed = splitmix64(seed ^ RING_SALT);
        let mut points = Vec::with_capacity(nodes * vnodes);
        for node in 0..nodes {
            for v in 0..vnodes {
                let point = splitmix64(mixed ^ (((node as u64) << 32) | v as u64));
                points.push((point, node));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            nodes,
            vnodes,
            seed,
        }
    }

    /// The member count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Vnode points per node.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The seed the ring was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Where `key` lands on the ring (index into `points`).
    fn point_of(&self, key: u64) -> usize {
        let h = splitmix64(splitmix64(self.seed ^ RING_SALT) ^ key);
        // First point at or after the hash, wrapping at the top.
        match self.points.binary_search(&(h, usize::MAX)) {
            Ok(i) | Err(i) => i % self.points.len(),
        }
    }

    /// The primary owner of `key`.
    pub fn node_of(&self, key: u64) -> usize {
        self.points[self.point_of(key)].1
    }

    /// The first `replicas` *distinct* nodes clockwise from `key`'s
    /// point — the replica set, primary first. `replicas` is clamped to
    /// the member count, so asking for more replicas than nodes returns
    /// every node (in ring order).
    pub fn owners(&self, key: u64, replicas: usize) -> Vec<usize> {
        let want = replicas.clamp(1, self.nodes);
        let start = self.point_of(key);
        let mut owners = Vec::with_capacity(want);
        for i in 0..self.points.len() {
            let node = self.points[(start + i) % self.points.len()].1;
            if !owners.contains(&node) {
                owners.push(node);
                if owners.len() == want {
                    break;
                }
            }
        }
        owners
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_is_deterministic_and_order_free() {
        let a = HashRing::new(7, 5);
        let b = HashRing::new(7, 5);
        assert_eq!(a, b);
        // A different seed is a different ring.
        assert_ne!(a, HashRing::new(8, 5));
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = HashRing::new(0x5EED_2007, 1);
        for key in 0..1_000u64 {
            assert_eq!(ring.node_of(key), 0);
            assert_eq!(ring.owners(key, 1), vec![0]);
            // Over-asking is clamped, never panics.
            assert_eq!(ring.owners(key, 3), vec![0]);
        }
    }

    #[test]
    fn owners_are_distinct_primary_first() {
        let ring = HashRing::new(42, 5);
        for key in 0..2_000u64 {
            let owners = ring.owners(key, 3);
            assert_eq!(owners.len(), 3);
            assert_eq!(owners[0], ring.node_of(key));
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "owners must be distinct: {owners:?}");
        }
    }

    #[test]
    fn full_replication_reaches_every_node() {
        let ring = HashRing::new(9, 4);
        for key in 0..64u64 {
            let mut owners = ring.owners(key, 4);
            owners.sort_unstable();
            assert_eq!(owners, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn every_node_owns_some_keys() {
        let ring = HashRing::new(0x5EED_2007, 8);
        let mut counts = vec![0u64; 8];
        for key in 0..10_000u64 {
            counts[ring.node_of(key)] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "some node owns nothing: {counts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = HashRing::new(0, 0);
    }
}
