//! Durable per-shard cache state: checkpoints plus a segmented,
//! group-committed write-ahead log.
//!
//! The paper's whole argument is that a cache hit means the clip
//! survives disconnection — which is only true if the cache itself
//! survives a crash. This module makes a shard's state durable with the
//! classic checkpoint + WAL pairing:
//!
//! * **Checkpoint** — a [`DurableCheckpoint`] file holding the shard's
//!   [`CacheSnapshot`] (resident set, policy, capacity, virtual clock),
//!   its [`HitStats`] and the WAL sequence number it covers, serialized
//!   through the hand-rolled `workload::json` codec (serde is stubbed
//!   offline). Checkpoints are written atomically: full tmp file, fsync,
//!   rename — a crash mid-checkpoint leaves the previous checkpoint
//!   intact.
//! * **WAL** — an append-only log of every access since the last
//!   checkpoint, kept as fixed-size numbered **segments**
//!   (`wal.000001.log`, `wal.000002.log`, …). Each record is
//!   length-prefixed and CRC-framed ([`crc32`] over the length *and*
//!   payload, so a corrupted length cannot masquerade as a valid
//!   frame). Recovery replays the log through the shard's zero-alloc
//!   `access_into` path.
//!
//! ## Segments
//!
//! Every segment starts with a 24-byte header (magic, [`WAL_VERSION`],
//! its own segment number — so a renamed file or a version-skewed log
//! is refused by name, never reinterpreted). Exactly one segment is
//! *active* (appended to); once it reaches `--segment-bytes` it is
//! **sealed** — a [`SEAL_MARK`] footer naming the last sequence number
//! and a CRC over *every* byte of the segment is fsynced onto the end —
//! and a fresh successor segment is created. Sealed segments are
//! immutable and fully durable; a single flipped bit anywhere in one
//! fails the footer CRC loudly. A checkpoint subsumes all of them, so
//! checkpointing deletes the sealed segments outright and truncates the
//! active segment back to its bare header: disk usage and replay cost
//! stay bounded no matter how long the shard runs.
//!
//! ## Group commit
//!
//! With `--wal-sync always` and a nonzero commit window, an append
//! writes its frame and returns a [`CommitTicket`] instead of paying a
//! private fsync. The caller releases the shard lock, then waits on the
//! ticket: the first waiter becomes the *leader*, gives later appends
//! up to the window to pile in (leaving early once the queue
//! quiesces), then issues **one** fsync that makes every rider durable
//! at once. A request is acknowledged only after its batch lands — an
//! acked request is still a durable request, the batching only changes
//! *when* the fsync happens, never what bytes reach the disk. A zero
//! window is exactly the old behavior: one inline fsync per record,
//! byte-identical on disk.
//!
//! ## The recovery contract
//!
//! [`ShardStore::open`] loads the newest valid checkpoint and decodes
//! the segments oldest-to-newest, tolerating exactly the artifacts a
//! crash can leave and refusing everything else:
//!
//! * a **torn tail** — the newest segment ends mid-frame (or
//!   mid-footer, or even mid-header), the signature of a crash during a
//!   write. The partial bytes are truncated away and recovery proceeds
//!   from the last complete record; the dropped byte count is reported,
//!   never hidden.
//! * a **subsumed prefix** — records (or whole sealed segments) with
//!   sequence numbers at or below the checkpoint's, the signature of a
//!   crash between the checkpoint rename and the segment cleanup. The
//!   checkpoint already folds them in, so they are skipped (and the
//!   interrupted cleanup finished), never replayed twice.
//! * a **sealed newest segment** — a crash in the roll window, after
//!   the seal fsync but before the successor segment was created.
//!   Recovery opens a fresh successor; nothing was lost.
//! * **corruption** — a complete frame whose CRC or length prefix does
//!   not match the fixed layout, a sequence break, a failed seal-footer
//!   CRC, a gap in the segment numbering, or a pre-segment single-file
//!   `wal.log`. That is bit rot or foul play, not a crash artifact, and
//!   recovery refuses loudly ([`PersistError::Corrupt`]) rather than
//!   replaying garbage.
//!
//! Recovery is deterministic: the same on-disk bytes produce the same
//! rebuilt shard, bit for bit, on every attempt — the crash-kill chaos
//! suite (`tests/crash_recovery.rs`) pins this by recovering twice from
//! copies of the same directory.
//!
//! ## Deterministic crash points
//!
//! A [`CrashSpec`] arms the store with a *crash point* — die after the
//! Nth WAL append, write only half of the Nth append (a torn write),
//! die midway through the Nth checkpoint, write only half of the Nth
//! seal footer (`seal:N`), or die after the Nth seal lands but before
//! the successor segment exists (`segment-roll:N`). The store performs
//! the partial effect, then reports [`PersistError::CrashInjected`];
//! the service maps that to `process::exit(137)` in the binaries
//! (`--crash-at`) or surfaces it to an in-process harness. Crash points
//! count operations performed *after* recovery, so a crash-restart loop
//! steps deterministically through the log.

use clipcache_core::snapshot::CacheSnapshot;
use clipcache_media::{ByteSize, ClipId};
use clipcache_sim::metrics::HitStats;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The single-file WAL name used before the log was segmented. Found
/// on disk it is refused by name — this build neither reads nor
/// silently migrates the old layout.
pub const LEGACY_WAL_FILE: &str = "wal.log";
/// The checkpoint file inside a shard's directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";
/// The scratch name a checkpoint is written to before the atomic rename.
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// The durable-checkpoint schema version this build writes and reads.
/// Version 2 added chunk-granular residency: the embedded snapshot
/// carries partial prefixes and the stats carry `prefix_hits`.
pub const CHECKPOINT_VERSION: u64 = 2;

/// The WAL record-layout version this build writes and replays.
/// Version 2 added the chunk field (17-byte payloads); version-1
/// records are rejected by name, never reinterpreted. Every segment
/// header carries this version, and peers compare it over the wire
/// (`VERSION`/`KIND_HELLO`) before cooperating.
pub const WAL_VERSION: u64 = 2;

/// Magic bytes opening every WAL segment header.
pub const SEGMENT_MAGIC: [u8; 8] = *b"CLIPWAL\0";
/// Bytes in a segment header: magic (8) + version (8) + segment no (8).
pub const SEGMENT_HEADER_BYTES: usize = 24;
/// Bytes in a seal footer: mark (4) + last seq (8) + CRC (4).
pub const SEGMENT_FOOTER_BYTES: usize = 16;
/// The length-field value that marks a seal footer instead of a record.
/// Record frames always declare the one fixed payload length, so the
/// mark can never be confused with a valid frame.
pub const SEAL_MARK: u32 = 0xFFFF_FFFF;
/// Default segment-roll threshold (`--segment-bytes`).
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

/// Bytes in one record's payload: seq (8) + clip (4) + chunk (4) + op (1).
/// Version 1 of the log had no chunk field (13-byte payloads); those
/// records are rejected by name, never reinterpreted.
const RECORD_PAYLOAD_BYTES: usize = 17;
/// The version-1 payload layout (seq + clip + op, no chunk), kept only
/// so the rejection message can name what it found.
const V1_RECORD_PAYLOAD_BYTES: usize = 13;
/// Bytes in one record's frame header: length (4) + CRC (4).
const FRAME_HEADER_BYTES: usize = 8;

/// How long a group-commit leader sleeps per poll while it waits for
/// more riders. Fixed (not a fraction of the window) so a larger
/// window never adds latency once the queue quiesces.
const COMMIT_SLICE: Duration = Duration::from_micros(50);

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `bytes` — the same
/// polynomial zlib and ethernet use, hand-rolled because the offline
/// build vendors no checksum crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Streaming CRC-32, so frames can be checked without copying the
/// length prefix and payload into one buffer, and the active segment
/// can keep a running digest for its eventual seal footer.
#[derive(Clone)]
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u32;
            for _ in 0..8 {
                let mask = (self.0 & 1).wrapping_neg();
                self.0 = (self.0 >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }

    fn finish(self) -> u32 {
        !self.0
    }
}

/// The file name of WAL segment `no` (1-based): `wal.000001.log`, …
pub fn segment_file_name(no: u64) -> String {
    format!("wal.{no:06}.log")
}

/// Parse a segment number back out of a `wal.NNNNNN.log` file name.
fn parse_segment_no(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal.")?.strip_suffix(".log")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The 24-byte header opening segment `no`: magic, [`WAL_VERSION`],
/// and the segment's own number (so a renamed or copied file is loud).
pub fn segment_header(no: u64) -> [u8; SEGMENT_HEADER_BYTES] {
    let mut h = [0u8; SEGMENT_HEADER_BYTES];
    h[..8].copy_from_slice(&SEGMENT_MAGIC);
    h[8..16].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[16..24].copy_from_slice(&no.to_le_bytes());
    h
}

/// The 16-byte seal footer for a segment whose on-disk bytes (header
/// plus frames) are `segment`: `SEAL_MARK ‖ last_seq ‖ crc`, with the
/// CRC taken over every preceding byte *including* the mark and seq —
/// one flipped bit anywhere in a sealed segment fails the check.
pub fn seal_footer(segment: &[u8], last_seq: u64) -> [u8; SEGMENT_FOOTER_BYTES] {
    let mut f = [0u8; SEGMENT_FOOTER_BYTES];
    f[..4].copy_from_slice(&SEAL_MARK.to_le_bytes());
    f[4..12].copy_from_slice(&last_seq.to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(segment);
    crc.update(&f[..12]);
    f[12..].copy_from_slice(&crc.finish().to_le_bytes());
    f
}

/// What a logged access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WalOp {
    /// A counted request (`Shard::get`): replay records hit statistics.
    Get,
    /// An uncounted warm-up (`Shard::admit`): replay touches the cache
    /// but not the statistics.
    Admit,
    /// A chunk-granular residency probe (`Shard::get_range`): the
    /// record's `chunk` field is meaningful; replay is a state no-op.
    GetRange,
}

impl WalOp {
    fn to_byte(self) -> u8 {
        match self {
            WalOp::Get => 0,
            WalOp::Admit => 1,
            WalOp::GetRange => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, String> {
        match b {
            0 => Ok(WalOp::Get),
            1 => Ok(WalOp::Admit),
            2 => Ok(WalOp::GetRange),
            other => Err(format!("unknown WAL op byte {other}")),
        }
    }
}

/// One logged access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WalRecord {
    /// Position in the shard's access stream (1-based, contiguous).
    pub seq: u64,
    /// The clip accessed.
    pub clip: ClipId,
    /// The probed chunk for [`WalOp::GetRange`]; 0 for whole-clip ops
    /// (and enforced 0 on decode, so a flipped bit is loud).
    pub chunk: u32,
    /// Whether the access was counted.
    pub op: WalOp,
}

impl WalRecord {
    /// Encode the record as one framed WAL entry:
    /// `len(4 LE) ‖ crc(4 LE) ‖ payload`, CRC over `len ‖ payload`.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = [0u8; RECORD_PAYLOAD_BYTES];
        payload[..8].copy_from_slice(&self.seq.to_le_bytes());
        payload[8..12].copy_from_slice(&self.clip.get().to_le_bytes());
        payload[12..16].copy_from_slice(&self.chunk.to_le_bytes());
        payload[16] = self.op.to_byte();
        let len = (RECORD_PAYLOAD_BYTES as u32).to_le_bytes();
        let mut crc = Crc32::new();
        crc.update(&len);
        crc.update(&payload);
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + RECORD_PAYLOAD_BYTES);
        frame.extend_from_slice(&len);
        frame.extend_from_slice(&crc.finish().to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }
}

/// How [`decode_wal`] found the end of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The log ends exactly on a frame boundary.
    Clean,
    /// The log ends mid-frame — a crash interrupted an append. The
    /// partial record is not replayed; `valid_bytes` is where the log
    /// should be truncated and `dropped_bytes` what the truncation
    /// discards.
    Torn {
        /// Bytes of complete, valid frames.
        valid_bytes: u64,
        /// Trailing bytes of the incomplete frame.
        dropped_bytes: u64,
    },
}

/// One step of frame decoding at `pos`.
enum FrameStep {
    /// A complete, valid record; the second field is the next position.
    Record(WalRecord, usize),
    /// The bytes end mid-frame: a torn write, not corruption.
    Torn,
}

/// Decode the frame starting at `pos`, validating length, CRC and
/// payload invariants. Absolute offsets (including any segment header
/// before the frames) land in the error messages unchanged.
fn decode_frame(bytes: &[u8], pos: usize) -> Result<FrameStep, PersistError> {
    let remaining = bytes.len() - pos;
    if remaining < 4 {
        return Ok(FrameStep::Torn);
    }
    let len_bytes = &bytes[pos..pos + 4];
    let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
    // The length field is the first thing an append writes, so a torn
    // write can truncate it but never leave it complete-and-wrong.
    // Records are fixed-size, so a complete length that is not the
    // one layout is corruption — trusting it would let a flipped bit
    // masquerade the rest of the log as a "torn tail" and silently
    // truncate valid frames after it.
    if len == V1_RECORD_PAYLOAD_BYTES {
        // A version-1 log (13-byte payloads: seq + clip + op, no
        // chunk field). Reinterpreting it under the version-2
        // layout would shear every field, so refuse by name.
        return Err(PersistError::Corrupt {
            offset: pos as u64,
            reason: format!(
                "WAL record uses the version-1 {V1_RECORD_PAYLOAD_BYTES}-byte \
                 whole-clip layout; this build reads only the version-2 \
                 {RECORD_PAYLOAD_BYTES}-byte chunk-aware layout — delete the \
                 old data directory (or replay it with a version-1 build) \
                 instead of mixing formats"
            ),
        });
    }
    if len != RECORD_PAYLOAD_BYTES {
        return Err(PersistError::Corrupt {
            offset: pos as u64,
            reason: format!(
                "WAL record length {len} is not the fixed \
                 {RECORD_PAYLOAD_BYTES}-byte layout"
            ),
        });
    }
    if remaining < FRAME_HEADER_BYTES || remaining - FRAME_HEADER_BYTES < len {
        // The frame promises more bytes than the file holds: an
        // append died mid-write.
        return Ok(FrameStep::Torn);
    }
    let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
    let payload = &bytes[pos + FRAME_HEADER_BYTES..pos + FRAME_HEADER_BYTES + len];
    let mut crc = Crc32::new();
    crc.update(len_bytes);
    crc.update(payload);
    if crc.finish() != stored_crc {
        return Err(PersistError::Corrupt {
            offset: pos as u64,
            reason: "WAL record CRC mismatch".into(),
        });
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let clip = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
    if clip == 0 {
        return Err(PersistError::Corrupt {
            offset: pos as u64,
            reason: "WAL record names clip id 0".into(),
        });
    }
    let chunk = u32::from_le_bytes(payload[12..16].try_into().expect("4 bytes"));
    let op = WalOp::from_byte(payload[16]).map_err(|reason| PersistError::Corrupt {
        offset: pos as u64,
        reason,
    })?;
    if op != WalOp::GetRange && chunk != 0 {
        return Err(PersistError::Corrupt {
            offset: pos as u64,
            reason: format!(
                "whole-clip WAL record carries nonzero chunk {chunk} (only \
                 GETRANGE records address chunks)"
            ),
        });
    }
    Ok(FrameStep::Record(
        WalRecord {
            seq,
            clip: ClipId::new(clip),
            chunk,
            op,
        },
        pos + FRAME_HEADER_BYTES + len,
    ))
}

/// Decode a bare WAL frame stream (no segment header) into records.
///
/// An *incomplete* final frame (fewer bytes than its header or declared
/// length promises) is a torn tail: the complete prefix is returned with
/// [`WalTail::Torn`]. A frame whose (fully present) length prefix is not
/// the fixed record layout, whose CRC fails, or that breaks anything
/// else is corruption and fails loudly — no record after the first
/// invalid byte is ever returned, no valid frame is ever silently
/// discarded as a "torn tail", and no invalid record is ever replayed.
pub fn decode_wal(bytes: &[u8]) -> Result<(Vec<WalRecord>, WalTail), PersistError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match decode_frame(bytes, pos)? {
            FrameStep::Record(record, next) => {
                records.push(record);
                pos = next;
            }
            FrameStep::Torn => {
                return Ok((
                    records,
                    WalTail::Torn {
                        valid_bytes: pos as u64,
                        dropped_bytes: (bytes.len() - pos) as u64,
                    },
                ));
            }
        }
    }
    Ok((records, WalTail::Clean))
}

/// How [`decode_segment`] found the end of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentEnd {
    /// No seal footer: the segment is (or was) the active one. The tail
    /// says whether it ends on a frame boundary or mid-write; a torn
    /// tail with `valid_bytes` shorter than the header means even the
    /// header never finished (a crash during segment creation).
    Unsealed(WalTail),
    /// A valid seal footer: the segment is immutable and fully durable.
    Sealed {
        /// The sequence number the footer names as the segment's last.
        last_seq: u64,
    },
}

/// Decode one on-disk segment (header, frames, optional seal footer).
///
/// `no` is the number the file name claims; the header must agree.
/// Torn artifacts (short header, mid-frame tail, partial footer) come
/// back as [`SegmentEnd::Unsealed`] with a torn tail for the caller to
/// truncate — only ever legitimate on the *newest* segment. Everything
/// else that fails validation is loud corruption, including a single
/// flipped bit anywhere in a sealed segment (the footer CRC covers
/// every byte).
pub fn decode_segment(bytes: &[u8], no: u64) -> Result<(Vec<WalRecord>, SegmentEnd), PersistError> {
    if bytes.len() < SEGMENT_HEADER_BYTES {
        // The segment was created but its header never finished: a
        // crash artifact, only tolerable on the newest segment.
        return Ok((
            Vec::new(),
            SegmentEnd::Unsealed(WalTail::Torn {
                valid_bytes: 0,
                dropped_bytes: bytes.len() as u64,
            }),
        ));
    }
    if bytes[..8] != SEGMENT_MAGIC {
        return Err(PersistError::Corrupt {
            offset: 0,
            reason: "segment header magic mismatch (not a clipcache WAL segment)".into(),
        });
    }
    let version = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if version != WAL_VERSION {
        return Err(PersistError::Corrupt {
            offset: 8,
            reason: format!(
                "segment header names WAL version {version}; this build reads \
                 only version {WAL_VERSION} (which added chunk-granular \
                 records) — replay the log with the build that wrote it \
                 instead of mixing formats"
            ),
        });
    }
    let header_no = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    if header_no != no {
        return Err(PersistError::Corrupt {
            offset: 16,
            reason: format!(
                "segment header names segment {header_no} but the file is \
                 named {} — renamed or copied?",
                segment_file_name(no)
            ),
        });
    }
    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER_BYTES;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok((records, SegmentEnd::Unsealed(WalTail::Clean)));
        }
        if remaining >= 4
            && u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) == SEAL_MARK
        {
            if remaining < SEGMENT_FOOTER_BYTES {
                // The seal itself tore: the records before it are fine,
                // the segment simply stays unsealed.
                return Ok((
                    records,
                    SegmentEnd::Unsealed(WalTail::Torn {
                        valid_bytes: pos as u64,
                        dropped_bytes: remaining as u64,
                    }),
                ));
            }
            let last_seq = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8"));
            let stored = u32::from_le_bytes(bytes[pos + 12..pos + 16].try_into().expect("4"));
            if crc32(&bytes[..pos + 12]) != stored {
                return Err(PersistError::Corrupt {
                    offset: pos as u64,
                    reason: "sealed segment CRC mismatch (a bit flipped somewhere \
                             in the segment)"
                        .into(),
                });
            }
            match records.last() {
                None => {
                    return Err(PersistError::Corrupt {
                        offset: pos as u64,
                        reason: "sealed segment holds no records".into(),
                    })
                }
                Some(r) if r.seq != last_seq => {
                    return Err(PersistError::Corrupt {
                        offset: pos as u64,
                        reason: format!(
                            "seal footer names last seq {last_seq} but the \
                             segment ends at seq {}",
                            r.seq
                        ),
                    })
                }
                Some(_) => {}
            }
            if remaining > SEGMENT_FOOTER_BYTES {
                return Err(PersistError::Corrupt {
                    offset: (pos + SEGMENT_FOOTER_BYTES) as u64,
                    reason: "bytes after the seal footer".into(),
                });
            }
            return Ok((records, SegmentEnd::Sealed { last_seq }));
        }
        match decode_frame(bytes, pos)? {
            FrameStep::Record(record, next) => {
                records.push(record);
                pos = next;
            }
            FrameStep::Torn => {
                return Ok((
                    records,
                    SegmentEnd::Unsealed(WalTail::Torn {
                        valid_bytes: pos as u64,
                        dropped_bytes: remaining as u64,
                    }),
                ));
            }
        }
    }
}

/// When appends reach the platter.
///
/// Either way every append is flushed to the *operating system* before
/// the call returns, so the log survives a killed process (`kill -9`);
/// the difference is whether it also survives a power failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSync {
    /// `fsync` before a request is acknowledged: survives power loss.
    /// With a zero commit window that is one fsync per append; with a
    /// nonzero window, concurrent appends share one batched fsync.
    Always,
    /// Flush to the OS page cache only (the default): survives process
    /// death, trusts the kernel for power loss. Checkpoints and seal
    /// footers still fsync.
    #[default]
    Off,
}

impl WalSync {
    /// Parse a `--wal-sync` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(WalSync::Always),
            "off" => Ok(WalSync::Off),
            other => Err(format!(
                "unknown --wal-sync '{other}' (expected always or off)"
            )),
        }
    }

    /// The canonical flag spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            WalSync::Always => "always",
            WalSync::Off => "off",
        }
    }
}

/// A deterministic crash point: where the process dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Die immediately after the Nth WAL append is durable (1-based).
    AfterAppend(u64),
    /// The Nth WAL append writes only half its frame, then the process
    /// dies — the canonical torn write.
    TornAppend(u64),
    /// Die midway through writing the Nth durable checkpoint (the tmp
    /// file is half-written; the rename never happens).
    MidCheckpoint(u64),
    /// The Nth seal writes only half its footer, then the process dies.
    /// Recovery truncates the partial footer; the segment stays active.
    TornSeal(u64),
    /// Die after the Nth seal footer is durable but before the
    /// successor segment is created — a crash in the roll window.
    /// Recovery finds the newest segment sealed and opens a successor.
    SegmentRoll(u64),
}

/// A parsed `--crash-at` spec. Counters start at zero when the store is
/// armed (after recovery), so a crash-restart loop steps forward
/// deterministically instead of re-dying at the same byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrashSpec {
    /// Where to die.
    pub point: CrashPoint,
}

impl CrashSpec {
    /// Parse `append:N`, `torn:N`, `checkpoint:N`, `seal:N` or
    /// `segment-roll:N` (N ≥ 1).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind, n) = spec
            .split_once(':')
            .ok_or_else(|| format!("crash spec '{spec}' is not kind:N"))?;
        let n: u64 = n
            .parse()
            .map_err(|_| format!("bad crash count '{n}' in '{spec}'"))?;
        if n == 0 {
            return Err("crash counts are 1-based; 0 never fires".into());
        }
        let point = match kind {
            "append" => CrashPoint::AfterAppend(n),
            "torn" => CrashPoint::TornAppend(n),
            "checkpoint" => CrashPoint::MidCheckpoint(n),
            "seal" => CrashPoint::TornSeal(n),
            "segment-roll" => CrashPoint::SegmentRoll(n),
            other => {
                return Err(format!(
                    "unknown crash point '{other}' (expected append, torn, \
                     checkpoint, seal or segment-roll)"
                ))
            }
        };
        Ok(CrashSpec { point })
    }

    /// The canonical spec spelling ([`parse`](Self::parse) inverts it).
    pub fn spelling(&self) -> String {
        match self.point {
            CrashPoint::AfterAppend(n) => format!("append:{n}"),
            CrashPoint::TornAppend(n) => format!("torn:{n}"),
            CrashPoint::MidCheckpoint(n) => format!("checkpoint:{n}"),
            CrashPoint::TornSeal(n) => format!("seal:{n}"),
            CrashPoint::SegmentRoll(n) => format!("segment-roll:{n}"),
        }
    }
}

/// What the service does when an armed crash point fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashAction {
    /// Exit the whole process with code 137 — the same observable as
    /// `kill -9`, for the binaries (`--crash-at`).
    ExitProcess,
    /// Surface [`ServiceError::Crashed`](crate::ServiceError::Crashed)
    /// to the caller, for in-process crash-restart harnesses.
    Surface,
}

/// Tuning knobs for the segmented WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalTuning {
    /// Roll to a fresh segment once the active one reaches this many
    /// bytes (`--segment-bytes`).
    pub segment_bytes: u64,
    /// Group-commit batch window (`--commit-window-us`); zero means one
    /// inline fsync per append under [`WalSync::Always`].
    pub commit_window: Duration,
}

impl Default for WalTuning {
    fn default() -> Self {
        WalTuning {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            commit_window: Duration::ZERO,
        }
    }
}

/// How a service persists its shards (`CacheService::open_persistent`).
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Root data directory; shard `i` lives in `shard-i/` beneath it.
    pub dir: PathBuf,
    /// WAL fsync policy.
    pub sync: WalSync,
    /// Deterministic crash point to arm on every shard (each counts its
    /// own operations), or `None` for normal operation.
    pub crash: Option<CrashSpec>,
    /// What a fired crash point does.
    pub on_crash: CrashAction,
    /// Segment size and commit-window tuning.
    pub tuning: WalTuning,
}

impl PersistOptions {
    /// Plain persistence in `dir`: default sync and tuning, no crash
    /// point, crashes (if somehow armed later) surfaced to the caller.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        PersistOptions {
            dir: dir.into(),
            sync: WalSync::default(),
            crash: None,
            on_crash: CrashAction::Surface,
            tuning: WalTuning::default(),
        }
    }
}

/// What recovery found and did, summed over shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL records replayed through the access path.
    pub replayed: u64,
    /// Torn-tail bytes truncated away.
    pub torn_bytes_dropped: u64,
    /// Shards that had a durable checkpoint to restore.
    pub checkpoints_loaded: usize,
}

/// Everything that can go wrong beneath a durable shard.
#[derive(Debug)]
pub enum PersistError {
    /// The filesystem said no.
    Io(std::io::Error),
    /// A complete WAL frame failed validation: bit rot, never a crash
    /// artifact. Recovery refuses rather than replaying garbage.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: u64,
        /// What failed.
        reason: String,
    },
    /// The checkpoint file exists but cannot be trusted (bad version,
    /// missing fields, policy mismatch with the running config).
    BadCheckpoint(String),
    /// The recovered snapshot could not rebuild a cache.
    Build(String),
    /// An armed [`CrashSpec`] fired. The binaries turn this into
    /// `process::exit(137)`; in-process harnesses treat the store as
    /// dead and recover from disk.
    CrashInjected,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::Corrupt { offset, reason } => {
                write!(f, "WAL corrupt at byte {offset}: {reason}")
            }
            PersistError::BadCheckpoint(reason) => write!(f, "bad checkpoint: {reason}"),
            PersistError::Build(reason) => write!(f, "cannot rebuild cache: {reason}"),
            PersistError::CrashInjected => write!(f, "injected crash point fired"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// The durable anchor a shard rebuilds from: its snapshot, the hit
/// statistics at that instant, and the WAL sequence number the pair
/// covers (records with larger sequence numbers replay on top).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableCheckpoint {
    /// The shard's cache snapshot.
    pub snapshot: CacheSnapshot,
    /// Hit statistics at checkpoint time.
    pub stats: HitStats,
    /// The last WAL sequence number folded into this checkpoint.
    pub seq: u64,
}

impl DurableCheckpoint {
    /// Serialize to the on-disk JSON form. The snapshot is embedded as a
    /// nested object (carrying its own schema version).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"version\":{},\"seq\":{},\"hits\":{},\"misses\":{},\"prefix_hits\":{},\
             \"byte_hits\":{},\"byte_misses\":{},\"evictions\":{},\"snapshot\":{}}}",
            CHECKPOINT_VERSION,
            self.seq,
            self.stats.hits,
            self.stats.misses,
            self.stats.prefix_hits,
            self.stats.byte_hits.as_u64(),
            self.stats.byte_misses.as_u64(),
            self.stats.evictions,
            self.snapshot.to_json()
        )
    }

    /// Deserialize from the [`to_json`](Self::to_json) shape, rejecting
    /// unknown versions loudly.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let v = clipcache_workload::json::parse(json)?;
        let version = v
            .get("version")
            .and_then(|n| n.as_u64())
            .ok_or("checkpoint needs an integer `version`")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {version} is not supported (this build reads \
                 version {CHECKPOINT_VERSION}, which added chunk-granular residency \
                 and the prefix_hits counter; version 1 checkpoints are whole-clip); \
                 refusing to restore"
            ));
        }
        let field = |name: &str| {
            v.get(name)
                .and_then(|n| n.as_u64())
                .ok_or_else(|| format!("checkpoint needs an integer `{name}`"))
        };
        let stats = HitStats {
            hits: field("hits")?,
            misses: field("misses")?,
            prefix_hits: field("prefix_hits")?,
            byte_hits: ByteSize::bytes(field("byte_hits")?),
            byte_misses: ByteSize::bytes(field("byte_misses")?),
            evictions: field("evictions")?,
        };
        let snapshot = CacheSnapshot::from_value(
            v.get("snapshot")
                .ok_or("checkpoint needs a `snapshot` object")?,
        )?;
        Ok(DurableCheckpoint {
            snapshot,
            stats,
            seq: field("seq")?,
        })
    }
}

/// What [`ShardStore::open`] found on disk.
#[derive(Debug)]
pub struct DurableState {
    /// The newest valid checkpoint, if one was ever written.
    pub checkpoint: Option<DurableCheckpoint>,
    /// WAL records after the checkpoint, in append order, sequence-
    /// contiguous across all segments.
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail truncated away during open (0 for a clean log).
    pub torn_bytes_dropped: u64,
    /// WAL records the checkpoint already subsumed (seq ≤ checkpoint
    /// seq), skipped rather than replayed — nonzero when a crash landed
    /// between the checkpoint rename and the segment cleanup.
    pub subsumed_records: u64,
}

/// Shared state of one shard's group-commit queue.
struct CommitState {
    /// Highest sequence number written (flushed to the OS).
    written: u64,
    /// Highest sequence number known durable (fsynced, sealed, or
    /// folded into a durable checkpoint).
    durable: u64,
    /// A rider is currently running the batched fsync.
    leader: bool,
    /// Bumped by a rewind: tickets from earlier epochs error out, since
    /// their sequence numbers may be reissued after the rewind.
    epoch: u64,
    /// A batched fsync failed (or the store was killed): nothing more
    /// will become durable, pending riders must not hang.
    poisoned: bool,
    /// The active segment's file handle — what the leader fsyncs. Every
    /// written-but-unsynced record lives either here or in an
    /// already-sealed (already-durable) segment, so one `sync_data`
    /// covers the whole batch.
    file: Arc<File>,
}

/// A per-shard group-commit queue: appends note their writes under the
/// shard lock, then wait for durability *outside* it so concurrent
/// appends can ride one batched fsync.
struct CommitQueue {
    window: Duration,
    state: Mutex<CommitState>,
    cv: Condvar,
}

impl CommitQueue {
    fn new(window: Duration, durable_through: u64, file: Arc<File>) -> Arc<CommitQueue> {
        Arc::new(CommitQueue {
            window,
            state: Mutex::new(CommitState {
                written: durable_through,
                durable: durable_through,
                leader: false,
                epoch: 0,
                poisoned: false,
                file,
            }),
            cv: Condvar::new(),
        })
    }

    /// Lock the state, recovering from a poisoned mutex (the data is a
    /// handful of counters, always internally consistent).
    fn lock(&self) -> MutexGuard<'_, CommitState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn note_write(&self, seq: u64) {
        let mut st = self.lock();
        st.written = st.written.max(seq);
    }

    fn note_durable(&self, seq: u64) {
        let mut st = self.lock();
        st.durable = st.durable.max(seq);
        drop(st);
        self.cv.notify_all();
    }

    fn swap_file(&self, file: Arc<File>) {
        self.lock().file = file;
    }

    /// A rewind discarded every record after `reset_to`: error out
    /// pending riders (their sequence numbers will be reissued) and
    /// restart the counters.
    fn rewound(&self, reset_to: u64) {
        let mut st = self.lock();
        st.epoch += 1;
        st.written = reset_to;
        st.durable = reset_to;
        drop(st);
        self.cv.notify_all();
    }

    /// Nothing more will become durable: wake every pending rider with
    /// an error instead of letting them hang.
    fn poison(&self) {
        self.lock().poisoned = true;
        self.cv.notify_all();
    }

    fn current_epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Block until `seq` (from `epoch`) is durable. The first
    /// non-durable waiter becomes the leader: it gives later appends up
    /// to the commit window to pile in — leaving early once a poll
    /// slice passes with no new writes — then issues one fsync for the
    /// whole batch.
    fn wait_durable(&self, epoch: u64, seq: u64) -> Result<(), PersistError> {
        let mut st = self.lock();
        loop {
            if st.epoch != epoch {
                return Err(PersistError::Io(std::io::Error::other(
                    "append discarded by a rewind before its batched fsync landed",
                )));
            }
            if st.durable >= seq {
                return Ok(());
            }
            if st.poisoned {
                return Err(PersistError::Io(std::io::Error::other(
                    "commit queue poisoned: a batched fsync failed or the store died",
                )));
            }
            if st.leader {
                st = match self.cv.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                continue;
            }
            st.leader = true;
            let deadline = Instant::now() + self.window;
            loop {
                let seen = st.written;
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                drop(st);
                std::thread::sleep(COMMIT_SLICE.min(deadline - now));
                st = self.lock();
                if st.written == seen || st.epoch != epoch {
                    // The batch quiesced (or the world changed under
                    // us): fsync now, don't burn the rest of the window.
                    break;
                }
            }
            let target = st.written;
            let file = Arc::clone(&st.file);
            drop(st);
            let synced = file.sync_data();
            st = self.lock();
            st.leader = false;
            match synced {
                Ok(()) => {
                    if st.epoch == epoch {
                        st.durable = st.durable.max(target);
                    }
                }
                Err(_) => st.poisoned = true,
            }
            self.cv.notify_all();
        }
    }
}

/// A claim check for a group-committed append: [`wait`](Self::wait)
/// blocks until the record's batched fsync lands (or fails). Wait
/// *after* releasing the shard lock, so concurrent appends can ride the
/// same batch — waiting under the lock serializes the queue and buys
/// nothing.
pub struct CommitTicket {
    queue: Arc<CommitQueue>,
    epoch: u64,
    seq: u64,
}

impl CommitTicket {
    /// Block until the append this ticket was issued for is durable.
    pub fn wait(self) -> Result<(), PersistError> {
        self.queue.wait_durable(self.epoch, self.seq)
    }
}

/// The segment currently being appended to.
struct ActiveSegment {
    /// Shared with the commit queue, which fsyncs it from rider threads.
    file: Arc<File>,
    /// This segment's number (its header and file name agree).
    no: u64,
    /// Bytes on disk (header + complete frames).
    len: u64,
    /// Running CRC over every byte on disk, extended per append so the
    /// seal footer never re-reads the file.
    crc: Crc32,
    /// Sequence number of the last record in this segment (0 if none).
    last_seq: u64,
    /// Records on disk in this segment.
    records: u64,
}

/// Create segment `no` in `dir`: header written, flushed, fsynced. The
/// handle is opened in append mode so truncation and appends compose.
fn create_segment(dir: &Path, no: u64) -> Result<ActiveSegment, PersistError> {
    let path = dir.join(segment_file_name(no));
    let file = OpenOptions::new().create(true).append(true).open(&path)?;
    file.set_len(0)?;
    let header = segment_header(no);
    let mut f: &File = &file;
    f.write_all(&header)?;
    f.flush()?;
    file.sync_data()?;
    // Make the file name itself durable (best effort: not every
    // filesystem lets you open a directory for sync).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    let mut crc = Crc32::new();
    crc.update(&header);
    Ok(ActiveSegment {
        file: Arc::new(file),
        no,
        len: SEGMENT_HEADER_BYTES as u64,
        crc,
        last_seq: 0,
        records: 0,
    })
}

/// List `dir`'s WAL segments as `(number, path)`, sorted by number.
/// A pre-segment single-file `wal.log` or an unparseable `wal.*.log`
/// name is refused loudly.
fn scan_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if name == LEGACY_WAL_FILE {
            return Err(PersistError::Corrupt {
                offset: 0,
                reason: format!(
                    "found a pre-segment single-file '{LEGACY_WAL_FILE}'; this \
                     build reads only segmented logs ({}…) — replay it with \
                     the build that wrote it or delete the data directory \
                     instead of mixing layouts",
                    segment_file_name(1)
                ),
            });
        }
        if let Some(no) = parse_segment_no(&name) {
            if no == 0 {
                return Err(PersistError::Corrupt {
                    offset: 0,
                    reason: "segment number 0 (numbering is 1-based)".into(),
                });
            }
            found.push((no, entry.path()));
        } else if name.starts_with("wal.") && name.ends_with(".log") {
            return Err(PersistError::Corrupt {
                offset: 0,
                reason: format!("unrecognized WAL file name '{name}'"),
            });
        }
    }
    found.sort();
    Ok(found)
}

/// One shard's durable store: the active segment's append handle, its
/// sealed predecessors, the checkpoint writer, the group-commit queue
/// and the armed crash point.
pub struct ShardStore {
    dir: PathBuf,
    sync: WalSync,
    /// Roll threshold: seal the active segment once it reaches this.
    segment_bytes: u64,
    /// Group-commit batch window; zero = inline fsync per append.
    window: Duration,
    active: ActiveSegment,
    /// The lowest segment number still on disk; sealed predecessors of
    /// the active segment are `oldest_no..active.no`.
    oldest_no: u64,
    queue: Arc<CommitQueue>,
    /// Next sequence number to append.
    next_seq: u64,
    /// Last sequence folded into the durable checkpoint.
    ckpt_seq: u64,
    /// Appends performed since the store was opened (crash counting).
    appends: u64,
    /// Durable checkpoints written since the store was opened.
    checkpoints: u64,
    /// Segment seals performed since the store was opened.
    seals: u64,
    crash: Option<CrashSpec>,
    /// A fired crash point leaves the store dead: every later operation
    /// reports the crash again instead of quietly resuming.
    dead: bool,
}

impl ShardStore {
    /// Open (creating if absent) the store in `dir` with default
    /// tuning, returning the durable state to rebuild from.
    pub fn open(dir: &Path, sync: WalSync) -> Result<(ShardStore, DurableState), PersistError> {
        Self::open_tuned(dir, sync, WalTuning::default())
    }

    /// Open (creating if absent) the store in `dir`, returning the
    /// durable state to rebuild from.
    ///
    /// A stale checkpoint tmp file (crash mid-checkpoint) is removed; a
    /// torn tail on the newest segment is truncated in place; sealed
    /// segments fully subsumed by the checkpoint are deleted (finishing
    /// an interrupted checkpoint cleanup); a sealed *newest* segment
    /// (crash in the roll window) gets a fresh successor. Mid-log
    /// corruption, version skew, numbering gaps, a pre-segment
    /// `wal.log` and untrusted checkpoints all fail loudly.
    pub fn open_tuned(
        dir: &Path,
        sync: WalSync,
        tuning: WalTuning,
    ) -> Result<(ShardStore, DurableState), PersistError> {
        std::fs::create_dir_all(dir)?;
        // A tmp file means a checkpoint write died before its rename;
        // the real checkpoint (if any) is intact, the tmp is garbage.
        let tmp = dir.join(CHECKPOINT_TMP);
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
        }
        let ckpt_path = dir.join(CHECKPOINT_FILE);
        let checkpoint = if ckpt_path.exists() {
            let json = std::fs::read_to_string(&ckpt_path)?;
            Some(DurableCheckpoint::from_json(&json).map_err(PersistError::BadCheckpoint)?)
        } else {
            None
        };
        let ckpt_seq = checkpoint.as_ref().map_or(0, |c| c.seq);

        let listed = scan_segments(dir)?;
        for pair in listed.windows(2) {
            if pair[1].0 != pair[0].0 + 1 {
                return Err(PersistError::Corrupt {
                    offset: 0,
                    reason: format!(
                        "WAL segment numbering has a gap: {} is followed by {} \
                         (a middle segment is missing)",
                        segment_file_name(pair[0].0),
                        segment_file_name(pair[1].0)
                    ),
                });
            }
        }
        // Decode every segment; only the newest may be unsealed or torn.
        struct Decoded {
            no: u64,
            path: PathBuf,
            bytes: Vec<u8>,
            records: Vec<WalRecord>,
            end: SegmentEnd,
        }
        let mut segs = Vec::with_capacity(listed.len());
        for (i, (no, path)) in listed.iter().enumerate() {
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            let (records, end) = decode_segment(&bytes, *no)?;
            if i + 1 != listed.len() {
                if let SegmentEnd::Unsealed(_) = end {
                    return Err(PersistError::Corrupt {
                        offset: 0,
                        reason: format!(
                            "segment {} is not sealed but a later segment \
                             follows it",
                            segment_file_name(*no)
                        ),
                    });
                }
            }
            segs.push(Decoded {
                no: *no,
                path: path.clone(),
                bytes,
                records,
                end,
            });
        }

        // The concatenated log must be one contiguous sequence run...
        let mut records: Vec<WalRecord> = segs.iter().flat_map(|s| s.records.clone()).collect();
        for (i, pair) in records.windows(2).enumerate() {
            if pair[1].seq != pair[0].seq + 1 {
                return Err(PersistError::Corrupt {
                    offset: 0,
                    reason: format!(
                        "WAL sequence broken: record {} has seq {}, expected {}",
                        i + 1,
                        pair[1].seq,
                        pair[0].seq + 1
                    ),
                });
            }
        }
        // ...that reaches back to the checkpoint. Sequence numbers are
        // 1-based, and a run starting *past* ckpt_seq + 1 means records
        // were lost — both are corruption. A run starting *at or before*
        // ckpt_seq is legitimate: a crash between the checkpoint rename
        // and the segment cleanup leaves records the checkpoint already
        // subsumes, which recovery skips rather than refusing or
        // replaying twice.
        if let Some(first) = records.first() {
            if first.seq == 0 {
                return Err(PersistError::Corrupt {
                    offset: 0,
                    reason: "WAL record has seq 0 (sequence numbers are 1-based)".into(),
                });
            }
            if first.seq > ckpt_seq + 1 {
                return Err(PersistError::Corrupt {
                    offset: 0,
                    reason: format!(
                        "WAL starts at seq {} but the checkpoint covers through \
                         {ckpt_seq}: records {} through {} are missing",
                        first.seq,
                        ckpt_seq + 1,
                        first.seq - 1
                    ),
                });
            }
        }
        let subsumed_records = records.iter().take_while(|r| r.seq <= ckpt_seq).count() as u64;
        records.drain(..subsumed_records as usize);

        // Finish any checkpoint cleanup a crash interrupted: a sealed
        // segment whose every record the checkpoint covers is garbage.
        let mut oldest_no = None;
        for s in &segs {
            if let SegmentEnd::Sealed { last_seq } = s.end {
                if last_seq <= ckpt_seq {
                    std::fs::remove_file(&s.path)?;
                    continue;
                }
            }
            if oldest_no.is_none() {
                oldest_no = Some(s.no);
            }
        }

        let mut torn_bytes_dropped = 0;
        let active = match segs.last() {
            None => create_segment(dir, 1)?,
            Some(s) => match s.end {
                SegmentEnd::Sealed { .. } => {
                    // A crash in the roll window: the seal landed, the
                    // successor was never created. Open one now. (If the
                    // sealed segment was fully subsumed it is already
                    // deleted above; the numbering still moves forward.)
                    create_segment(dir, s.no + 1)?
                }
                SegmentEnd::Unsealed(tail) => {
                    let file = OpenOptions::new().create(true).append(true).open(&s.path)?;
                    let disk_len;
                    let (mut on_disk_records, mut on_disk_last) = (
                        s.records.len() as u64,
                        s.records.last().map_or(0, |r| r.seq),
                    );
                    match tail {
                        WalTail::Torn {
                            valid_bytes,
                            dropped_bytes,
                        } if (valid_bytes as usize) < SEGMENT_HEADER_BYTES => {
                            // Even the header never finished (a crash
                            // during segment creation): rewrite it.
                            file.set_len(0)?;
                            let header = segment_header(s.no);
                            let mut f: &File = &file;
                            f.write_all(&header)?;
                            f.flush()?;
                            file.sync_data()?;
                            torn_bytes_dropped = dropped_bytes;
                            disk_len = SEGMENT_HEADER_BYTES as u64;
                        }
                        WalTail::Torn {
                            valid_bytes,
                            dropped_bytes,
                        } => {
                            // Truncate the partial record (or partial
                            // seal footer) so the next open sees a
                            // clean segment.
                            file.set_len(valid_bytes)?;
                            file.sync_data()?;
                            torn_bytes_dropped = dropped_bytes;
                            disk_len = valid_bytes;
                        }
                        WalTail::Clean => {
                            if on_disk_records > 0 && on_disk_last <= ckpt_seq {
                                // Every record is subsumed — the exact
                                // signature of a crash between the
                                // checkpoint rename and the cleanup.
                                // Finish the interrupted truncation; a
                                // crash during *this* set_len only
                                // shortens a log whose every byte the
                                // checkpoint already covers.
                                file.set_len(SEGMENT_HEADER_BYTES as u64)?;
                                file.sync_data()?;
                                disk_len = SEGMENT_HEADER_BYTES as u64;
                                on_disk_records = 0;
                                on_disk_last = 0;
                            } else {
                                disk_len = s.bytes.len() as u64;
                            }
                        }
                    }
                    let mut crc = Crc32::new();
                    if disk_len as usize <= s.bytes.len() {
                        crc.update(&s.bytes[..disk_len as usize]);
                    } else {
                        // Only reachable on the rewritten-header path,
                        // where the bytes on disk are the fresh header.
                        crc.update(&segment_header(s.no));
                    }
                    ActiveSegment {
                        file: Arc::new(file),
                        no: s.no,
                        len: disk_len,
                        crc,
                        last_seq: on_disk_last,
                        records: on_disk_records,
                    }
                }
            },
        };
        let oldest_no = oldest_no.unwrap_or(active.no).min(active.no);
        let next_seq = records.last().map_or(ckpt_seq, |r| r.seq) + 1;
        let queue = CommitQueue::new(tuning.commit_window, next_seq - 1, Arc::clone(&active.file));
        Ok((
            ShardStore {
                dir: dir.to_path_buf(),
                sync,
                segment_bytes: tuning.segment_bytes,
                window: tuning.commit_window,
                active,
                oldest_no,
                queue,
                next_seq,
                ckpt_seq,
                appends: 0,
                checkpoints: 0,
                seals: 0,
                crash: None,
                dead: false,
            },
            DurableState {
                checkpoint,
                records,
                torn_bytes_dropped,
                subsumed_records,
            },
        ))
    }

    /// Arm a crash point. Counters start now — recovery-time operations
    /// performed before arming never count.
    pub fn arm_crash(&mut self, crash: Option<CrashSpec>) {
        self.crash = crash;
        self.appends = 0;
        self.checkpoints = 0;
        self.seals = 0;
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The next sequence number an append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The last sequence folded into the durable checkpoint.
    pub fn checkpoint_seq(&self) -> u64 {
        self.ckpt_seq
    }

    /// The active segment's number and the lowest segment number still
    /// on disk — `(oldest, active)`.
    pub fn segment_span(&self) -> (u64, u64) {
        (self.oldest_no, self.active.no)
    }

    /// Whether appends ride the group-commit queue (sync `always` with
    /// a nonzero commit window).
    fn group_commit(&self) -> bool {
        self.sync == WalSync::Always && !self.window.is_zero()
    }

    /// The ticket to wait on for `seq` to become durable, if this store
    /// group-commits. `None` means the append is already as durable as
    /// the sync policy makes it (inline fsync, or no fsync at all).
    pub fn commit_ticket(&self, seq: u64) -> Option<CommitTicket> {
        if !self.group_commit() {
            return None;
        }
        Some(CommitTicket {
            queue: Arc::clone(&self.queue),
            epoch: self.queue.current_epoch(),
            seq,
        })
    }

    /// Append one whole-clip access to the WAL, returning its sequence
    /// number.
    ///
    /// The frame is flushed to the OS before the call returns; with
    /// [`WalSync::Always`] it is also fsynced — inline when the commit
    /// window is zero, else by the batched fsync the returned sequence
    /// number's [`commit_ticket`](Self::commit_ticket) waits on. An
    /// armed crash point may fire here: `torn:N` writes half the frame
    /// then dies, `append:N` dies after the frame is durable, and
    /// `seal:N` / `segment-roll:N` fire if this append fills the
    /// segment.
    ///
    /// # Panics
    /// If `op` is [`WalOp::GetRange`] — ranged probes carry a chunk and
    /// go through [`append_range`](Self::append_range).
    pub fn append(&mut self, op: WalOp, clip: ClipId) -> Result<u64, PersistError> {
        assert!(
            op != WalOp::GetRange,
            "GETRANGE records go through append_range"
        );
        self.append_record(op, clip, 0)
    }

    /// Append one chunk-granular residency probe to the WAL.
    pub fn append_range(&mut self, clip: ClipId, chunk: u32) -> Result<u64, PersistError> {
        self.append_record(WalOp::GetRange, clip, chunk)
    }

    fn append_record(&mut self, op: WalOp, clip: ClipId, chunk: u32) -> Result<u64, PersistError> {
        if self.dead {
            return Err(PersistError::CrashInjected);
        }
        let record = WalRecord {
            seq: self.next_seq,
            clip,
            chunk,
            op,
        };
        let frame = record.encode();
        if let Some(CrashSpec {
            point: CrashPoint::TornAppend(n),
        }) = self.crash
        {
            if self.appends + 1 == n {
                // Half the frame reaches the disk; the process dies
                // mid-write. Recovery must truncate this tail.
                let mut f: &File = &self.active.file;
                f.write_all(&frame[..frame.len() / 2])?;
                f.flush()?;
                self.active.file.sync_data()?;
                // That fsync also made every earlier record in the
                // segment durable: release any riders before the store
                // goes dead.
                if self.group_commit() {
                    self.queue.note_durable(self.active.last_seq);
                }
                self.dead = true;
                return Err(PersistError::CrashInjected);
            }
        }
        if let Err(e) = self.write_frame(&frame) {
            // The frame may be partially on disk; a retried append after
            // it would decode as garbage. Refuse further operations —
            // the caller recovers from disk, which truncates the torn
            // frame — rather than silently diverging.
            self.kill();
            return Err(e);
        }
        self.active.len += frame.len() as u64;
        self.active.crc.update(&frame);
        self.active.last_seq = record.seq;
        self.active.records += 1;
        if self.group_commit() {
            self.queue.note_write(record.seq);
        }
        self.appends += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(CrashSpec {
            point: CrashPoint::AfterAppend(n),
        }) = self.crash
        {
            if self.appends == n {
                // The record IS durable; the process dies right after.
                self.active.file.sync_data()?;
                if self.group_commit() {
                    self.queue.note_durable(seq);
                }
                self.dead = true;
                return Err(PersistError::CrashInjected);
            }
        }
        if self.active.len >= self.segment_bytes {
            self.roll()?;
        }
        Ok(seq)
    }

    /// The fallible I/O of one append; [`append`](Self::append) kills
    /// the store if any step fails. Inline fsync happens only with a
    /// zero commit window — otherwise the batched fsync owns it.
    fn write_frame(&mut self, frame: &[u8]) -> Result<(), PersistError> {
        let mut f: &File = &self.active.file;
        f.write_all(frame)?;
        f.flush()?;
        if self.sync == WalSync::Always && self.window.is_zero() {
            self.active.file.sync_data()?;
        }
        Ok(())
    }

    /// Seal the active segment (footer write + fsync) and open its
    /// successor. The `seal:N` and `segment-roll:N` crash points fire
    /// here.
    fn roll(&mut self) -> Result<(), PersistError> {
        let mut footer = [0u8; SEGMENT_FOOTER_BYTES];
        footer[..4].copy_from_slice(&SEAL_MARK.to_le_bytes());
        footer[4..12].copy_from_slice(&self.active.last_seq.to_le_bytes());
        let mut crc = self.active.crc.clone();
        crc.update(&footer[..12]);
        footer[12..].copy_from_slice(&crc.finish().to_le_bytes());
        if let Some(CrashSpec {
            point: CrashPoint::TornSeal(n),
        }) = self.crash
        {
            if self.seals + 1 == n {
                // Half the footer reaches the disk; the process dies
                // mid-seal. Recovery truncates the partial footer and
                // the segment stays active.
                let mut f: &File = &self.active.file;
                f.write_all(&footer[..SEGMENT_FOOTER_BYTES / 2])?;
                f.flush()?;
                self.active.file.sync_data()?;
                // The partial-footer fsync still made every record in
                // the segment durable.
                if self.group_commit() {
                    self.queue.note_durable(self.active.last_seq);
                }
                self.dead = true;
                return Err(PersistError::CrashInjected);
            }
        }
        let sealed = {
            let mut f: &File = &self.active.file;
            f.write_all(&footer)
                .and_then(|()| f.flush())
                .and_then(|()| self.active.file.sync_data())
        };
        if let Err(e) = sealed {
            self.kill();
            return Err(e.into());
        }
        self.seals += 1;
        // The seal fsync made every record in this segment durable.
        if self.group_commit() {
            self.queue.note_durable(self.active.last_seq);
        }
        if let Some(CrashSpec {
            point: CrashPoint::SegmentRoll(n),
        }) = self.crash
        {
            if self.seals == n {
                // The seal is durable; the successor segment is never
                // created. Recovery opens one.
                self.dead = true;
                return Err(PersistError::CrashInjected);
            }
        }
        match create_segment(&self.dir, self.active.no + 1) {
            Ok(next) => {
                self.active = next;
                self.queue.swap_file(Arc::clone(&self.active.file));
                Ok(())
            }
            Err(e) => {
                self.kill();
                Err(e)
            }
        }
    }

    /// Write a durable checkpoint atomically, then drop the log it
    /// subsumes: sealed segments are deleted outright, the active
    /// segment is truncated back to its bare header.
    ///
    /// Order matters for crash safety: tmp write → fsync → rename →
    /// segment cleanup. A crash before the rename leaves the old
    /// checkpoint with the full log; a crash after it leaves the new
    /// checkpoint with possibly still-undeleted segments whose subsumed
    /// records [`open`](Self::open) then skips (and whose cleanup it
    /// finishes) — never a state that cannot recover. A non-crash I/O
    /// failure partway through kills the store: the disk may already
    /// name the new checkpoint while memory still counts from the old
    /// one, and refusing further appends beats writing sequence numbers
    /// the checkpoint already covers.
    pub fn checkpoint(&mut self, ckpt: &DurableCheckpoint) -> Result<(), PersistError> {
        if self.dead {
            return Err(PersistError::CrashInjected);
        }
        let json = ckpt.to_json();
        let tmp = self.dir.join(CHECKPOINT_TMP);
        if let Some(CrashSpec {
            point: CrashPoint::MidCheckpoint(n),
        }) = self.crash
        {
            if self.checkpoints + 1 == n {
                // Half the checkpoint reaches the tmp file; the rename
                // never happens. Recovery must ignore the tmp and keep
                // the previous checkpoint.
                let mut f = File::create(&tmp)?;
                f.write_all(&json.as_bytes()[..json.len() / 2])?;
                f.sync_data()?;
                self.kill();
                return Err(PersistError::CrashInjected);
            }
        }
        if let Err(e) = self.write_checkpoint(&json, &tmp) {
            self.kill();
            return Err(e);
        }
        self.checkpoints += 1;
        self.ckpt_seq = ckpt.seq;
        self.next_seq = ckpt.seq + 1;
        // Everything the checkpoint covers is durable via the
        // checkpoint itself: release any riders still in the window.
        if self.group_commit() {
            self.queue.note_durable(ckpt.seq);
        }
        Ok(())
    }

    /// The fallible I/O of one checkpoint; [`checkpoint`](Self::checkpoint)
    /// kills the store if any step fails.
    fn write_checkpoint(&mut self, json: &str, tmp: &Path) -> Result<(), PersistError> {
        let mut f = File::create(tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_data()?;
        drop(f);
        std::fs::rename(tmp, self.dir.join(CHECKPOINT_FILE))?;
        // Make the rename itself durable (best effort: not every
        // filesystem lets you open a directory for sync).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.drop_subsumed()?;
        Ok(())
    }

    /// Delete every sealed segment and truncate the active one back to
    /// its bare header — the log is empty afterward. Only called when a
    /// durable checkpoint (or a rewind target) covers every record.
    fn drop_subsumed(&mut self) -> Result<(), PersistError> {
        // Oldest first, so a crash partway leaves a contiguous suffix.
        for no in self.oldest_no..self.active.no {
            std::fs::remove_file(self.dir.join(segment_file_name(no)))?;
        }
        self.oldest_no = self.active.no;
        self.active.file.set_len(SEGMENT_HEADER_BYTES as u64)?;
        self.active.file.sync_data()?;
        let header = segment_header(self.active.no);
        self.active.len = SEGMENT_HEADER_BYTES as u64;
        self.active.crc = Crc32::new();
        self.active.crc.update(&header);
        self.active.last_seq = 0;
        self.active.records = 0;
        Ok(())
    }

    /// Mark the store dead, as after a fired crash point: every later
    /// operation reports [`PersistError::CrashInjected`]. Used when an
    /// I/O failure leaves disk and memory describing different states —
    /// refusing further appends beats silently diverging. Pending
    /// group-commit riders are woken with an error, never left hanging.
    pub fn kill(&mut self) {
        self.dead = true;
        self.queue.poison();
    }

    /// Discard every WAL record after the checkpoint — the durable
    /// counterpart of a poisoned shard's rewind-to-checkpoint, keeping
    /// disk and memory describing the same state. Pending group-commit
    /// riders error out (their records are gone; their sequence numbers
    /// will be reissued).
    pub fn rewind_to_checkpoint(&mut self) -> Result<(), PersistError> {
        if self.dead {
            return Err(PersistError::CrashInjected);
        }
        if let Err(e) = self.drop_subsumed() {
            // The cleanup may be partial: disk no longer matches
            // either the pre- or post-rewind state. Refuse to continue.
            self.kill();
            return Err(e);
        }
        self.next_seq = self.ckpt_seq + 1;
        if self.group_commit() {
            self.queue.rewound(self.ckpt_seq);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests;
