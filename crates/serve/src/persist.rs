//! Durable per-shard cache state: checkpoints plus a write-ahead log.
//!
//! The paper's whole argument is that a cache hit means the clip
//! survives disconnection — which is only true if the cache itself
//! survives a crash. This module makes a shard's state durable with the
//! classic checkpoint + WAL pairing:
//!
//! * **Checkpoint** — a [`DurableCheckpoint`] file holding the shard's
//!   [`CacheSnapshot`] (resident set, policy, capacity, virtual clock),
//!   its [`HitStats`] and the WAL sequence number it covers, serialized
//!   through the hand-rolled `workload::json` codec (serde is stubbed
//!   offline). Checkpoints are written atomically: full tmp file, fsync,
//!   rename — a crash mid-checkpoint leaves the previous checkpoint
//!   intact.
//! * **WAL** — an append-only log of every access since the last
//!   checkpoint. Each record is length-prefixed and CRC-framed
//!   ([`crc32`] over the length *and* payload, so a corrupted length
//!   cannot masquerade as a valid frame). Recovery replays the log
//!   through the shard's zero-alloc `access_into` path.
//!
//! ## The recovery contract
//!
//! [`ShardStore::open`] loads the newest valid checkpoint and decodes
//! the WAL with exactly two crash artifacts it tolerates and one failure
//! mode it refuses:
//!
//! * a **torn tail** — the file ends mid-frame, the signature of a crash
//!   during an append. The partial record is truncated away and recovery
//!   proceeds from the last complete record; the dropped byte count is
//!   reported, never hidden.
//! * a **subsumed prefix** — records with sequence numbers at or below
//!   the checkpoint's, the signature of a crash between the checkpoint
//!   rename and the WAL truncation. The checkpoint already folds them
//!   in, so they are skipped (and the interrupted truncation finished),
//!   never replayed twice.
//! * **mid-log corruption** — a complete frame whose CRC or length
//!   prefix does not match the fixed layout, or whose sequence breaks
//!   the chain. That is bit rot or foul play, not a crash artifact, and
//!   recovery refuses loudly ([`PersistError::Corrupt`]) rather than
//!   replaying garbage.
//!
//! Recovery is deterministic: the same on-disk bytes produce the same
//! rebuilt shard, bit for bit, on every attempt — the crash-kill chaos
//! suite (`tests/crash_recovery.rs`) pins this by recovering twice from
//! copies of the same directory.
//!
//! ## Deterministic crash points
//!
//! A [`CrashSpec`] arms the store with a *crash point* — die after the
//! Nth WAL append, write only half of the Nth append (a torn write), or
//! die midway through the Nth checkpoint. The store performs the partial
//! effect, then reports [`PersistError::CrashInjected`]; the service
//! maps that to `process::exit(137)` in the binaries (`--crash-at`) or
//! surfaces it to an in-process harness. Crash points count operations
//! performed *after* recovery, so a crash-restart loop steps
//! deterministically through the log.

use clipcache_core::snapshot::CacheSnapshot;
use clipcache_media::{ByteSize, ClipId};
use clipcache_sim::metrics::HitStats;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// The WAL file inside a shard's directory.
pub const WAL_FILE: &str = "wal.log";
/// The checkpoint file inside a shard's directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";
/// The scratch name a checkpoint is written to before the atomic rename.
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// The durable-checkpoint schema version this build writes and reads.
/// Version 2 added chunk-granular residency: the embedded snapshot
/// carries partial prefixes and the stats carry `prefix_hits`.
pub const CHECKPOINT_VERSION: u64 = 2;

/// The WAL record-layout version this build writes and replays.
/// Version 2 added the chunk field (17-byte payloads); version-1
/// records are rejected by name, never reinterpreted. Peers compare
/// this over the wire (`VERSION`/`KIND_HELLO`) before cooperating.
pub const WAL_VERSION: u64 = 2;

/// Bytes in one record's payload: seq (8) + clip (4) + chunk (4) + op (1).
/// Version 1 of the log had no chunk field (13-byte payloads); those
/// records are rejected by name, never reinterpreted.
const RECORD_PAYLOAD_BYTES: usize = 17;
/// The version-1 payload layout (seq + clip + op, no chunk), kept only
/// so the rejection message can name what it found.
const V1_RECORD_PAYLOAD_BYTES: usize = 13;
/// Bytes in one record's frame header: length (4) + CRC (4).
const FRAME_HEADER_BYTES: usize = 8;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `bytes` — the same
/// polynomial zlib and ethernet use, hand-rolled because the offline
/// build vendors no checksum crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Streaming CRC-32, so frames can be checked without copying the
/// length prefix and payload into one buffer.
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u32;
            for _ in 0..8 {
                let mask = (self.0 & 1).wrapping_neg();
                self.0 = (self.0 >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }

    fn finish(self) -> u32 {
        !self.0
    }
}

/// What a logged access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WalOp {
    /// A counted request (`Shard::get`): replay records hit statistics.
    Get,
    /// An uncounted warm-up (`Shard::admit`): replay touches the cache
    /// but not the statistics.
    Admit,
    /// A chunk-granular residency probe (`Shard::get_range`): the
    /// record's `chunk` field is meaningful; replay is a state no-op.
    GetRange,
}

impl WalOp {
    fn to_byte(self) -> u8 {
        match self {
            WalOp::Get => 0,
            WalOp::Admit => 1,
            WalOp::GetRange => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, String> {
        match b {
            0 => Ok(WalOp::Get),
            1 => Ok(WalOp::Admit),
            2 => Ok(WalOp::GetRange),
            other => Err(format!("unknown WAL op byte {other}")),
        }
    }
}

/// One logged access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WalRecord {
    /// Position in the shard's access stream (1-based, contiguous).
    pub seq: u64,
    /// The clip accessed.
    pub clip: ClipId,
    /// The probed chunk for [`WalOp::GetRange`]; 0 for whole-clip ops
    /// (and enforced 0 on decode, so a flipped bit is loud).
    pub chunk: u32,
    /// Whether the access was counted.
    pub op: WalOp,
}

impl WalRecord {
    /// Encode the record as one framed WAL entry:
    /// `len(4 LE) ‖ crc(4 LE) ‖ payload`, CRC over `len ‖ payload`.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = [0u8; RECORD_PAYLOAD_BYTES];
        payload[..8].copy_from_slice(&self.seq.to_le_bytes());
        payload[8..12].copy_from_slice(&self.clip.get().to_le_bytes());
        payload[12..16].copy_from_slice(&self.chunk.to_le_bytes());
        payload[16] = self.op.to_byte();
        let len = (RECORD_PAYLOAD_BYTES as u32).to_le_bytes();
        let mut crc = Crc32::new();
        crc.update(&len);
        crc.update(&payload);
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + RECORD_PAYLOAD_BYTES);
        frame.extend_from_slice(&len);
        frame.extend_from_slice(&crc.finish().to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }
}

/// How [`decode_wal`] found the end of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The log ends exactly on a frame boundary.
    Clean,
    /// The log ends mid-frame — a crash interrupted an append. The
    /// partial record is not replayed; `valid_bytes` is where the log
    /// should be truncated and `dropped_bytes` what the truncation
    /// discards.
    Torn {
        /// Bytes of complete, valid frames.
        valid_bytes: u64,
        /// Trailing bytes of the incomplete frame.
        dropped_bytes: u64,
    },
}

/// Decode a WAL byte stream into records.
///
/// An *incomplete* final frame (fewer bytes than its header or declared
/// length promises) is a torn tail: the complete prefix is returned with
/// [`WalTail::Torn`]. A frame whose (fully present) length prefix is not
/// the fixed record layout, whose CRC fails, or that breaks anything
/// else is corruption and fails loudly — no record after the first
/// invalid byte is ever returned, no valid frame is ever silently
/// discarded as a "torn tail", and no invalid record is ever replayed.
pub fn decode_wal(bytes: &[u8]) -> Result<(Vec<WalRecord>, WalTail), PersistError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok((records, WalTail::Clean));
        }
        let torn = |pos: usize| WalTail::Torn {
            valid_bytes: pos as u64,
            dropped_bytes: (bytes.len() - pos) as u64,
        };
        if remaining < 4 {
            return Ok((records, torn(pos)));
        }
        let len_bytes = &bytes[pos..pos + 4];
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        // The length field is the first thing an append writes, so a torn
        // write can truncate it but never leave it complete-and-wrong.
        // Records are fixed-size, so a complete length that is not the
        // one layout is corruption — trusting it would let a flipped bit
        // masquerade the rest of the log as a "torn tail" and silently
        // truncate valid frames after it.
        if len == V1_RECORD_PAYLOAD_BYTES {
            // A version-1 log (13-byte payloads: seq + clip + op, no
            // chunk field). Reinterpreting it under the version-2
            // layout would shear every field, so refuse by name.
            return Err(PersistError::Corrupt {
                offset: pos as u64,
                reason: format!(
                    "WAL record uses the version-1 {V1_RECORD_PAYLOAD_BYTES}-byte \
                     whole-clip layout; this build reads only the version-2 \
                     {RECORD_PAYLOAD_BYTES}-byte chunk-aware layout — delete the \
                     old data directory (or replay it with a version-1 build) \
                     instead of mixing formats"
                ),
            });
        }
        if len != RECORD_PAYLOAD_BYTES {
            return Err(PersistError::Corrupt {
                offset: pos as u64,
                reason: format!(
                    "WAL record length {len} is not the fixed \
                     {RECORD_PAYLOAD_BYTES}-byte layout"
                ),
            });
        }
        if remaining < FRAME_HEADER_BYTES || remaining - FRAME_HEADER_BYTES < len {
            // The frame promises more bytes than the file holds: an
            // append died mid-write.
            return Ok((records, torn(pos)));
        }
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let payload = &bytes[pos + FRAME_HEADER_BYTES..pos + FRAME_HEADER_BYTES + len];
        let mut crc = Crc32::new();
        crc.update(len_bytes);
        crc.update(payload);
        if crc.finish() != stored_crc {
            return Err(PersistError::Corrupt {
                offset: pos as u64,
                reason: "WAL record CRC mismatch".into(),
            });
        }
        let seq = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let clip = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
        if clip == 0 {
            return Err(PersistError::Corrupt {
                offset: pos as u64,
                reason: "WAL record names clip id 0".into(),
            });
        }
        let chunk = u32::from_le_bytes(payload[12..16].try_into().expect("4 bytes"));
        let op = WalOp::from_byte(payload[16]).map_err(|reason| PersistError::Corrupt {
            offset: pos as u64,
            reason,
        })?;
        if op != WalOp::GetRange && chunk != 0 {
            return Err(PersistError::Corrupt {
                offset: pos as u64,
                reason: format!(
                    "whole-clip WAL record carries nonzero chunk {chunk} (only \
                     GETRANGE records address chunks)"
                ),
            });
        }
        records.push(WalRecord {
            seq,
            clip: ClipId::new(clip),
            chunk,
            op,
        });
        pos += FRAME_HEADER_BYTES + len;
    }
}

/// When appends reach the platter.
///
/// Either way every append is flushed to the *operating system* before
/// the call returns, so the log survives a killed process (`kill -9`);
/// the difference is whether it also survives a power failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSync {
    /// `fsync` after every append: survives power loss, costs a device
    /// round trip per request.
    Always,
    /// Flush to the OS page cache only (the default): survives process
    /// death, trusts the kernel for power loss. Checkpoints still fsync.
    #[default]
    Off,
}

impl WalSync {
    /// Parse a `--wal-sync` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(WalSync::Always),
            "off" => Ok(WalSync::Off),
            other => Err(format!(
                "unknown --wal-sync '{other}' (expected always or off)"
            )),
        }
    }

    /// The canonical flag spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            WalSync::Always => "always",
            WalSync::Off => "off",
        }
    }
}

/// A deterministic crash point: where the process dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Die immediately after the Nth WAL append is durable (1-based).
    AfterAppend(u64),
    /// The Nth WAL append writes only half its frame, then the process
    /// dies — the canonical torn write.
    TornAppend(u64),
    /// Die midway through writing the Nth durable checkpoint (the tmp
    /// file is half-written; the rename never happens).
    MidCheckpoint(u64),
}

/// A parsed `--crash-at` spec. Counters start at zero when the store is
/// armed (after recovery), so a crash-restart loop steps forward
/// deterministically instead of re-dying at the same byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrashSpec {
    /// Where to die.
    pub point: CrashPoint,
}

impl CrashSpec {
    /// Parse `append:N`, `torn:N` or `checkpoint:N` (N ≥ 1).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind, n) = spec
            .split_once(':')
            .ok_or_else(|| format!("crash spec '{spec}' is not kind:N"))?;
        let n: u64 = n
            .parse()
            .map_err(|_| format!("bad crash count '{n}' in '{spec}'"))?;
        if n == 0 {
            return Err("crash counts are 1-based; 0 never fires".into());
        }
        let point = match kind {
            "append" => CrashPoint::AfterAppend(n),
            "torn" => CrashPoint::TornAppend(n),
            "checkpoint" => CrashPoint::MidCheckpoint(n),
            other => {
                return Err(format!(
                    "unknown crash point '{other}' (expected append, torn or checkpoint)"
                ))
            }
        };
        Ok(CrashSpec { point })
    }

    /// The canonical spec spelling ([`parse`](Self::parse) inverts it).
    pub fn spelling(&self) -> String {
        match self.point {
            CrashPoint::AfterAppend(n) => format!("append:{n}"),
            CrashPoint::TornAppend(n) => format!("torn:{n}"),
            CrashPoint::MidCheckpoint(n) => format!("checkpoint:{n}"),
        }
    }
}

/// What the service does when an armed crash point fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashAction {
    /// Exit the whole process with code 137 — the same observable as
    /// `kill -9`, for the binaries (`--crash-at`).
    ExitProcess,
    /// Surface [`ServiceError::Crashed`](crate::ServiceError::Crashed)
    /// to the caller, for in-process crash-restart harnesses.
    Surface,
}

/// How a service persists its shards (`CacheService::open_persistent`).
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Root data directory; shard `i` lives in `shard-i/` beneath it.
    pub dir: PathBuf,
    /// WAL fsync policy.
    pub sync: WalSync,
    /// Deterministic crash point to arm on every shard (each counts its
    /// own operations), or `None` for normal operation.
    pub crash: Option<CrashSpec>,
    /// What a fired crash point does.
    pub on_crash: CrashAction,
}

impl PersistOptions {
    /// Plain persistence in `dir`: default sync, no crash point,
    /// crashes (if somehow armed later) surfaced to the caller.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        PersistOptions {
            dir: dir.into(),
            sync: WalSync::default(),
            crash: None,
            on_crash: CrashAction::Surface,
        }
    }
}

/// What recovery found and did, summed over shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL records replayed through the access path.
    pub replayed: u64,
    /// Torn-tail bytes truncated away.
    pub torn_bytes_dropped: u64,
    /// Shards that had a durable checkpoint to restore.
    pub checkpoints_loaded: usize,
}

/// Everything that can go wrong beneath a durable shard.
#[derive(Debug)]
pub enum PersistError {
    /// The filesystem said no.
    Io(std::io::Error),
    /// A complete WAL frame failed validation: bit rot, never a crash
    /// artifact. Recovery refuses rather than replaying garbage.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: u64,
        /// What failed.
        reason: String,
    },
    /// The checkpoint file exists but cannot be trusted (bad version,
    /// missing fields, policy mismatch with the running config).
    BadCheckpoint(String),
    /// The recovered snapshot could not rebuild a cache.
    Build(String),
    /// An armed [`CrashSpec`] fired. The binaries turn this into
    /// `process::exit(137)`; in-process harnesses treat the store as
    /// dead and recover from disk.
    CrashInjected,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::Corrupt { offset, reason } => {
                write!(f, "WAL corrupt at byte {offset}: {reason}")
            }
            PersistError::BadCheckpoint(reason) => write!(f, "bad checkpoint: {reason}"),
            PersistError::Build(reason) => write!(f, "cannot rebuild cache: {reason}"),
            PersistError::CrashInjected => write!(f, "injected crash point fired"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// The durable anchor a shard rebuilds from: its snapshot, the hit
/// statistics at that instant, and the WAL sequence number the pair
/// covers (records with larger sequence numbers replay on top).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableCheckpoint {
    /// The shard's cache snapshot.
    pub snapshot: CacheSnapshot,
    /// Hit statistics at checkpoint time.
    pub stats: HitStats,
    /// The last WAL sequence number folded into this checkpoint.
    pub seq: u64,
}

impl DurableCheckpoint {
    /// Serialize to the on-disk JSON form. The snapshot is embedded as a
    /// nested object (carrying its own schema version).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"version\":{},\"seq\":{},\"hits\":{},\"misses\":{},\"prefix_hits\":{},\
             \"byte_hits\":{},\"byte_misses\":{},\"evictions\":{},\"snapshot\":{}}}",
            CHECKPOINT_VERSION,
            self.seq,
            self.stats.hits,
            self.stats.misses,
            self.stats.prefix_hits,
            self.stats.byte_hits.as_u64(),
            self.stats.byte_misses.as_u64(),
            self.stats.evictions,
            self.snapshot.to_json()
        )
    }

    /// Deserialize from the [`to_json`](Self::to_json) shape, rejecting
    /// unknown versions loudly.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let v = clipcache_workload::json::parse(json)?;
        let version = v
            .get("version")
            .and_then(|n| n.as_u64())
            .ok_or("checkpoint needs an integer `version`")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {version} is not supported (this build reads \
                 version {CHECKPOINT_VERSION}, which added chunk-granular residency \
                 and the prefix_hits counter; version 1 checkpoints are whole-clip); \
                 refusing to restore"
            ));
        }
        let field = |name: &str| {
            v.get(name)
                .and_then(|n| n.as_u64())
                .ok_or_else(|| format!("checkpoint needs an integer `{name}`"))
        };
        let stats = HitStats {
            hits: field("hits")?,
            misses: field("misses")?,
            prefix_hits: field("prefix_hits")?,
            byte_hits: ByteSize::bytes(field("byte_hits")?),
            byte_misses: ByteSize::bytes(field("byte_misses")?),
            evictions: field("evictions")?,
        };
        let snapshot = CacheSnapshot::from_value(
            v.get("snapshot")
                .ok_or("checkpoint needs a `snapshot` object")?,
        )?;
        Ok(DurableCheckpoint {
            snapshot,
            stats,
            seq: field("seq")?,
        })
    }
}

/// What [`ShardStore::open`] found on disk.
#[derive(Debug)]
pub struct DurableState {
    /// The newest valid checkpoint, if one was ever written.
    pub checkpoint: Option<DurableCheckpoint>,
    /// WAL records after the checkpoint, in append order, sequence-
    /// contiguous.
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail truncated away during open (0 for a clean log).
    pub torn_bytes_dropped: u64,
    /// WAL records the checkpoint already subsumed (seq ≤ checkpoint
    /// seq), skipped rather than replayed — nonzero when a crash landed
    /// between the checkpoint rename and the WAL truncation.
    pub subsumed_records: u64,
}

/// One shard's durable store: the WAL append handle, the checkpoint
/// writer, and the armed crash point.
pub struct ShardStore {
    dir: PathBuf,
    wal: File,
    sync: WalSync,
    /// Next sequence number to append.
    next_seq: u64,
    /// Last sequence folded into the durable checkpoint.
    ckpt_seq: u64,
    /// Appends performed since the store was opened (crash counting).
    appends: u64,
    /// Durable checkpoints written since the store was opened.
    checkpoints: u64,
    crash: Option<CrashSpec>,
    /// A fired crash point leaves the store dead: every later operation
    /// reports the crash again instead of quietly resuming.
    dead: bool,
}

impl ShardStore {
    /// Open (creating if absent) the store in `dir`, returning the
    /// durable state to rebuild from.
    ///
    /// A stale checkpoint tmp file (crash mid-checkpoint) is removed; a
    /// torn WAL tail is truncated in place; mid-log corruption and
    /// untrusted checkpoints fail loudly.
    pub fn open(dir: &Path, sync: WalSync) -> Result<(ShardStore, DurableState), PersistError> {
        std::fs::create_dir_all(dir)?;
        // A tmp file means a checkpoint write died before its rename;
        // the real checkpoint (if any) is intact, the tmp is garbage.
        let tmp = dir.join(CHECKPOINT_TMP);
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
        }
        let ckpt_path = dir.join(CHECKPOINT_FILE);
        let checkpoint = if ckpt_path.exists() {
            let json = std::fs::read_to_string(&ckpt_path)?;
            Some(DurableCheckpoint::from_json(&json).map_err(PersistError::BadCheckpoint)?)
        } else {
            None
        };
        let ckpt_seq = checkpoint.as_ref().map_or(0, |c| c.seq);

        let wal_path = dir.join(WAL_FILE);
        let mut bytes = Vec::new();
        if wal_path.exists() {
            File::open(&wal_path)?.read_to_end(&mut bytes)?;
        }
        let (mut records, tail) = decode_wal(&bytes)?;
        // The log must be one contiguous sequence run...
        for (i, pair) in records.windows(2).enumerate() {
            if pair[1].seq != pair[0].seq + 1 {
                return Err(PersistError::Corrupt {
                    offset: ((i + 1) * (FRAME_HEADER_BYTES + RECORD_PAYLOAD_BYTES)) as u64,
                    reason: format!(
                        "WAL sequence broken: record {} has seq {}, expected {}",
                        i + 1,
                        pair[1].seq,
                        pair[0].seq + 1
                    ),
                });
            }
        }
        // ...that reaches back to the checkpoint. Sequence numbers are
        // 1-based, and a run starting *past* ckpt_seq + 1 means records
        // were lost — both are corruption. A run starting *at or before*
        // ckpt_seq is legitimate: a crash between the checkpoint rename
        // and the WAL truncation leaves records the checkpoint already
        // subsumes, which recovery skips rather than refusing or
        // replaying twice.
        if let Some(first) = records.first() {
            if first.seq == 0 {
                return Err(PersistError::Corrupt {
                    offset: 0,
                    reason: "WAL record has seq 0 (sequence numbers are 1-based)".into(),
                });
            }
            if first.seq > ckpt_seq + 1 {
                return Err(PersistError::Corrupt {
                    offset: 0,
                    reason: format!(
                        "WAL starts at seq {} but the checkpoint covers through \
                         {ckpt_seq}: records {} through {} are missing",
                        first.seq,
                        ckpt_seq + 1,
                        first.seq - 1
                    ),
                });
            }
        }
        let subsumed_records = records.iter().take_while(|r| r.seq <= ckpt_seq).count() as u64;
        records.drain(..subsumed_records as usize);
        if subsumed_records > 0 && records.is_empty() && tail == WalTail::Clean {
            // Every record is subsumed — the exact signature of a crash
            // between rename and truncation. Finish the interrupted
            // truncation; a crash during *this* set_len only shortens a
            // log whose every byte is already covered by the checkpoint.
            let f = OpenOptions::new().write(true).open(&wal_path)?;
            f.set_len(0)?;
            f.sync_data()?;
        }
        let torn_bytes_dropped = match tail {
            WalTail::Clean => 0,
            WalTail::Torn {
                valid_bytes,
                dropped_bytes,
            } => {
                // Truncate the partial record so the next open sees a
                // clean log.
                let f = OpenOptions::new().write(true).open(&wal_path)?;
                f.set_len(valid_bytes)?;
                f.sync_data()?;
                dropped_bytes
            }
        };
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        let next_seq = records.last().map_or(ckpt_seq, |r| r.seq) + 1;
        Ok((
            ShardStore {
                dir: dir.to_path_buf(),
                wal,
                sync,
                next_seq,
                ckpt_seq,
                appends: 0,
                checkpoints: 0,
                crash: None,
                dead: false,
            },
            DurableState {
                checkpoint,
                records,
                torn_bytes_dropped,
                subsumed_records,
            },
        ))
    }

    /// Arm a crash point. Counters start now — recovery-time operations
    /// performed before arming never count.
    pub fn arm_crash(&mut self, crash: Option<CrashSpec>) {
        self.crash = crash;
        self.appends = 0;
        self.checkpoints = 0;
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The next sequence number an append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The last sequence folded into the durable checkpoint.
    pub fn checkpoint_seq(&self) -> u64 {
        self.ckpt_seq
    }

    /// Append one whole-clip access to the WAL, returning its sequence
    /// number.
    ///
    /// The frame is flushed to the OS before the call returns; with
    /// [`WalSync::Always`] it is also fsynced. An armed crash point may
    /// fire here: `torn:N` writes half the frame then dies, `append:N`
    /// dies after the frame is durable.
    ///
    /// # Panics
    /// If `op` is [`WalOp::GetRange`] — ranged probes carry a chunk and
    /// go through [`append_range`](Self::append_range).
    pub fn append(&mut self, op: WalOp, clip: ClipId) -> Result<u64, PersistError> {
        assert!(
            op != WalOp::GetRange,
            "GETRANGE records go through append_range"
        );
        self.append_record(op, clip, 0)
    }

    /// Append one chunk-granular residency probe to the WAL.
    pub fn append_range(&mut self, clip: ClipId, chunk: u32) -> Result<u64, PersistError> {
        self.append_record(WalOp::GetRange, clip, chunk)
    }

    fn append_record(&mut self, op: WalOp, clip: ClipId, chunk: u32) -> Result<u64, PersistError> {
        if self.dead {
            return Err(PersistError::CrashInjected);
        }
        let record = WalRecord {
            seq: self.next_seq,
            clip,
            chunk,
            op,
        };
        let frame = record.encode();
        if let Some(CrashSpec {
            point: CrashPoint::TornAppend(n),
        }) = self.crash
        {
            if self.appends + 1 == n {
                // Half the frame reaches the disk; the process dies
                // mid-write. Recovery must truncate this tail.
                self.wal.write_all(&frame[..frame.len() / 2])?;
                self.wal.flush()?;
                self.wal.sync_data()?;
                self.dead = true;
                return Err(PersistError::CrashInjected);
            }
        }
        if let Err(e) = self.write_frame(&frame) {
            // The frame may be partially on disk; a retried append after
            // it would decode as garbage. Refuse further operations —
            // the caller recovers from disk, which truncates the torn
            // frame — rather than silently diverging.
            self.dead = true;
            return Err(e);
        }
        self.appends += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(CrashSpec {
            point: CrashPoint::AfterAppend(n),
        }) = self.crash
        {
            if self.appends == n {
                // The record IS durable; the process dies right after.
                self.wal.sync_data()?;
                self.dead = true;
                return Err(PersistError::CrashInjected);
            }
        }
        Ok(seq)
    }

    /// The fallible I/O of one append; [`append`](Self::append) kills
    /// the store if any step fails.
    fn write_frame(&mut self, frame: &[u8]) -> Result<(), PersistError> {
        self.wal.write_all(frame)?;
        self.wal.flush()?;
        if self.sync == WalSync::Always {
            self.wal.sync_data()?;
        }
        Ok(())
    }

    /// Write a durable checkpoint atomically, then truncate the WAL it
    /// subsumes.
    ///
    /// Order matters for crash safety: tmp write → fsync → rename →
    /// WAL truncate. A crash before the rename leaves the old
    /// checkpoint with the full WAL; a crash after it leaves the new
    /// checkpoint with a possibly still-untruncated WAL whose subsumed
    /// records [`open`](Self::open) then skips — never a state that
    /// cannot recover. A non-crash I/O failure partway through kills
    /// the store: the disk may already name the new checkpoint while
    /// memory still counts from the old one, and refusing further
    /// appends beats writing sequence numbers the checkpoint already
    /// covers.
    pub fn checkpoint(&mut self, ckpt: &DurableCheckpoint) -> Result<(), PersistError> {
        if self.dead {
            return Err(PersistError::CrashInjected);
        }
        let json = ckpt.to_json();
        let tmp = self.dir.join(CHECKPOINT_TMP);
        if let Some(CrashSpec {
            point: CrashPoint::MidCheckpoint(n),
        }) = self.crash
        {
            if self.checkpoints + 1 == n {
                // Half the checkpoint reaches the tmp file; the rename
                // never happens. Recovery must ignore the tmp and keep
                // the previous checkpoint.
                let mut f = File::create(&tmp)?;
                f.write_all(&json.as_bytes()[..json.len() / 2])?;
                f.sync_data()?;
                self.dead = true;
                return Err(PersistError::CrashInjected);
            }
        }
        if let Err(e) = self.write_checkpoint(&json, &tmp) {
            self.dead = true;
            return Err(e);
        }
        self.checkpoints += 1;
        self.ckpt_seq = ckpt.seq;
        self.next_seq = ckpt.seq + 1;
        Ok(())
    }

    /// The fallible I/O of one checkpoint; [`checkpoint`](Self::checkpoint)
    /// kills the store if any step fails.
    fn write_checkpoint(&mut self, json: &str, tmp: &Path) -> Result<(), PersistError> {
        let mut f = File::create(tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_data()?;
        drop(f);
        std::fs::rename(tmp, self.dir.join(CHECKPOINT_FILE))?;
        // Make the rename itself durable (best effort: not every
        // filesystem lets you open a directory for sync).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.wal.set_len(0)?;
        self.wal.sync_data()?;
        Ok(())
    }

    /// Mark the store dead, as after a fired crash point: every later
    /// operation reports [`PersistError::CrashInjected`]. Used when an
    /// I/O failure leaves disk and memory describing different states —
    /// refusing further appends beats silently diverging.
    pub fn kill(&mut self) {
        self.dead = true;
    }

    /// Discard every WAL record after the checkpoint — the durable
    /// counterpart of a poisoned shard's rewind-to-checkpoint, keeping
    /// disk and memory describing the same state.
    pub fn rewind_to_checkpoint(&mut self) -> Result<(), PersistError> {
        if self.dead {
            return Err(PersistError::CrashInjected);
        }
        if let Err(e) = self.wal.set_len(0).and_then(|()| self.wal.sync_data()) {
            // The truncation may be partial: disk no longer matches
            // either the pre- or post-rewind state. Refuse to continue.
            self.dead = true;
            return Err(e.into());
        }
        self.next_seq = self.ckpt_seq + 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipcache_core::PolicyKind;
    use clipcache_media::paper;
    use clipcache_workload::Timestamp;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clipcache-persist-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(seq: u64, clip: u32, op: WalOp) -> WalRecord {
        WalRecord {
            seq,
            clip: ClipId::new(clip),
            chunk: 0,
            op,
        }
    }

    fn range_record(seq: u64, clip: u32, chunk: u32) -> WalRecord {
        WalRecord {
            seq,
            clip: ClipId::new(clip),
            chunk,
            op: WalOp::GetRange,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE check values (zlib's crc32 agrees).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn records_round_trip_through_the_frame() {
        let recs = [
            record(1, 1, WalOp::Get),
            record(2, u32::MAX, WalOp::Admit),
            record(3, 17, WalOp::Get),
            range_record(4, 9, 0),
            range_record(5, 9, u32::MAX),
        ];
        let mut log = Vec::new();
        for r in &recs {
            log.extend_from_slice(&r.encode());
        }
        let (decoded, tail) = decode_wal(&log).unwrap();
        assert_eq!(decoded, recs);
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(decode_wal(&[]).unwrap(), (vec![], WalTail::Clean));
    }

    #[test]
    fn v1_records_are_rejected_by_name() {
        // Hand-build a version-1 frame: 13-byte payload (seq + clip +
        // op), valid CRC. It must be refused naming the old layout, not
        // reinterpreted or written off as a torn tail.
        let mut payload = [0u8; 13];
        payload[..8].copy_from_slice(&1u64.to_le_bytes());
        payload[8..12].copy_from_slice(&7u32.to_le_bytes());
        payload[12] = 0; // v1 Get
        let len = 13u32.to_le_bytes();
        let mut crc = Crc32::new();
        crc.update(&len);
        crc.update(&payload);
        let mut frame = Vec::new();
        frame.extend_from_slice(&len);
        frame.extend_from_slice(&crc.finish().to_le_bytes());
        frame.extend_from_slice(&payload);
        match decode_wal(&frame) {
            Err(PersistError::Corrupt { offset, reason }) => {
                assert_eq!(offset, 0);
                assert!(reason.contains("version-1"), "names the version: {reason}");
                assert!(reason.contains("13-byte"), "names the layout: {reason}");
            }
            other => panic!("v1 record must be refused loudly, got {other:?}"),
        }
    }

    #[test]
    fn whole_clip_records_with_nonzero_chunk_are_corrupt() {
        let mut forged = record(1, 3, WalOp::Get);
        forged.chunk = 5;
        match decode_wal(&forged.encode()) {
            Err(PersistError::Corrupt { reason, .. }) => {
                assert!(reason.contains("nonzero chunk"), "{reason}");
            }
            other => panic!("nonzero chunk on a Get must be loud, got {other:?}"),
        }
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let full = record(1, 3, WalOp::Get).encode();
        let torn = record(2, 4, WalOp::Get).encode();
        for cut in 1..torn.len() {
            let mut log = full.clone();
            log.extend_from_slice(&torn[..cut]);
            let (decoded, tail) = decode_wal(&log).unwrap();
            assert_eq!(decoded.len(), 1, "cut at {cut} must keep the valid prefix");
            assert_eq!(
                tail,
                WalTail::Torn {
                    valid_bytes: full.len() as u64,
                    dropped_bytes: cut as u64,
                },
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn mid_log_corruption_is_loud() {
        let mut log = Vec::new();
        for seq in 1..=3 {
            log.extend_from_slice(&record(seq, seq as u32, WalOp::Get).encode());
        }
        // Flip one payload bit in the middle record.
        let frame = FRAME_HEADER_BYTES + RECORD_PAYLOAD_BYTES;
        let mut corrupt = log.clone();
        corrupt[frame + FRAME_HEADER_BYTES + 2] ^= 0x10;
        match decode_wal(&corrupt) {
            Err(PersistError::Corrupt { offset, .. }) => assert_eq!(offset, frame as u64),
            other => panic!("corruption must be loud, got {other:?}"),
        }
        // Flip a CRC bit: same refusal.
        let mut bad_crc = log;
        bad_crc[frame + 5] ^= 0x01;
        assert!(matches!(
            decode_wal(&bad_crc),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn crash_spec_round_trips_and_rejects_garbage() {
        for spec in ["append:1", "torn:64", "checkpoint:3"] {
            let parsed = CrashSpec::parse(spec).unwrap();
            assert_eq!(parsed.spelling(), spec);
            assert_eq!(CrashSpec::parse(&parsed.spelling()).unwrap(), parsed);
        }
        for bad in [
            "", "append", "append:", "append:0", "append:x", "frob:1", "torn:-1",
        ] {
            assert!(CrashSpec::parse(bad).is_err(), "accepted '{bad}'");
        }
        assert_eq!(WalSync::parse("always").unwrap(), WalSync::Always);
        assert_eq!(WalSync::parse("off").unwrap(), WalSync::Off);
        assert!(WalSync::parse("sometimes").is_err());
    }

    fn sample_checkpoint() -> DurableCheckpoint {
        let repo = Arc::new(paper::equi_sized_repository_of(8, ByteSize::mb(10)));
        let mut cache = PolicyKind::Lru.build(Arc::clone(&repo), ByteSize::mb(30), 1, None);
        for i in 1..=3u32 {
            cache.access(ClipId::new(i), Timestamp(i as u64));
        }
        let mut stats = HitStats::new();
        stats.record(false, ByteSize::mb(10), 0);
        stats.record(true, ByteSize::mb(10), 1);
        DurableCheckpoint {
            snapshot: CacheSnapshot::take(cache.as_ref(), PolicyKind::Lru, Timestamp(3)),
            stats,
            seq: 2,
        }
    }

    #[test]
    fn checkpoint_json_round_trips_and_rejects_other_versions() {
        let ckpt = sample_checkpoint();
        let json = ckpt.to_json();
        assert_eq!(DurableCheckpoint::from_json(&json).unwrap(), ckpt);
        let future = json.replacen("\"version\":2", "\"version\":7", 1);
        let err = DurableCheckpoint::from_json(&future).unwrap_err();
        assert!(err.contains("not supported"), "weak rejection: {err}");
        assert!(
            err.contains("version 2"),
            "names what this build reads: {err}"
        );
        // A version-1 (whole-clip) checkpoint refuses naming both
        // versions — never silently restored without prefix state.
        let v1 = json.replacen("\"version\":2", "\"version\":1", 1);
        let err = DurableCheckpoint::from_json(&v1).unwrap_err();
        assert!(err.contains("version 1"), "names the found version: {err}");
        assert!(err.contains("whole-clip"), "says why: {err}");
        // An unsupported *snapshot* version nested inside also refuses.
        let nested = json.replace("\"snapshot\":{\"version\":2", "\"snapshot\":{\"version\":9");
        assert!(DurableCheckpoint::from_json(&nested).is_err());
        assert!(DurableCheckpoint::from_json("{}").is_err());
        assert!(DurableCheckpoint::from_json("not json").is_err());
    }

    #[test]
    fn store_persists_appends_and_checkpoints_across_reopens() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut store, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
            assert!(state.checkpoint.is_none());
            assert!(state.records.is_empty());
            assert_eq!(store.append(WalOp::Get, ClipId::new(5)).unwrap(), 1);
            assert_eq!(store.append(WalOp::Admit, ClipId::new(6)).unwrap(), 2);
        }
        {
            let (mut store, state) = ShardStore::open(&dir, WalSync::Always).unwrap();
            assert_eq!(
                state.records,
                vec![record(1, 5, WalOp::Get), record(2, 6, WalOp::Admit)]
            );
            assert_eq!(state.torn_bytes_dropped, 0);
            // Checkpoint subsumes the log.
            let mut ckpt = sample_checkpoint();
            ckpt.seq = 2;
            store.checkpoint(&ckpt).unwrap();
            assert_eq!(store.append(WalOp::Get, ClipId::new(7)).unwrap(), 3);
        }
        let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        let ckpt = state.checkpoint.expect("checkpoint survived");
        assert_eq!(ckpt.seq, 2);
        assert_eq!(state.records, vec![record(3, 7, WalOp::Get)]);
    }

    #[test]
    fn range_probes_persist_with_their_chunk() {
        let dir = tmp_dir("range");
        {
            let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
            store.append(WalOp::Get, ClipId::new(2)).unwrap();
            store.append_range(ClipId::new(2), 7).unwrap();
        }
        let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        assert_eq!(
            state.records,
            vec![record(1, 2, WalOp::Get), range_record(2, 2, 7)]
        );
    }

    #[test]
    #[should_panic(expected = "GETRANGE records go through append_range")]
    fn append_refuses_getrange_ops() {
        let dir = tmp_dir("append-range-misuse");
        let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
        let _ = store.append(WalOp::GetRange, ClipId::new(1));
    }

    #[test]
    fn open_truncates_a_torn_tail_and_reports_it() {
        let dir = tmp_dir("torn");
        {
            let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
            store.append(WalOp::Get, ClipId::new(1)).unwrap();
            store.arm_crash(Some(CrashSpec::parse("torn:1").unwrap()));
            assert!(matches!(
                store.append(WalOp::Get, ClipId::new(2)),
                Err(PersistError::CrashInjected)
            ));
            // The store is dead now, like the process it models.
            assert!(matches!(
                store.append(WalOp::Get, ClipId::new(3)),
                Err(PersistError::CrashInjected)
            ));
        }
        let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        assert_eq!(state.records, vec![record(1, 1, WalOp::Get)]);
        assert!(state.torn_bytes_dropped > 0, "the torn tail was dropped");
        // Second open: the tail is gone, the log is clean.
        let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        assert_eq!(state.torn_bytes_dropped, 0);
    }

    #[test]
    fn crash_after_append_keeps_the_record_durable() {
        let dir = tmp_dir("after-append");
        {
            let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
            store.arm_crash(Some(CrashSpec::parse("append:2").unwrap()));
            store.append(WalOp::Get, ClipId::new(1)).unwrap();
            assert!(matches!(
                store.append(WalOp::Get, ClipId::new(2)),
                Err(PersistError::CrashInjected)
            ));
        }
        let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        // Both records survive: append:N dies *after* durability.
        assert_eq!(state.records.len(), 2);
        assert_eq!(state.torn_bytes_dropped, 0);
    }

    #[test]
    fn crash_mid_checkpoint_keeps_the_old_checkpoint_and_wal() {
        let dir = tmp_dir("mid-ckpt");
        let mut first = sample_checkpoint();
        first.seq = 0;
        {
            let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
            store.checkpoint(&first).unwrap();
            store.append(WalOp::Get, ClipId::new(1)).unwrap();
            store.append(WalOp::Get, ClipId::new(2)).unwrap();
            store.arm_crash(Some(CrashSpec::parse("checkpoint:1").unwrap()));
            let mut second = sample_checkpoint();
            second.seq = 2;
            assert!(matches!(
                store.checkpoint(&second),
                Err(PersistError::CrashInjected)
            ));
        }
        assert!(dir.join(CHECKPOINT_TMP).exists(), "tmp half-written");
        let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        // The old checkpoint and the full WAL both survive; the torn tmp
        // is swept away.
        assert_eq!(state.checkpoint.expect("old checkpoint").seq, 0);
        assert_eq!(state.records.len(), 2);
        assert!(!dir.join(CHECKPOINT_TMP).exists());
    }

    #[test]
    fn sequence_breaks_are_corruption() {
        let dir = tmp_dir("seq-break");
        {
            let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
            store.append(WalOp::Get, ClipId::new(1)).unwrap();
        }
        // Forge a record with a gapped sequence number on the end.
        let mut bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        bytes.extend_from_slice(&record(5, 2, WalOp::Get).encode());
        std::fs::write(dir.join(WAL_FILE), &bytes).unwrap();
        assert!(matches!(
            ShardStore::open(&dir, WalSync::Off),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn records_subsumed_by_the_checkpoint_are_skipped_on_open() {
        let dir = tmp_dir("subsumed");
        let wal_bytes = {
            let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
            store.append(WalOp::Get, ClipId::new(1)).unwrap();
            store.append(WalOp::Get, ClipId::new(2)).unwrap();
            let pre_checkpoint = std::fs::read(dir.join(WAL_FILE)).unwrap();
            let mut ckpt = sample_checkpoint();
            ckpt.seq = 2;
            store.checkpoint(&ckpt).unwrap();
            pre_checkpoint
        };
        // Simulate a crash between the checkpoint rename and the WAL
        // truncation: the subsumed records reappear on disk.
        std::fs::write(dir.join(WAL_FILE), &wal_bytes).unwrap();
        let (mut store, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        assert_eq!(state.checkpoint.expect("checkpoint intact").seq, 2);
        assert!(state.records.is_empty(), "subsumed records not replayed");
        assert_eq!(state.subsumed_records, 2);
        assert_eq!(state.torn_bytes_dropped, 0);
        // Open finished the interrupted truncation.
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        // Appends continue the chain exactly where the checkpoint ends.
        assert_eq!(store.append(WalOp::Get, ClipId::new(3)).unwrap(), 3);
        drop(store);
        let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        assert_eq!(state.records, vec![record(3, 3, WalOp::Get)]);
        assert_eq!(state.subsumed_records, 0);

        // A stale prefix *plus* live records skips only the prefix.
        let mut mixed = wal_bytes.clone();
        mixed.extend_from_slice(&record(3, 3, WalOp::Get).encode());
        std::fs::write(dir.join(WAL_FILE), &mixed).unwrap();
        let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        assert_eq!(state.subsumed_records, 2);
        assert_eq!(state.records, vec![record(3, 3, WalOp::Get)]);

        // Recovery from a subsumed prefix is deterministic: a second
        // open of the same bytes agrees.
        std::fs::write(dir.join(WAL_FILE), &mixed).unwrap();
        let (_, again) = ShardStore::open(&dir, WalSync::Off).unwrap();
        assert_eq!(again.records, state.records);
        assert_eq!(again.subsumed_records, state.subsumed_records);

        // A gap after the checkpoint is still corruption (records 3..4
        // missing), as is a 0 sequence number.
        std::fs::write(dir.join(WAL_FILE), record(5, 1, WalOp::Get).encode()).unwrap();
        assert!(matches!(
            ShardStore::open(&dir, WalSync::Off),
            Err(PersistError::Corrupt { .. })
        ));
        std::fs::write(dir.join(WAL_FILE), record(0, 1, WalOp::Get).encode()).unwrap();
        assert!(matches!(
            ShardStore::open(&dir, WalSync::Off),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn inflated_length_prefix_is_corruption_not_a_torn_tail() {
        let mut log = Vec::new();
        for seq in 1..=3 {
            log.extend_from_slice(&record(seq, seq as u32, WalOp::Get).encode());
        }
        let frame = FRAME_HEADER_BYTES + RECORD_PAYLOAD_BYTES;
        // Inflate the middle record's length so it claims more bytes
        // than remain: the valid final frame must not be silently
        // swallowed as a "torn tail".
        let mut corrupt = log.clone();
        corrupt[frame + 1] ^= 0x10;
        match decode_wal(&corrupt) {
            Err(PersistError::Corrupt { offset, .. }) => assert_eq!(offset, frame as u64),
            other => panic!("bad length must be loud, got {other:?}"),
        }
        // Same for the final frame, and for a deflated length: the
        // length field is written first, so a complete-but-wrong value
        // is never a crash artifact.
        let mut tail = log.clone();
        tail[2 * frame] ^= 0x02;
        assert!(matches!(
            decode_wal(&tail),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn a_failed_checkpoint_kills_the_store() {
        let dir = tmp_dir("ckpt-io-fail");
        let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
        store.append(WalOp::Get, ClipId::new(1)).unwrap();
        // Rip the directory out from under the store so the tmp-file
        // write fails mid-checkpoint.
        std::fs::remove_dir_all(&dir).unwrap();
        let mut ckpt = sample_checkpoint();
        ckpt.seq = 1;
        assert!(matches!(store.checkpoint(&ckpt), Err(PersistError::Io(_))));
        // Disk and memory can no longer be reconciled: the store refuses
        // every later operation instead of silently diverging.
        assert!(matches!(
            store.append(WalOp::Get, ClipId::new(2)),
            Err(PersistError::CrashInjected)
        ));
        assert!(matches!(
            store.checkpoint(&ckpt),
            Err(PersistError::CrashInjected)
        ));
        assert!(matches!(
            store.rewind_to_checkpoint(),
            Err(PersistError::CrashInjected)
        ));
    }

    #[test]
    fn rewind_discards_post_checkpoint_records() {
        let dir = tmp_dir("rewind");
        {
            let (mut store, _) = ShardStore::open(&dir, WalSync::Off).unwrap();
            let mut ckpt = sample_checkpoint();
            ckpt.seq = 0;
            store.checkpoint(&ckpt).unwrap();
            store.append(WalOp::Get, ClipId::new(1)).unwrap();
            store.append(WalOp::Get, ClipId::new(2)).unwrap();
            store.rewind_to_checkpoint().unwrap();
            // Sequence numbers restart from the checkpoint.
            assert_eq!(store.append(WalOp::Get, ClipId::new(9)).unwrap(), 1);
        }
        let (_, state) = ShardStore::open(&dir, WalSync::Off).unwrap();
        assert_eq!(state.records, vec![record(1, 9, WalOp::Get)]);
    }
}
