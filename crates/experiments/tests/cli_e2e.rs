//! End-to-end tests of the three binaries: real processes, real argv,
//! real files — the full `tracegen → simulate → repro` workflow a user
//! runs. Cargo exposes each binary's path via `CARGO_BIN_EXE_*`.

use std::path::PathBuf;
use std::process::Command;

fn bin(name: &str) -> Command {
    let path = match name {
        "repro" => env!("CARGO_BIN_EXE_repro"),
        "simulate" => env!("CARGO_BIN_EXE_simulate"),
        "tracegen" => env!("CARGO_BIN_EXE_tracegen"),
        other => panic!("unknown binary {other}"),
    };
    Command::new(path)
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("clipcache-e2e-{}-{name}", std::process::id()));
    p
}

#[test]
fn tracegen_then_simulate_round_trip() {
    let trace = tmp("trace.txt");
    let out = bin("tracegen")
        .args([
            "gen",
            "--clips",
            "64",
            "--requests",
            "500",
            "--seed",
            "3",
            "--format",
            "text",
            "--out",
        ])
        .arg(&trace)
        .output()
        .expect("tracegen runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin("simulate")
        .args(["--policy", "dynsimple:2", "--clips", "64", "--trace"])
        .arg(&trace)
        .output()
        .expect("simulate runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hit rate:"), "{stdout}");
    assert!(stdout.contains("requests:      500"), "{stdout}");

    let _ = std::fs::remove_file(&trace);
}

#[test]
fn tracegen_info_reports_mattson_curve() {
    let trace = tmp("info.json");
    assert!(bin("tracegen")
        .args(["gen", "--clips", "32", "--requests", "300", "--out"])
        .arg(&trace)
        .status()
        .unwrap()
        .success());
    let out = bin("tracegen").arg("info").arg(&trace).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cold misses:"), "{stdout}");
    assert!(
        stdout.contains("Mattson-predicted LRU hit rate:"),
        "{stdout}"
    );
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn simulate_snapshot_restore_cycle() {
    let snap = tmp("snap.json");
    assert!(bin("simulate")
        .args([
            "--policy",
            "lru-2",
            "--clips",
            "48",
            "--requests",
            "400",
            "--snapshot-out",
        ])
        .arg(&snap)
        .status()
        .unwrap()
        .success());
    let out = bin("simulate")
        .args([
            "--policy",
            "lru-2",
            "--clips",
            "48",
            "--requests",
            "400",
            "--restore",
        ])
        .arg(&snap)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("restored"));
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn simulate_comparison_mode_prints_all_policies() {
    let out = bin("simulate")
        .args([
            "--policy",
            "dynsimple:2,lru-2,random",
            "--clips",
            "48",
            "--requests",
            "300",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["DYNSimple(K=2)", "LRU-2", "Random"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn repro_runs_one_experiment_and_writes_outputs() {
    let dir = tmp("results");
    let out = bin("repro")
        .args(["--scale", "0.02", "--out"])
        .arg(&dir)
        .arg("fig3")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fig3"));
    assert!(dir.join("fig3.csv").exists());
    assert!(dir.join("fig3.md").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_custom_sweep_from_json() {
    let cfg = tmp("sweep.json");
    std::fs::write(
        &cfg,
        r#"{
            "id": "e2e",
            "title": "e2e sweep",
            "repository": { "kind": "equi", "clips": 24, "size_mb": 100 },
            "policies": ["lru", "random"],
            "ratios": [0.25],
            "requests": 200,
            "seed": 1
        }"#,
    )
    .unwrap();
    let out = bin("repro").arg("--custom").arg(&cfg).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("e2e_hit"));
    assert!(stdout.contains("LRU"));
    let _ = std::fs::remove_file(&cfg);
}

#[test]
fn binaries_reject_bad_input_with_nonzero_exit() {
    assert!(!bin("simulate")
        .args(["--policy", "made-up-policy"])
        .status()
        .unwrap()
        .success());
    assert!(!bin("repro")
        .arg("no-such-experiment")
        .status()
        .unwrap()
        .success());
    assert!(!bin("tracegen")
        .arg("bogus-subcommand")
        .status()
        .unwrap()
        .success());
}
