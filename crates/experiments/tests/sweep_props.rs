//! Property tests of the point-level sweep engine: submission order and
//! results must be invariant under the worker count.
//!
//! The `proptest!` cases exercise arbitrary point counts and job counts
//! when the real `proptest` crate is available; the plain `#[test]`
//! below keeps a deterministic grid of the same property alive under
//! the offline stub (see `vendor/README.md`).

use clipcache_experiments::sweep::run_points;
use clipcache_workload::{RequestGenerator, Trace};
use proptest::prelude::*;

/// SplitMix64 — an arbitrary per-point computation whose output depends
/// only on the point, never on the executing thread.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn outputs(n: u64, jobs: usize) -> Vec<u64> {
    let points: Vec<u64> = (0..n).collect();
    run_points(&points, jobs, |i, &p| mix(p) ^ (i as u64))
}

#[test]
fn ordering_is_jobs_invariant_on_a_grid() {
    for n in [0u64, 1, 2, 7, 64, 257] {
        let serial = outputs(n, 1);
        assert_eq!(serial.len(), n as usize);
        for jobs in [2usize, 3, 4, 8, 33] {
            assert_eq!(serial, outputs(n, jobs), "n={n} jobs={jobs}");
        }
    }
}

/// Partition a seeded trace into shards, digest each shard's requests
/// under `jobs` workers, and fold. The digest must not depend on the
/// worker count — the property the sharded serving layer's loadgen
/// relies on when it replays per-shard sub-traces from client threads.
fn partitioned_digest(shards: usize, jobs: usize) -> Vec<u64> {
    let trace = Trace::from_generator(RequestGenerator::new(40, 0.27, 0, 400, 0x5EED));
    let parts = trace.partition_by(shards, |_, r| {
        (mix(r.clip.get() as u64) % shards as u64) as usize
    });
    run_points(&parts, jobs, |i, part| {
        part.iter().fold(i as u64, |acc, r| {
            mix(acc ^ mix(r.clip.get() as u64) ^ r.at.get())
        })
    })
}

#[test]
fn partitioned_replay_is_jobs_invariant_on_a_grid() {
    for shards in [1usize, 2, 4, 8] {
        let serial = partitioned_digest(shards, 1);
        for jobs in [2usize, 3, 8] {
            assert_eq!(
                serial,
                partitioned_digest(shards, jobs),
                "shards={shards} jobs={jobs}"
            );
        }
    }
}

proptest! {
    #[test]
    fn ordering_is_jobs_invariant(n in 0u64..200, jobs in 1usize..32) {
        prop_assert_eq!(outputs(n, 1), outputs(n, jobs));
    }

    #[test]
    fn every_index_is_visited_once(n in 1u64..200, jobs in 1usize..32) {
        let points: Vec<u64> = (0..n).collect();
        let indices = run_points(&points, jobs, |i, _| i);
        prop_assert_eq!(indices, (0..n as usize).collect::<Vec<_>>());
    }

    #[test]
    fn partitioned_replay_is_jobs_invariant(shards in 1usize..9, jobs in 1usize..16) {
        prop_assert_eq!(partitioned_digest(shards, 1), partitioned_digest(shards, jobs));
    }
}
