//! Point-level parallel sweep engine.
//!
//! Every figure replays thousands of requests per (policy, parameter)
//! data point, and the points are mutually independent: each one builds
//! its own cache, seeds its own randomness from
//! [`ExperimentContext::sub_seed`](crate::ExperimentContext::sub_seed),
//! and only reads shared immutable inputs (the repository, a
//! pre-materialized trace). That makes a sweep embarrassingly parallel
//! *per point*, not just per figure.
//!
//! [`run_points`] fans a slice of points out over scoped worker threads
//! with a work-stealing atomic cursor and writes each result into the
//! slot matching its submission index, so the output order — and, since
//! every point's computation is self-contained and deterministically
//! seeded, every output *value* — is bit-identical at any `jobs` count.
//! `repro --jobs 1` and `repro --jobs 64` must produce byte-identical
//! CSVs; a test below and the CI figure-drift job both pin that.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `points`, fanning out across `jobs` worker threads.
///
/// `f` receives each point's submission index and the point itself; the
/// returned vector preserves submission order regardless of which
/// worker computed which point. With `jobs <= 1` (or fewer than two
/// points) everything runs inline on the caller's thread — the serial
/// path and the parallel path execute the exact same per-point code, so
/// results cannot depend on `jobs`.
///
/// # Panics
/// Propagates a panic from `f` once the worker scope joins.
pub fn run_points<I, O, F>(points: &[I], jobs: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    if jobs <= 1 || points.len() <= 1 {
        return points.iter().enumerate().map(|(i, p)| f(i, p)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = points.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(points.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let out = f(i, &points[i]);
                *slots[i].lock().expect("no panic holds a slot lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no panic holds a slot lock")
                .expect("every slot filled before the scope joins")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_submission_order() {
        let points: Vec<usize> = (0..37).collect();
        for jobs in [1, 2, 3, 4, 8, 64] {
            let out = run_points(&points, jobs, |i, &p| {
                assert_eq!(i, p);
                p * 10
            });
            assert_eq!(
                out,
                (0..37).map(|p| p * 10).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let points: Vec<u64> = (0..100).collect();
        let f = |_: usize, &p: &u64| {
            // A little arithmetic with float rounding, to catch any
            // scheme that would reassociate per-point work.
            (0..50).fold(p as f64, |acc, k| (acc * 1.000001 + k as f64).sqrt())
        };
        let serial = run_points(&points, 1, f);
        for jobs in [2, 4, 7] {
            let parallel = run_points(&points, jobs, f);
            // Bit-identical, not approximately equal.
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.to_bits(), b.to_bits(), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn every_point_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let points: Vec<u32> = (0..257).collect();
        let out = run_points(&points, 8, |_, &p| {
            calls.fetch_add(1, Ordering::Relaxed);
            p
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn empty_and_single_point_sweeps() {
        let none: Vec<u8> = vec![];
        assert!(run_points(&none, 4, |_, &p| p).is_empty());
        assert_eq!(run_points(&[9u8], 4, |_, &p| p), vec![9]);
    }

    #[test]
    fn oversubscribed_jobs_are_harmless() {
        let points: Vec<usize> = (0..3).collect();
        assert_eq!(run_points(&points, 1000, |_, &p| p + 1), vec![1, 2, 3]);
    }
}
