//! User-defined sweeps from a JSON config.
//!
//! The built-in experiments pin the paper's parameters. `repro --custom
//! sweep.json` runs *your* sweep with the same machinery:
//!
//! ```json
//! {
//!   "id": "my-sweep",
//!   "title": "DYNSimple vs LRU-2 on a heavy-tailed repository",
//!   "repository": { "kind": "lognormal", "clips": 1000, "sigma": 2.0 },
//!   "policies": ["dynsimple:2", "lru-2", "greedydual"],
//!   "ratios": [0.05, 0.1, 0.2],
//!   "requests": 10000,
//!   "theta": 0.27,
//!   "seed": 7
//! }
//! ```
//!
//! Policies use the registry's command-line spellings
//! ([`PolicyKind::from_str`](clipcache_core::PolicyKind)); off-line
//! policies receive the sweep's analytic frequencies automatically.

use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::{paper, ByteSize, Repository};
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::synthetic::{lognormal_repository, LognormalSpec};
use clipcache_workload::{RequestGenerator, ShiftedZipf, Trace, Zipf};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which repository a custom sweep runs against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "lowercase")]
pub enum RepoSpec {
    /// The paper's variable-sized pattern.
    Variable {
        /// Clip count (default 576).
        #[serde(default = "default_clips")]
        clips: usize,
    },
    /// Equal-size clips.
    Equi {
        /// Clip count (default 576).
        #[serde(default = "default_clips")]
        clips: usize,
        /// Clip size in megabytes (default 1000).
        #[serde(default = "default_equi_mb")]
        size_mb: u64,
    },
    /// Heavy-tailed lognormal sizes.
    Lognormal {
        /// Clip count (default 576).
        #[serde(default = "default_clips")]
        clips: usize,
        /// Shape parameter (default 1.8).
        #[serde(default = "default_sigma")]
        sigma: f64,
    },
}

fn default_clips() -> usize {
    576
}
fn default_equi_mb() -> u64 {
    1_000
}
fn default_sigma() -> f64 {
    1.8
}
fn default_requests() -> u64 {
    10_000
}
fn default_theta() -> f64 {
    0.27
}
fn default_seed() -> u64 {
    7
}

/// A user-defined ratio sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomSweep {
    /// Identifier (used for output file names).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The repository to simulate.
    pub repository: RepoSpec,
    /// Registry spellings of the policies to compare.
    pub policies: Vec<String>,
    /// The `S_T / S_DB` values swept.
    pub ratios: Vec<f64>,
    /// Requests per data point.
    #[serde(default = "default_requests")]
    pub requests: u64,
    /// Zipf parameter.
    #[serde(default = "default_theta")]
    pub theta: f64,
    /// Workload seed.
    #[serde(default = "default_seed")]
    pub seed: u64,
}

impl CustomSweep {
    /// Parse a sweep from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let sweep: CustomSweep = serde_json::from_str(json).map_err(|e| e.to_string())?;
        sweep.validate()?;
        Ok(sweep)
    }

    fn validate(&self) -> Result<(), String> {
        if self.policies.is_empty() {
            return Err("a sweep needs at least one policy".into());
        }
        if self.ratios.is_empty() {
            return Err("a sweep needs at least one ratio".into());
        }
        for r in &self.ratios {
            if !(0.0..=1.0).contains(r) {
                return Err(format!("ratio {r} outside [0, 1]"));
            }
        }
        if !(0.0..1.0).contains(&self.theta) {
            return Err(format!("theta {} outside [0, 1)", self.theta));
        }
        if self.requests == 0 {
            return Err("requests must be positive".into());
        }
        for p in &self.policies {
            p.parse::<PolicyKind>()?;
        }
        Ok(())
    }

    fn build_repo(&self) -> Arc<Repository> {
        Arc::new(match self.repository {
            RepoSpec::Variable { clips } => paper::variable_sized_repository_of(clips),
            RepoSpec::Equi { clips, size_mb } => {
                paper::equi_sized_repository_of(clips, ByteSize::mb(size_mb))
            }
            RepoSpec::Lognormal { clips, sigma } => lognormal_repository(
                LognormalSpec {
                    clips,
                    sigma,
                    ..LognormalSpec::default()
                },
                self.seed,
            ),
        })
    }

    /// Run the sweep: one hit-rate figure and one byte-hit-rate figure.
    pub fn run(&self) -> Result<Vec<FigureResult>, String> {
        self.validate()?;
        let repo = self.build_repo();
        let trace = Trace::from_generator(RequestGenerator::new(
            repo.len(),
            self.theta,
            0,
            self.requests,
            self.seed,
        ));
        let freqs = ShiftedZipf::new(Zipf::new(repo.len(), self.theta), 0).frequencies();
        let config = SimulationConfig::default();

        let mut hit_series = Vec::new();
        let mut byte_series = Vec::new();
        for spec in &self.policies {
            let policy: PolicyKind = spec.parse()?;
            let mut hits = Vec::with_capacity(self.ratios.len());
            let mut bytes = Vec::with_capacity(self.ratios.len());
            for &ratio in &self.ratios {
                let mut cache = policy
                    .try_build(
                        Arc::clone(&repo),
                        repo.cache_capacity_for_ratio(ratio),
                        self.seed,
                        Some(&freqs),
                    )
                    .map_err(|e| e.to_string())?;
                let report = simulate(cache.as_mut(), &repo, trace.requests(), &config);
                hits.push(report.hit_rate());
                bytes.push(report.byte_hit_rate());
            }
            hit_series.push(Series::new(policy.to_string(), hits));
            byte_series.push(Series::new(policy.to_string(), bytes));
        }
        let x: Vec<String> = self.ratios.iter().map(|r| r.to_string()).collect();
        Ok(vec![
            FigureResult::new(
                format!("{}_hit", self.id),
                format!("{} — cache hit rate", self.title),
                "S_T/S_DB",
                x.clone(),
                hit_series,
            ),
            FigureResult::new(
                format!("{}_byte", self.id),
                format!("{} — byte hit rate", self.title),
                "S_T/S_DB",
                x,
                byte_series,
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_json() -> &'static str {
        r#"{
            "id": "demo",
            "title": "demo sweep",
            "repository": { "kind": "lognormal", "clips": 48, "sigma": 1.5 },
            "policies": ["dynsimple:2", "lru-2"],
            "ratios": [0.1, 0.3],
            "requests": 800,
            "seed": 3
        }"#
    }

    #[test]
    fn parses_and_runs() {
        let sweep = CustomSweep::from_json(sample_json()).unwrap();
        assert_eq!(sweep.theta, 0.27); // default applied
        let figs = sweep.run().unwrap();
        assert_eq!(figs.len(), 2);
        assert_eq!(figs[0].id, "demo_hit");
        assert_eq!(figs[0].series.len(), 2);
        assert_eq!(figs[0].series[0].values.len(), 2);
        for s in &figs[0].series {
            for v in &s.values {
                assert!((0.0..=1.0).contains(v));
            }
        }
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(CustomSweep::from_json("{}").is_err());
        let bad_policy = sample_json().replace("lru-2", "frobnicate");
        assert!(CustomSweep::from_json(&bad_policy)
            .unwrap_err()
            .contains("frobnicate"));
        let bad_ratio = sample_json().replace("0.3", "1.5");
        assert!(CustomSweep::from_json(&bad_ratio)
            .unwrap_err()
            .contains("outside"));
    }

    #[test]
    fn repo_specs_build() {
        for repo_json in [
            r#"{ "kind": "variable" }"#,
            r#"{ "kind": "equi", "clips": 10, "size_mb": 100 }"#,
            r#"{ "kind": "lognormal" }"#,
        ] {
            let spec: RepoSpec = serde_json::from_str(repo_json).unwrap();
            let sweep = CustomSweep {
                id: "x".into(),
                title: "x".into(),
                repository: spec,
                policies: vec!["lru".into()],
                ratios: vec![0.1],
                requests: 100,
                theta: 0.27,
                seed: 1,
            };
            assert!(!sweep.build_repo().is_empty());
        }
    }

    #[test]
    fn offline_policies_get_frequencies() {
        let json = sample_json().replace("\"lru-2\"", "\"simple\"");
        let sweep = CustomSweep::from_json(&json).unwrap();
        let figs = sweep.run().unwrap();
        assert!(figs[0].series.iter().any(|s| s.name == "Simple"));
    }
}
