//! User-defined sweeps from a JSON config.
//!
//! The built-in experiments pin the paper's parameters. `repro --custom
//! sweep.json` runs *your* sweep with the same machinery:
//!
//! ```json
//! {
//!   "id": "my-sweep",
//!   "title": "DYNSimple vs LRU-2 on a heavy-tailed repository",
//!   "repository": { "kind": "lognormal", "clips": 1000, "sigma": 2.0 },
//!   "policies": ["dynsimple:2", "lru-2", "greedydual"],
//!   "ratios": [0.05, 0.1, 0.2],
//!   "requests": 10000,
//!   "theta": 0.27,
//!   "seed": 7
//! }
//! ```
//!
//! Policies use the registry's command-line spellings
//! ([`PolicySpec::from_str`](clipcache_core::PolicySpec)), including the
//! `@heap` victim-index suffix (`"lfu@heap"`); off-line policies receive
//! the sweep's analytic frequencies automatically. Configs are parsed
//! with [`crate::json`], so custom sweeps work even in the offline
//! builds that stub out `serde_json`.

use crate::context::ExperimentContext;
use crate::json::{self, Json};
use crate::report::{FigureResult, Series};
use clipcache_core::{PolicySpec, VictimBackend};
use clipcache_media::{paper, ByteSize, Repository};
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::synthetic::{lognormal_repository, LognormalSpec};
use clipcache_workload::{RequestGenerator, ShiftedZipf, Trace, Zipf};
use std::sync::Arc;

/// Which repository a custom sweep runs against.
#[derive(Debug, Clone, PartialEq)]
pub enum RepoSpec {
    /// The paper's variable-sized pattern.
    Variable {
        /// Clip count (default 576).
        clips: usize,
    },
    /// Equal-size clips.
    Equi {
        /// Clip count (default 576).
        clips: usize,
        /// Clip size in megabytes (default 1000).
        size_mb: u64,
    },
    /// Heavy-tailed lognormal sizes.
    Lognormal {
        /// Clip count (default 576).
        clips: usize,
        /// Shape parameter (default 1.8).
        sigma: f64,
    },
}

fn default_clips() -> usize {
    576
}
fn default_equi_mb() -> u64 {
    1_000
}
fn default_sigma() -> f64 {
    1.8
}
fn default_requests() -> u64 {
    10_000
}
fn default_theta() -> f64 {
    0.27
}
fn default_seed() -> u64 {
    7
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .ok_or_else(|| format!("missing field `{key}`"))?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("field `{key}` must be a string"))
}

fn opt_u64(v: &Json, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(n) => n
            .as_u64()
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn opt_usize(v: &Json, key: &str, default: usize) -> Result<usize, String> {
    opt_u64(v, key, default as u64).map(|n| n as usize)
}

fn opt_f64(v: &Json, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(n) => n
            .as_f64()
            .ok_or_else(|| format!("field `{key}` must be a number")),
    }
}

impl RepoSpec {
    /// Parse from a parsed JSON object: `{ "kind": "...", ... }` with
    /// per-kind optional fields.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let kind = req_str(v, "kind")?;
        let clips = opt_usize(v, "clips", default_clips())?;
        match kind.as_str() {
            "variable" => Ok(RepoSpec::Variable { clips }),
            "equi" => Ok(RepoSpec::Equi {
                clips,
                size_mb: opt_u64(v, "size_mb", default_equi_mb())?,
            }),
            "lognormal" => Ok(RepoSpec::Lognormal {
                clips,
                sigma: opt_f64(v, "sigma", default_sigma())?,
            }),
            other => Err(format!(
                "unknown repository kind `{other}` (expected variable, equi, or lognormal)"
            )),
        }
    }
}

/// A user-defined ratio sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomSweep {
    /// Identifier (used for output file names).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The repository to simulate.
    pub repository: RepoSpec,
    /// Registry spellings of the policies to compare.
    pub policies: Vec<String>,
    /// The `S_T / S_DB` values swept.
    pub ratios: Vec<f64>,
    /// Requests per data point (default 10000).
    pub requests: u64,
    /// Zipf parameter (default 0.27).
    pub theta: f64,
    /// Workload seed (default 7).
    pub seed: u64,
}

impl CustomSweep {
    /// Parse a sweep from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        if !matches!(v, Json::Obj(_)) {
            return Err("a sweep config must be a JSON object".into());
        }
        let repository =
            RepoSpec::from_json_value(v.get("repository").ok_or("missing field `repository`")?)?;
        let policies = v
            .get("policies")
            .ok_or("missing field `policies`")?
            .as_array()
            .ok_or("field `policies` must be an array")?
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| "field `policies` must contain strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let ratios = v
            .get("ratios")
            .ok_or("missing field `ratios`")?
            .as_array()
            .ok_or("field `ratios` must be an array")?
            .iter()
            .map(|r| {
                r.as_f64()
                    .ok_or_else(|| "field `ratios` must contain numbers".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let sweep = CustomSweep {
            id: req_str(&v, "id")?,
            title: req_str(&v, "title")?,
            repository,
            policies,
            ratios,
            requests: opt_u64(&v, "requests", default_requests())?,
            theta: opt_f64(&v, "theta", default_theta())?,
            seed: opt_u64(&v, "seed", default_seed())?,
        };
        sweep.validate()?;
        Ok(sweep)
    }

    fn validate(&self) -> Result<(), String> {
        if self.policies.is_empty() {
            return Err("a sweep needs at least one policy".into());
        }
        if self.ratios.is_empty() {
            return Err("a sweep needs at least one ratio".into());
        }
        for r in &self.ratios {
            if !(0.0..=1.0).contains(r) {
                return Err(format!("ratio {r} outside [0, 1]"));
            }
        }
        if !(0.0..1.0).contains(&self.theta) {
            return Err(format!("theta {} outside [0, 1)", self.theta));
        }
        if self.requests == 0 {
            return Err("requests must be positive".into());
        }
        for p in &self.policies {
            p.parse::<PolicySpec>()?;
        }
        Ok(())
    }

    fn build_repo(&self) -> Arc<Repository> {
        Arc::new(match self.repository {
            RepoSpec::Variable { clips } => paper::variable_sized_repository_of(clips),
            RepoSpec::Equi { clips, size_mb } => {
                paper::equi_sized_repository_of(clips, ByteSize::mb(size_mb))
            }
            RepoSpec::Lognormal { clips, sigma } => lognormal_repository(
                LognormalSpec {
                    clips,
                    sigma,
                    ..LognormalSpec::default()
                },
                self.seed,
            ),
        })
    }

    /// Run the sweep serially. Equivalent to [`run_with`](Self::run_with)
    /// on a default (single-job) context.
    pub fn run(&self) -> Result<Vec<FigureResult>, String> {
        self.run_with(&ExperimentContext::default())
    }

    /// Run the sweep on `ctx`'s worker pool: one hit-rate figure and one
    /// byte-hit-rate figure.
    ///
    /// Only `ctx.jobs` and its [`SweepStats`](crate::SweepStats) are
    /// consulted — the workload is driven entirely by the sweep's own
    /// `requests`/`theta`/`seed` fields, so the output is bit-identical
    /// at any job count (and to the serial [`run`](Self::run)).
    pub fn run_with(&self, ctx: &ExperimentContext) -> Result<Vec<FigureResult>, String> {
        self.validate()?;
        let repo = self.build_repo();
        let trace = Trace::from_generator(RequestGenerator::new(
            repo.len(),
            self.theta,
            0,
            self.requests,
            self.seed,
        ));
        let freqs = ShiftedZipf::new(Zipf::new(repo.len(), self.theta), 0).frequencies();
        let config = SimulationConfig::default();
        let policies: Vec<PolicySpec> = self
            .policies
            .iter()
            .map(|s| s.parse())
            .collect::<Result<_, String>>()?;

        // The (policy, ratio) grid as independent points, row-major by
        // policy so rows reassemble by chunking.
        let grid: Vec<(usize, f64)> = (0..policies.len())
            .flat_map(|pi| self.ratios.iter().map(move |&r| (pi, r)))
            .collect();
        let cells = ctx.run_points(&grid, |_, &(pi, ratio)| {
            policies[pi]
                .try_build(
                    Arc::clone(&repo),
                    repo.cache_capacity_for_ratio(ratio),
                    self.seed,
                    Some(&freqs),
                )
                .map_err(|e| e.to_string())
                .map(|mut cache| {
                    let report = simulate(cache.as_mut(), &repo, trace.requests(), &config);
                    (report.hit_rate(), report.byte_hit_rate())
                })
        });
        let cells: Vec<(f64, f64)> = cells.into_iter().collect::<Result<_, _>>()?;

        let mut hit_series = Vec::with_capacity(policies.len());
        let mut byte_series = Vec::with_capacity(policies.len());
        for (pi, policy) in policies.iter().enumerate() {
            let row = &cells[pi * self.ratios.len()..(pi + 1) * self.ratios.len()];
            // Heap entries keep their `@heap` suffix so a sweep listing
            // both backends of one policy stays distinguishable.
            let name = match policy.backend {
                VictimBackend::Scan => policy.to_string(),
                VictimBackend::Heap => policy.spelling(),
            };
            hit_series.push(Series::new(name.clone(), row.iter().map(|c| c.0).collect()));
            byte_series.push(Series::new(name, row.iter().map(|c| c.1).collect()));
        }
        let x: Vec<String> = self.ratios.iter().map(|r| r.to_string()).collect();
        Ok(vec![
            FigureResult::new(
                format!("{}_hit", self.id),
                format!("{} — cache hit rate", self.title),
                "S_T/S_DB",
                x.clone(),
                hit_series,
            ),
            FigureResult::new(
                format!("{}_byte", self.id),
                format!("{} — byte hit rate", self.title),
                "S_T/S_DB",
                x,
                byte_series,
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_json() -> &'static str {
        r#"{
            "id": "demo",
            "title": "demo sweep",
            "repository": { "kind": "lognormal", "clips": 48, "sigma": 1.5 },
            "policies": ["dynsimple:2", "lru-2"],
            "ratios": [0.1, 0.3],
            "requests": 800,
            "seed": 3
        }"#
    }

    #[test]
    fn parses_and_runs() {
        let sweep = CustomSweep::from_json(sample_json()).unwrap();
        assert_eq!(sweep.theta, 0.27); // default applied
        let figs = sweep.run().unwrap();
        assert_eq!(figs.len(), 2);
        assert_eq!(figs[0].id, "demo_hit");
        assert_eq!(figs[0].series.len(), 2);
        assert_eq!(figs[0].series[0].values.len(), 2);
        for s in &figs[0].series {
            for v in &s.values {
                assert!((0.0..=1.0).contains(v));
            }
        }
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(CustomSweep::from_json("{}").is_err());
        assert!(CustomSweep::from_json("not json at all").is_err());
        let bad_policy = sample_json().replace("lru-2", "frobnicate");
        assert!(CustomSweep::from_json(&bad_policy)
            .unwrap_err()
            .contains("frobnicate"));
        let bad_ratio = sample_json().replace("0.3", "1.5");
        assert!(CustomSweep::from_json(&bad_ratio)
            .unwrap_err()
            .contains("outside"));
        let bad_kind = sample_json().replace("lognormal", "frobnical");
        assert!(CustomSweep::from_json(&bad_kind)
            .unwrap_err()
            .contains("frobnical"));
    }

    #[test]
    fn repo_specs_build_with_defaults() {
        for repo_json in [
            r#"{ "kind": "variable" }"#,
            r#"{ "kind": "equi", "clips": 10, "size_mb": 100 }"#,
            r#"{ "kind": "lognormal" }"#,
        ] {
            let v = json::parse(repo_json).unwrap();
            let spec = RepoSpec::from_json_value(&v).unwrap();
            let sweep = CustomSweep {
                id: "x".into(),
                title: "x".into(),
                repository: spec,
                policies: vec!["lru".into()],
                ratios: vec![0.1],
                requests: 100,
                theta: 0.27,
                seed: 1,
            };
            assert!(!sweep.build_repo().is_empty());
        }
        let defaulted =
            RepoSpec::from_json_value(&json::parse(r#"{ "kind": "variable" }"#).unwrap()).unwrap();
        assert_eq!(defaulted, RepoSpec::Variable { clips: 576 });
    }

    #[test]
    fn offline_policies_get_frequencies() {
        let json = sample_json().replace("\"lru-2\"", "\"simple\"");
        let sweep = CustomSweep::from_json(&json).unwrap();
        let figs = sweep.run().unwrap();
        assert!(figs[0].series.iter().any(|s| s.name == "Simple"));
    }

    #[test]
    fn parallel_run_matches_serial() {
        let sweep = CustomSweep::from_json(sample_json()).unwrap();
        let serial = sweep.run().unwrap();
        let ctx = ExperimentContext::default().with_jobs(4);
        let parallel = sweep.run_with(&ctx).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(ctx.stats.points(), 4); // 2 policies x 2 ratios
    }
}
