//! `simulate` — run one cache simulation with any policy and workload.
//!
//! ```text
//! simulate --policy dynsimple:2 [--repo variable|equi|lognormal]
//!          [--ratio 0.125] [--clips 576] [--theta 0.27]
//!          [--requests 10000] [--seed 7] [--shift g]
//!          [--locality p] [--trace FILE] [--window 100] [--series]
//! ```
//!
//! Prints the hit rate, byte hit rate, eviction count and final cache
//! composition; `--series` additionally prints the per-window hit-rate
//! series. `--trace` replays a recorded trace (JSON or plain text)
//! instead of generating one. `--policy` accepts every registry spelling
//! plus an optional `@heap` victim-index suffix (`greedydual@heap`) for
//! heap-eligible policies.

use clipcache_core::snapshot::{restore, CacheSnapshot};
use clipcache_core::PolicySpec;
use clipcache_media::{paper, MediaType, Repository};
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::locality::StackModelGenerator;
use clipcache_workload::synthetic::{lognormal_repository, LognormalSpec};
use clipcache_workload::{RequestGenerator, ShiftedZipf, Trace, Zipf};
use std::process::ExitCode;
use std::sync::Arc;

use clipcache_experiments::cli::{flag_value as flag, has_flag as has};

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!(
        "usage: simulate --policy P [--repo variable|equi|lognormal] [--ratio R] \
         [--clips N] [--theta T] [--requests N] [--seed S] [--shift G] \
         [--locality P] [--trace FILE] [--window W] [--series] \
         [--restore SNAP] [--snapshot-out SNAP]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || has(&args, "--help") || has(&args, "-h") {
        return fail("simulate: trace-driven cache simulation");
    }

    // Comma-separated policies run side by side on the identical trace;
    // any spelling may carry an `@heap` victim-index suffix.
    let policy_spec = flag(&args, "--policy").unwrap_or("dynsimple:2");
    let mut policies: Vec<PolicySpec> = Vec::new();
    for part in policy_spec.split(',') {
        match part.parse() {
            Ok(p) => policies.push(p),
            Err(e) => return fail(&e),
        }
    }
    let policy = policies[0];
    let clips: usize = flag(&args, "--clips").unwrap_or("576").parse().unwrap_or(0);
    if clips == 0 {
        return fail("--clips must be a positive integer");
    }
    let theta: f64 = match flag(&args, "--theta").unwrap_or("0.27").parse() {
        Ok(t) if (0.0..1.0).contains(&t) => t,
        _ => return fail("--theta must be in [0, 1)"),
    };
    let ratio: f64 = match flag(&args, "--ratio").unwrap_or("0.125").parse() {
        Ok(r) if (0.0..=1.0).contains(&r) => r,
        _ => return fail("--ratio must be in [0, 1]"),
    };
    let requests: u64 = flag(&args, "--requests")
        .unwrap_or("10000")
        .parse()
        .unwrap_or(0);
    if requests == 0 {
        return fail("--requests must be a positive integer");
    }
    let seed: u64 = flag(&args, "--seed").unwrap_or("7").parse().unwrap_or(7);
    let shift: usize = flag(&args, "--shift").unwrap_or("0").parse().unwrap_or(0);
    let window: u64 = flag(&args, "--window")
        .unwrap_or("100")
        .parse()
        .unwrap_or(100);

    let repo: Arc<Repository> = match flag(&args, "--repo").unwrap_or("variable") {
        "variable" => Arc::new(paper::variable_sized_repository_of(clips)),
        "equi" => Arc::new(paper::equi_sized_repository_of(
            clips,
            clipcache_media::ByteSize::gb(1),
        )),
        "lognormal" => Arc::new(lognormal_repository(
            LognormalSpec {
                clips,
                ..LognormalSpec::default()
            },
            seed,
        )),
        other => return fail(&format!("unknown --repo {other}")),
    };

    // Workload: recorded trace, locality model, or the paper's IRM Zipf.
    let trace = if let Some(path) = flag(&args, "--trace") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("cannot read {path}: {e}")),
        };
        match Trace::from_json(&text).or_else(|_| Trace::from_plain_text(&text)) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{path} is not a valid trace: {e}")),
        }
    } else if let Some(p) = flag(&args, "--locality") {
        let locality: f64 = match p.parse() {
            Ok(l) if (0.0..=1.0f64).contains(&l) => l,
            _ => return fail("--locality must be in [0, 1]"),
        };
        Trace::from_requests(
            StackModelGenerator::new(clips, theta, locality, 16, requests, seed).collect(),
        )
    } else {
        Trace::from_generator(RequestGenerator::new(clips, theta, shift, requests, seed))
    };
    if let Some(max) = trace.iter().map(|r| r.clip.get() as usize).max() {
        if max > repo.len() {
            return fail(&format!(
                "trace references clip {max} but the repository has {} clips",
                repo.len()
            ));
        }
    }

    let capacity = repo.cache_capacity_for_ratio(ratio);
    let freqs = ShiftedZipf::new(Zipf::new(repo.len(), theta), shift).frequencies();
    let mut trace = trace;
    let mut cache = if let Some(path) = flag(&args, "--restore") {
        let json = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("cannot read {path}: {e}")),
        };
        let snap = match CacheSnapshot::from_json(&json) {
            Ok(s) => s,
            Err(e) => return fail(&format!("{path} is not a snapshot: {e}")),
        };
        match restore(&snap, Arc::clone(&repo), seed, Some(&freqs)) {
            Ok((c, tick)) => {
                eprintln!(
                    "restored {} residents from {path} (resuming at {tick})",
                    snap.resident.len()
                );
                // Keep the virtual clock monotone across the restart.
                trace = trace.with_time_offset(tick.get());
                c
            }
            Err(e) => return fail(&e.to_string()),
        }
    } else {
        match policy.try_build(Arc::clone(&repo), capacity, seed, Some(&freqs)) {
            Ok(c) => c,
            Err(e) => return fail(&e.to_string()),
        }
    };
    let config = SimulationConfig {
        window,
        ..SimulationConfig::default()
    };
    if policies.len() > 1 {
        // Comparison mode: run every policy on the identical trace.
        println!(
            "{:<28} {:>10} {:>14} {:>11} {:>11}",
            "policy", "hit rate", "byte hit rate", "evictions", "residents"
        );
        for p in &policies {
            let mut c = match p.try_build(Arc::clone(&repo), capacity, seed, Some(&freqs)) {
                Ok(c) => c,
                Err(e) => return fail(&e.to_string()),
            };
            let r = simulate(c.as_mut(), &repo, trace.requests(), &config);
            println!(
                "{:<28} {:>9.2}% {:>13.2}% {:>11} {:>11}",
                r.policy,
                r.hit_rate() * 100.0,
                r.byte_hit_rate() * 100.0,
                r.stats.evictions,
                c.resident_count()
            );
        }
        return ExitCode::SUCCESS;
    }
    let report = simulate(cache.as_mut(), &repo, trace.requests(), &config);

    println!("policy:        {}", report.policy);
    println!(
        "repository:    {} clips, S_DB = {}",
        repo.len(),
        repo.total_size()
    );
    println!("cache:         {capacity} (S_T/S_DB = {ratio})");
    println!("requests:      {}", report.stats.requests());
    println!(
        "hit rate:      {:.2}%  ({} hits)",
        report.hit_rate() * 100.0,
        report.stats.hits
    );
    println!("byte hit rate: {:.2}%", report.byte_hit_rate() * 100.0);
    println!("evictions:     {}", report.stats.evictions);
    let resident = cache.resident_clips();
    let audio = resident
        .iter()
        .filter(|&&c| repo.clip(c).media == MediaType::Audio)
        .count();
    println!(
        "residents:     {} clips ({} audio, {} video), {} used",
        resident.len(),
        audio,
        resident.len() - audio,
        cache.used()
    );
    if let Some(path) = flag(&args, "--snapshot-out") {
        let last_tick = trace
            .requests()
            .last()
            .map(|r| r.at)
            .unwrap_or(clipcache_workload::Timestamp::ZERO);
        let snap = CacheSnapshot::take(cache.as_ref(), policy, last_tick);
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            return fail(&format!("cannot write {path}: {e}"));
        }
        println!("snapshot:      {} residents -> {path}", snap.resident.len());
    }
    if has(&args, "--series") {
        println!("hit rate per {window}-request window:");
        for (i, p) in report.series.points().iter().enumerate() {
            println!("  {:>8}  {:.1}%", (i as u64 + 1) * window, p * 100.0);
        }
    }
    ExitCode::SUCCESS
}
