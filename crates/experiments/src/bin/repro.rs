//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale <f64>] [--seed <u64>] [--out <dir>] [--jobs <n>]
//!       [all | fig2 fig3 ...]
//! ```
//!
//! Prints each figure as a text table and, when `--out` is given, writes
//! one CSV per figure into the directory.

use clipcache_experiments::{run_experiment, ExperimentContext, ALL_EXPERIMENTS};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    ctx: ExperimentContext,
    out: Option<PathBuf>,
    experiments: Vec<String>,
    jobs: usize,
    custom: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut ctx = ExperimentContext::default();
    let mut out = None;
    let mut experiments = Vec::new();
    let mut jobs = 1usize;
    let mut custom: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--scale" => {
                let v = argv.next().ok_or("--scale needs a value")?;
                ctx.scale = v.parse().map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                ctx.seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(argv.next().ok_or("--out needs a value")?));
            }
            "--jobs" => {
                let v = argv.next().ok_or("--jobs needs a value")?;
                jobs = v.parse().map_err(|e| format!("bad --jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--custom" => {
                let path = argv.next().ok_or("--custom needs a JSON file")?;
                custom = Some(path);
            }
            "--list" => {
                return Err(clipcache_experiments::ALL_EXPERIMENTS
                    .iter()
                    .map(|id| {
                        format!(
                            "{id:<12} {}",
                            clipcache_experiments::describe(id).unwrap_or("")
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n"));
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: repro [--scale f] [--seed n] [--out dir] [--jobs n] \
       [--custom sweep.json] [--list] [all | {}]",
                    ALL_EXPERIMENTS.join(" | ")
                ));
            }
            "all" => experiments.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() && custom.is_none() {
        experiments.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    Ok(Args {
        ctx,
        out,
        experiments,
        jobs,
        custom,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.custom {
        let json = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let sweep = match clipcache_experiments::custom::CustomSweep::from_json(&json) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match sweep.run() {
            Ok(figs) => {
                for fig in &figs {
                    println!("{}", fig.to_text_table());
                    if let Some(dir) = &args.out {
                        let _ = std::fs::create_dir_all(dir);
                        let p = dir.join(format!("{}.csv", fig.id));
                        if let Err(e) = std::fs::write(&p, fig.to_csv()) {
                            eprintln!("cannot write {}: {e}", p.display());
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if args.experiments.is_empty() {
            return ExitCode::SUCCESS;
        }
    }
    for id in &args.experiments {
        if !ALL_EXPERIMENTS.contains(&id.as_str()) {
            eprintln!(
                "unknown experiment '{id}' (try: all {})",
                ALL_EXPERIMENTS.join(" ")
            );
            return ExitCode::FAILURE;
        }
    }

    // Run experiments across worker threads (they are independent and
    // deterministic); print results in submission order.
    let n = args.experiments.len();
    let next = std::sync::atomic::AtomicUsize::new(0);
    type Slot = Option<(Vec<clipcache_experiments::FigureResult>, f64)>;
    let slot_cells: Vec<std::sync::Mutex<Slot>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..args.jobs.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let id = &args.experiments[i];
                let started = std::time::Instant::now();
                let results = run_experiment(id, &args.ctx).expect("validated above");
                *slot_cells[i].lock().expect("no panics hold this lock") =
                    Some((results, started.elapsed().as_secs_f64()));
            });
        }
    });
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for (i, id) in args.experiments.iter().enumerate() {
        let (results, secs) = slot_cells[i]
            .lock()
            .expect("workers finished")
            .take()
            .expect("every slot filled");
        for fig in &results {
            // Hundreds of columns render unreadably; wide figures get
            // sparklines on the console (the CSV keeps full precision).
            if fig.x.len() > 24 {
                let _ = writeln!(lock, "{}", fig.to_sparklines());
            } else {
                let _ = writeln!(lock, "{}", fig.to_text_table());
            }
            if let Some(dir) = &args.out {
                let path = dir.join(format!("{}.csv", fig.id));
                if let Err(e) = std::fs::write(&path, fig.to_csv()) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                let md = dir.join(format!("{}.md", fig.id));
                if let Err(e) = std::fs::write(&md, fig.to_markdown()) {
                    eprintln!("cannot write {}: {e}", md.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        let _ = writeln!(lock, "[{id} finished in {secs:.1}s]\n");
    }
    ExitCode::SUCCESS
}
