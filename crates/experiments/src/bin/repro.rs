//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale <f64>] [--seed <u64>] [--out <dir>] [--jobs <n>]
//!       [--backend scan|heap] [--custom sweep.json] [all | fig2 fig3 ...]
//! ```
//!
//! Prints each figure as a text table and, when `--out` is given, writes
//! one CSV and one Markdown table per figure into the directory.
//!
//! `--jobs` sets the worker threads of the point-level sweep engine
//! (`clipcache_experiments::sweep`). Experiments run one at a time, each
//! fanning its data points across the pool; every point derives its seed
//! from the experiment context rather than from thread identity, so the
//! output is bit-identical at any `--jobs` value. Seeds accept decimal
//! or `0x`-prefixed hex.
//!
//! `--backend` selects the victim-index backend (default `scan`). The
//! two backends make identical eviction decisions, so every figure is
//! byte-identical either way — CI diffs them to prove it; `heap` only
//! changes how fast victims are found. Policies with time-varying
//! priorities always run on scan regardless of the flag.

use clipcache_experiments::{
    run_experiment, ExperimentContext, FigureResult, SweepStats, ALL_EXPERIMENTS,
};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    ctx: ExperimentContext,
    out: Option<PathBuf>,
    experiments: Vec<String>,
    custom: Option<String>,
}

/// Parse a seed as decimal or `0x`-prefixed hex (CI passes `0x5EED2007`).
fn parse_u64(v: &str) -> Result<u64, String> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).map_err(|e| e.to_string()),
        None => v
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string()),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut ctx = ExperimentContext::default();
    let mut out = None;
    let mut experiments = Vec::new();
    let mut custom: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--scale" => {
                let v = argv.next().ok_or("--scale needs a value")?;
                ctx.scale = v.parse().map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                ctx.seed = parse_u64(&v).map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(argv.next().ok_or("--out needs a value")?));
            }
            "--jobs" => {
                let v = argv.next().ok_or("--jobs needs a value")?;
                ctx.jobs = v.parse().map_err(|e| format!("bad --jobs: {e}"))?;
                if ctx.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--backend" => {
                let v = argv.next().ok_or("--backend needs scan or heap")?;
                ctx.backend = v.parse().map_err(|e| format!("bad --backend: {e}"))?;
            }
            "--custom" => {
                let path = argv.next().ok_or("--custom needs a JSON file")?;
                custom = Some(path);
            }
            "--list" => {
                return Err(clipcache_experiments::ALL_EXPERIMENTS
                    .iter()
                    .map(|id| {
                        format!(
                            "{id:<12} {}",
                            clipcache_experiments::describe(id).unwrap_or("")
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n"));
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: repro [--scale f] [--seed n|0xHEX] [--out dir] \
       [--jobs n] [--backend scan|heap] [--custom sweep.json] [--list] \
       [all | {}]\n\
       --jobs fans each experiment's data points across n worker \
       threads; results are bit-identical at any value\n\
       --backend picks the victim-index backend; heap accelerates \
       victim selection without changing any figure",
                    ALL_EXPERIMENTS.join(" | ")
                ));
            }
            "all" => experiments.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() && custom.is_none() {
        experiments.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    Ok(Args {
        ctx,
        out,
        experiments,
        custom,
    })
}

/// Print a figure (text table, or sparklines when too wide for the
/// console) and, when `--out` is given, write its CSV and Markdown
/// files. Shared by the built-in and `--custom` paths.
fn emit_figures(
    figs: &[FigureResult],
    out: Option<&PathBuf>,
    sink: &mut impl std::io::Write,
) -> Result<(), String> {
    for fig in figs {
        // Hundreds of columns render unreadably; wide figures get
        // sparklines on the console (the CSV keeps full precision).
        if fig.x.len() > 24 {
            let _ = writeln!(sink, "{}", fig.to_sparklines());
        } else {
            let _ = writeln!(sink, "{}", fig.to_text_table());
        }
        if let Some(dir) = out {
            let path = dir.join(format!("{}.csv", fig.id));
            std::fs::write(&path, fig.to_csv())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            let md = dir.join(format!("{}.md", fig.id));
            std::fs::write(&md, fig.to_markdown())
                .map_err(|e| format!("cannot write {}: {e}", md.display()))?;
        }
    }
    Ok(())
}

/// The per-experiment summary line: wall clock, plus the sweep engine's
/// per-point accounting (point count, summed point compute time, and the
/// realized parallel speedup) when the experiment ran any points.
fn summary_line(id: &str, secs: f64, stats: &SweepStats) -> String {
    let points = stats.points();
    if points == 0 {
        return format!("[{id} finished in {secs:.1}s]\n");
    }
    let busy = stats.busy().as_secs_f64();
    let realized = if secs > 0.0 { busy / secs } else { 1.0 };
    format!(
        "[{id} finished in {secs:.1}s — {points} points, \
         {busy:.1}s point-compute, {realized:.1}x realized]\n"
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if let Some(path) = &args.custom {
        let json = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let sweep = match clipcache_experiments::custom::CustomSweep::from_json(&json) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let ctx = args.ctx.fork();
        let started = std::time::Instant::now();
        match sweep.run_with(&ctx) {
            Ok(figs) => {
                if let Err(e) = emit_figures(&figs, args.out.as_ref(), &mut lock) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                let _ = writeln!(
                    lock,
                    "{}",
                    summary_line(&sweep.id, started.elapsed().as_secs_f64(), &ctx.stats)
                );
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if args.experiments.is_empty() {
            return ExitCode::SUCCESS;
        }
    }
    for id in &args.experiments {
        if !ALL_EXPERIMENTS.contains(&id.as_str()) {
            eprintln!(
                "unknown experiment '{id}' (try: all {})",
                ALL_EXPERIMENTS.join(" ")
            );
            return ExitCode::FAILURE;
        }
    }

    // Experiments run one at a time in submission order; each fans its
    // own data points across the `--jobs` worker pool (a fork per
    // experiment keeps the per-point accounting separate).
    for id in &args.experiments {
        let ctx = args.ctx.fork();
        let started = std::time::Instant::now();
        let results = run_experiment(id, &ctx).expect("validated above");
        if let Err(e) = emit_figures(&results, args.out.as_ref(), &mut lock) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        let _ = writeln!(
            lock,
            "{}",
            summary_line(id, started.elapsed().as_secs_f64(), &ctx.stats)
        );
    }
    ExitCode::SUCCESS
}
