//! `tracegen` — generate, save, and analyze reference strings.
//!
//! ```text
//! tracegen gen  --clips 576 --theta 0.27 --requests 10000 --seed 7 \
//!               [--shift g] [--format json|text] [--out trace.json]
//! tracegen info trace.json [--repo variable|equi]
//! ```
//!
//! `gen` materializes a deterministic trace (stdout or `--out`); `info`
//! loads one and prints request counts, per-clip frequency head, cold-miss
//! count and the Mattson-predicted LRU hit-rate curve.

use clipcache_media::paper;
use clipcache_workload::reuse::StackDistanceAnalyzer;
use clipcache_workload::stats::FrequencyCounter;
use clipcache_workload::{RequestGenerator, Trace};
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!(
        "usage:\n  tracegen gen --clips N --theta T --requests R --seed S [--shift G] [--out F]\n  tracegen info FILE [--repo variable|equi]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => gen(&args[1..]),
        Some("info") => info(&args[1..]),
        _ => fail("missing or unknown subcommand"),
    }
}

use clipcache_experiments::cli::flag_value;

fn gen(args: &[String]) -> ExitCode {
    let clips: usize = flag_value(args, "--clips")
        .unwrap_or("576")
        .parse()
        .unwrap_or(0);
    if clips == 0 {
        return fail("--clips must be a positive integer");
    }
    let theta: f64 = match flag_value(args, "--theta").unwrap_or("0.27").parse() {
        Ok(t) => t,
        Err(_) => return fail("--theta must be a float in [0, 1)"),
    };
    let requests: u64 = flag_value(args, "--requests")
        .unwrap_or("10000")
        .parse()
        .unwrap_or(0);
    if requests == 0 {
        return fail("--requests must be a positive integer");
    }
    let seed: u64 = flag_value(args, "--seed")
        .unwrap_or("7")
        .parse()
        .unwrap_or(7);
    let shift: usize = flag_value(args, "--shift")
        .unwrap_or("0")
        .parse()
        .unwrap_or(0);

    let trace = Trace::from_generator(RequestGenerator::new(clips, theta, shift, requests, seed));
    let payload = match flag_value(args, "--format").unwrap_or("json") {
        "text" => trace.to_plain_text(),
        "json" => trace.to_json(),
        other => return fail(&format!("unknown --format {other} (json|text)")),
    };
    match flag_value(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, payload) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {requests} requests over {clips} clips to {path}");
        }
        None => print!("{payload}"),
    }
    ExitCode::SUCCESS
}

fn info(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return fail("info needs a trace file");
    };
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Accept either format: JSON first, then the plain-text fallback.
    let trace = match Trace::from_json(&json) {
        Ok(t) => t,
        Err(_) => match Trace::from_plain_text(&json) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path} is not a valid trace (json or text): {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let max_clip = trace.iter().map(|r| r.clip.get()).max().unwrap_or(1) as usize;

    let repo = match flag_value(args, "--repo").unwrap_or("variable") {
        "equi" => paper::equi_sized_repository_of(max_clip, clipcache_media::ByteSize::gb(1)),
        _ => paper::variable_sized_repository_of(max_clip),
    };

    let mut counter = FrequencyCounter::new(max_clip);
    counter.record_all(trace.requests());
    let mut analyzer = StackDistanceAnalyzer::new(&repo);
    analyzer.record_all(trace.requests());

    println!(
        "trace: {} requests over up to {} clips",
        trace.len(),
        max_clip
    );
    println!("cold misses: {}", analyzer.cold_misses());
    println!("top clips by observed frequency:");
    let mut by_freq: Vec<(u32, u64)> = (1..=max_clip as u32)
        .map(|i| (i, counter.count(clipcache_media::ClipId::new(i))))
        .collect();
    by_freq.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (clip, count) in by_freq.into_iter().take(10) {
        println!(
            "  clip#{clip:<6} {count:>8} requests ({:.2}%)",
            100.0 * count as f64 / trace.len() as f64
        );
    }
    println!("Mattson-predicted LRU hit rate:");
    for ratio in [0.0125, 0.05, 0.125, 0.25, 0.5] {
        let cap = repo.cache_capacity_for_ratio(ratio);
        println!(
            "  S_T/S_DB = {ratio:<6} -> {:.1}%",
            100.0 * analyzer.predicted_hit_rate(cap)
        );
    }
    ExitCode::SUCCESS
}
