//! Figure results: named series over an x-axis, rendered as text or CSV.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One curve in a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (the policy name, usually).
    pub name: String,
    /// One y value per x-axis point.
    pub values: Vec<f64>,
}

impl Series {
    /// Construct a series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            name: name.into(),
            values,
        }
    }

    /// Mean of the values (used for "average over shift-ids" claims).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }
}

/// A reproduced figure (or sub-figure): x-axis labels plus series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Identifier, e.g. `"fig2a"`.
    pub id: String,
    /// Human title, e.g. `"Cache hit rate (%) vs S_T/S_DB"`.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// X-axis tick labels.
    pub x: Vec<String>,
    /// The curves.
    pub series: Vec<Series>,
}

impl FigureResult {
    /// Construct a figure result; every series must match the x-axis
    /// length.
    ///
    /// # Panics
    /// On series/x length mismatch.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        x: Vec<String>,
        series: Vec<Series>,
    ) -> Self {
        let fig = FigureResult {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            x,
            series,
        };
        for s in &fig.series {
            assert_eq!(
                s.values.len(),
                fig.x.len(),
                "series '{}' length mismatch in {}",
                s.name,
                fig.id
            );
        }
        fig
    }

    /// Find a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Render as an aligned text table (values as percentages with one
    /// decimal when ≤ 1.0-scaled rates, else raw with three decimals).
    pub fn to_text_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let name_w = self
            .series
            .iter()
            .map(|s| s.name.len())
            .chain([self.x_label.len()])
            .max()
            .unwrap_or(8)
            .max(8);
        let col_w = self.x.iter().map(|x| x.len()).max().unwrap_or(6).max(7);
        let _ = write!(out, "{:<name_w$}", self.x_label);
        for x in &self.x {
            let _ = write!(out, "  {x:>col_w$}");
        }
        let _ = writeln!(out);
        for s in &self.series {
            let _ = write!(out, "{:<name_w$}", s.name);
            for v in &s.values {
                let cell = format_value(*v);
                let _ = write!(out, "  {cell:>col_w$}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Render each series as a unicode sparkline — the readable form for
    /// figures with hundreds of x points (the windowed hit-rate series of
    /// Figures 6.b and 7.b). Values are normalized over the figure's
    /// global min/max, printed alongside each series' first/min/max/last.
    pub fn to_sparklines(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let all: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.values.iter().copied())
            .collect();
        let lo = all.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-12);
        let name_w = self.series.iter().map(|s| s.name.len()).max().unwrap_or(8);
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = writeln!(
            out,
            "{} points per series; bars span {} .. {}",
            self.x.len(),
            format_value(lo),
            format_value(hi)
        );
        for s in &self.series {
            let _ = write!(out, "{:<name_w$}  ", s.name);
            for &v in &s.values {
                let idx = (((v - lo) / span) * (BARS.len() - 1) as f64).round() as usize;
                out.push(BARS[idx.min(BARS.len() - 1)]);
            }
            let smin = s.values.iter().cloned().fold(f64::INFINITY, f64::min);
            let smax = s.values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let _ = writeln!(
                out,
                "  first {} min {} max {} last {}",
                format_value(*s.values.first().unwrap_or(&0.0)),
                format_value(smin),
                format_value(smax),
                format_value(*s.values.last().unwrap_or(&0.0)),
            );
        }
        out
    }

    /// Render as a GitHub-flavored markdown table (policies as rows, one
    /// column per x point) — the form EXPERIMENTS.md embeds.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let _ = writeln!(out);
        let _ = write!(out, "| {} |", self.x_label);
        for x in &self.x {
            let _ = write!(out, " {x} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.x {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for s in &self.series {
            let _ = write!(out, "| {} |", s.name);
            for v in &s.values {
                let _ = write!(out, " {} |", format_value(*v));
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Render as CSV: header `x,<series...>`, one row per x point.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", csv_escape(&self.x_label));
        for s in &self.series {
            let _ = write!(out, ",{}", csv_escape(&s.name));
        }
        let _ = writeln!(out);
        for (i, x) in self.x.iter().enumerate() {
            let _ = write!(out, "{}", csv_escape(x));
            for s in &self.series {
                let _ = write!(out, ",{}", s.values[i]);
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Rates in [0, 1] print as percentages; everything else as a plain float.
fn format_value(v: f64) -> String {
    if (0.0..=1.0).contains(&v) {
        format!("{:.1}%", v * 100.0)
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureResult {
        FigureResult::new(
            "figX",
            "demo",
            "S_T/S_DB",
            vec!["0.1".into(), "0.2".into()],
            vec![
                Series::new("LRU-2", vec![0.25, 0.5]),
                Series::new("Random", vec![0.1, 0.2]),
            ],
        )
    }

    #[test]
    fn text_table_contains_everything() {
        let t = sample().to_text_table();
        assert!(t.contains("figX"));
        assert!(t.contains("LRU-2"));
        assert!(t.contains("25.0%"));
        assert!(t.contains("50.0%"));
    }

    #[test]
    fn sparklines_render() {
        let fig = FigureResult::new(
            "wide",
            "windowed",
            "request",
            (1..=40).map(|i| i.to_string()).collect(),
            vec![Series::new(
                "policy",
                (0..40).map(|i| i as f64 / 39.0).collect(),
            )],
        );
        let s = fig.to_sparklines();
        assert!(s.contains("▁"));
        assert!(s.contains("█"));
        assert!(s.contains("40 points per series"));
        assert!(s.contains("first 0.0% "));
    }

    #[test]
    fn markdown_table_shape() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert!(lines[0].starts_with("### figX"));
        assert_eq!(lines[2], "| S_T/S_DB | 0.1 | 0.2 |");
        assert_eq!(lines[3], "|---|---|---|");
        assert_eq!(lines[4], "| LRU-2 | 25.0% | 50.0% |");
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn csv_round_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "S_T/S_DB,LRU-2,Random");
        assert_eq!(lines[1], "0.1,0.25,0.1");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn series_mean() {
        assert!((Series::new("s", vec![0.2, 0.4]).mean() - 0.3).abs() < 1e-12);
        assert_eq!(Series::new("s", vec![]).mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        FigureResult::new(
            "bad",
            "t",
            "x",
            vec!["1".into()],
            vec![Series::new("s", vec![0.1, 0.2])],
        );
    }

    #[test]
    fn series_lookup() {
        let fig = sample();
        assert!(fig.series_named("LRU-2").is_some());
        assert!(fig.series_named("nope").is_none());
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(0.123), "12.3%");
        assert_eq!(format_value(1.0), "100.0%");
        assert_eq!(format_value(42.5), "42.500");
        assert_eq!(format_value(12345.0), "12345");
    }
}
