//! Tiny argv helpers shared by the `repro`, `simulate` and `tracegen`
//! binaries — kept dependency-free on purpose (no clap in the offline
//! dependency budget) and unit-tested here since binaries have no test
//! harness of their own.

/// The value following `name`, if present (`--flag value` style).
pub fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Whether the bare switch `name` is present.
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parse `--name value` into `T`, with a default when absent and a
/// readable error when malformed.
pub fn parsed_flag<T: std::str::FromStr>(
    args: &[String],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name} got '{v}', which does not parse")),
    }
}

/// Parse a required-to-be-positive integer flag.
pub fn positive_flag(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    let v: u64 = parsed_flag(args, name, default)?;
    if v == 0 {
        Err(format!("{name} must be a positive integer"))
    } else {
        Ok(v)
    }
}

/// Parse a flag constrained to a closed range.
pub fn ranged_flag(
    args: &[String],
    name: &str,
    default: f64,
    lo: f64,
    hi: f64,
) -> Result<f64, String> {
    let v: f64 = parsed_flag(args, name, default)?;
    if (lo..=hi).contains(&v) {
        Ok(v)
    } else {
        Err(format!("{name} must be in [{lo}, {hi}], got {v}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn flag_value_finds_following_token() {
        let a = argv(&["--seed", "9", "--out", "dir"]);
        assert_eq!(flag_value(&a, "--seed"), Some("9"));
        assert_eq!(flag_value(&a, "--out"), Some("dir"));
        assert_eq!(flag_value(&a, "--nope"), None);
        // Trailing flag without a value.
        let b = argv(&["--seed"]);
        assert_eq!(flag_value(&b, "--seed"), None);
    }

    #[test]
    fn has_flag_detects_switches() {
        let a = argv(&["--series", "x"]);
        assert!(has_flag(&a, "--series"));
        assert!(!has_flag(&a, "--quiet"));
    }

    #[test]
    fn parsed_flag_defaults_and_errors() {
        let a = argv(&["--seed", "9"]);
        assert_eq!(parsed_flag(&a, "--seed", 1u64).unwrap(), 9);
        assert_eq!(parsed_flag(&a, "--shift", 5usize).unwrap(), 5);
        let bad = argv(&["--seed", "not-a-number"]);
        assert!(parsed_flag(&bad, "--seed", 1u64).is_err());
    }

    #[test]
    fn positive_flag_rejects_zero() {
        let a = argv(&["--requests", "0"]);
        assert!(positive_flag(&a, "--requests", 10).is_err());
        let b = argv(&[]);
        assert_eq!(positive_flag(&b, "--requests", 10).unwrap(), 10);
    }

    #[test]
    fn ranged_flag_enforces_bounds() {
        let a = argv(&["--theta", "0.27"]);
        assert_eq!(ranged_flag(&a, "--theta", 0.0, 0.0, 0.99).unwrap(), 0.27);
        let b = argv(&["--theta", "1.5"]);
        assert!(ranged_flag(&b, "--theta", 0.0, 0.0, 0.99).is_err());
    }
}
