//! # clipcache-experiments
//!
//! Reproduces every table and figure of the paper's evaluation, plus the
//! textual claims DESIGN.md indexes as extension experiments.
//!
//! Each figure lives in its own module under [`figures`] and returns
//! [`report::FigureResult`] values — named series over an x-axis — which
//! render as text tables (the `repro` binary) and CSV files (for
//! EXPERIMENTS.md and plotting).
//!
//! All experiments are deterministic: workload seeds are fixed per figure,
//! and policy-internal randomness is seeded from the experiment context.
//!
//! ## Scale
//!
//! `ExperimentContext::scale` multiplies every request count. `1.0` is the
//! paper's scale (10,000 requests per data point); integration tests and
//! benches use smaller scales for speed. Hit-rate *shapes* are stable well
//! below full scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod context;
pub mod custom;
pub mod extras;
pub mod figures;
pub mod report;
pub mod sweep;

pub use clipcache_workload::json;

pub use context::{ExperimentContext, SweepStats};
pub use report::{FigureResult, Series};

/// Every experiment id the `repro` binary understands, in run order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "quality",
    "ksweep",
    "skew",
    "bypass",
    "blocks",
    "equivalence",
    "latency",
    "region",
    "retention",
    "coop",
    "objectives",
    "mattson",
    "variance",
    "composition",
    "streaming",
    "locality",
    "loglaw",
    "sizes",
    "ablation",
    "restart",
    "fleet",
    "servebench",
    "faultbench",
    "recoverybench",
    "walbench",
    "prefixbench",
    "clusterbench",
    "degradebench",
    "optimality",
];

/// One-line description per experiment id (for `repro --list`).
pub fn describe(id: &str) -> Option<&'static str> {
    Some(match id {
        "table1" => "Table 1 instantiated: repository and workload parameters",
        "fig2" => "Fig 2: Simple/GreedyDual/LRU-2/Random, hit + byte hit rate (variable sizes)",
        "fig3" => "Fig 3: LRU-2 beats GreedyDual on equi-sized clips",
        "fig5" => "Fig 5: DYNSimple/IGD/LRU-SK vs the prior techniques, both repositories",
        "fig6" => "Fig 6: adaptability to shift-ids; theoretical + windowed hit rates",
        "fig7" => "Fig 7: IGD vs GreedyDual-Freq vs GreedyDual under shifts",
        "quality" => "S4.1: frequency-estimate quality vs K",
        "ksweep" => "S4.4: DYNSimple and LRU-SK hit rate vs history depth K",
        "skew" => "S4.4.1: hit rates vs Zipf theta (skewed to uniform)",
        "bypass" => "S3.3/S2: always-materialize vs bypass admission (Simple and DYNSimple)",
        "blocks" => "footnote 3: block-partitioned LRU-2 vs DYNSimple",
        "equivalence" => "S4.4: DYNSimple(K=2) vs LRU-S2 hit-rate gap",
        "latency" => "S1 metric: startup latency/unavailability across the FMC day",
        "region" => "S1 metric: round-based regional throughput vs cache size",
        "retention" => "S4.1/S5: metadata-retention horizon (5-minute-rule direction)",
        "coop" => "S5: cooperative ad-hoc caching; radio radius + coordinated placement",
        "objectives" => "S1/S3.2: hit-rate vs byte-hit vs latency cost objectives",
        "mattson" => "cross-check: stack-distance-predicted vs simulated LRU curves",
        "variance" => "seed robustness of the headline orderings (5 seeds)",
        "composition" => "mechanism: per-media residency and hit rates per policy",
        "streaming" => "continuous-time DES region: denial/throughput over a simulated day",
        "locality" => "robustness: LRU-stack temporal locality vs the paper's IRM",
        "loglaw" => "S5: log law + equivalent-cache-size multiplier of the better algorithm",
        "sizes" => "robustness: lognormal (heavy-tailed) size spreads vs the six-class pattern",
        "ablation" => "ablations: IGD nref normalization; DYNSimple two-pass victim selection",
        "restart" => "device restart: snapshot/restore residency, relearn metadata",
        "fleet" => "adoption curve: regional throughput as devices upgrade LRU-2 -> DYNSimple",
        "optimality" => "distance to Belady's clairvoyant MIN on equi-sized clips",
        "servebench" => "serving layer: sharded-service hit rate vs shard count (serial reference)",
        "faultbench" => "serving layer: effective hit rate vs injected fault rate (chaos harness)",
        "recoverybench" => "serving layer: warm (checkpoint+WAL) vs cold restart hit rate",
        "walbench" => "serving layer: reopen work (replay/bytes/segments) vs WAL history",
        "prefixbench" => "chunk layer: prefix caching vs whole-clip at equal byte budgets",
        "clusterbench" => "cluster tier: ring-routed hit rate vs N independent caches",
        "degradebench" => "cluster tier: hit rate + modeled stall vs dead peers, breakers on/off",
        _ => return None,
    })
}

/// Run one experiment by id.
///
/// Returns the figure results, or `None` for an unknown id.
pub fn run_experiment(id: &str, ctx: &ExperimentContext) -> Option<Vec<FigureResult>> {
    let results = match id {
        "fig2" => figures::fig2::run(ctx),
        "fig3" => figures::fig3::run(ctx),
        "fig5" => figures::fig5::run(ctx),
        "fig6" => figures::fig6::run(ctx),
        "fig7" => figures::fig7::run(ctx),
        "quality" => extras::quality::run(ctx),
        "ksweep" => extras::ksweep::run(ctx),
        "skew" => extras::skew::run(ctx),
        "bypass" => extras::bypass::run(ctx),
        "blocks" => extras::blocks::run(ctx),
        "equivalence" => extras::equivalence::run(ctx),
        "latency" => extras::latency::run(ctx),
        "region" => extras::region::run(ctx),
        "retention" => extras::retention::run(ctx),
        "coop" => extras::coop::run(ctx),
        "objectives" => extras::objectives::run(ctx),
        "mattson" => extras::mattson::run(ctx),
        "variance" => extras::variance::run(ctx),
        "table1" => extras::table1::run(ctx),
        "composition" => extras::composition::run(ctx),
        "streaming" => extras::streaming::run(ctx),
        "locality" => extras::locality::run(ctx),
        "servebench" => extras::servebench::run(ctx),
        "faultbench" => extras::faultbench::run(ctx),
        "recoverybench" => extras::recoverybench::run(ctx),
        "walbench" => extras::walbench::run(ctx),
        "prefixbench" => extras::prefixbench::run(ctx),
        "clusterbench" => extras::clusterbench::run(ctx),
        "degradebench" => extras::degradebench::run(ctx),
        "loglaw" => extras::loglaw::run(ctx),
        "sizes" => extras::sizes::run(ctx),
        "ablation" => extras::ablation::run(ctx),
        "restart" => extras::restart::run(ctx),
        "fleet" => extras::fleet::run(ctx),
        "optimality" => extras::optimality::run(ctx),
        _ => return None,
    };
    Some(results)
}
