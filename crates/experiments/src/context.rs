//! Shared experiment configuration.

use clipcache_core::{ClipCache, PolicyKind, PolicySpec, VictimBackend};
use clipcache_media::{ByteSize, Repository};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-point wall-clock accounting for a sweep run.
///
/// Each call routed through [`ExperimentContext::run_points`] records
/// one point and the nanoseconds its closure spent computing, summed
/// across all worker threads. Comparing [`busy`](SweepStats::busy)
/// against the sweep's elapsed wall-clock yields the realized parallel
/// speedup that `repro` prints in its per-experiment summary line.
#[derive(Debug, Default)]
pub struct SweepStats {
    points: AtomicU64,
    busy_nanos: AtomicU64,
}

impl SweepStats {
    /// Record one completed point that took `elapsed` of compute time.
    pub fn record(&self, elapsed: Duration) {
        self.points.fetch_add(1, Ordering::Relaxed);
        self.busy_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Number of points recorded so far.
    pub fn points(&self) -> u64 {
        self.points.load(Ordering::Relaxed)
    }

    /// Total per-point compute time, summed across workers.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed))
    }
}

/// Configuration shared by every experiment.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Base seed; each figure derives per-run seeds from it.
    pub seed: u64,
    /// Request-count multiplier: 1.0 = the paper's 10,000 requests per
    /// data point. Tests and benches use smaller values.
    pub scale: f64,
    /// Worker threads for point-level sweeps (`1` = fully serial).
    /// Results are bit-identical at any value: every point derives its
    /// seed from [`sub_seed`](Self::sub_seed), never from thread
    /// identity, and [`crate::sweep::run_points`] preserves submission
    /// order.
    pub jobs: usize,
    /// Victim-index backend for every policy the experiments build.
    /// Policies with time-varying priorities ignore it and stay on the
    /// scan backend (see [`PolicyKind::supports_heap`]). Both values
    /// produce bit-identical figures; only the victim-lookup cost
    /// differs.
    pub backend: VictimBackend,
    /// Per-point accounting, shared by clones of this context. Use
    /// [`fork`](Self::fork) for an independent tally.
    pub stats: Arc<SweepStats>,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext {
            seed: 0x5EED_2007,
            scale: 1.0,
            jobs: 1,
            backend: VictimBackend::Scan,
            stats: Arc::new(SweepStats::default()),
        }
    }
}

impl ExperimentContext {
    /// A context at reduced scale (for tests/benches).
    pub fn at_scale(scale: f64) -> Self {
        ExperimentContext {
            scale,
            ..ExperimentContext::default()
        }
    }

    /// Builder-style worker-thread count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Builder-style victim-index backend.
    pub fn with_backend(mut self, backend: VictimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Build `kind` on this context's victim-index backend. Policies
    /// whose priorities are time-varying only support the scan backend
    /// and fall back to it silently, so `--backend heap` runs never
    /// fail — they accelerate the policies that can be accelerated.
    /// Seeds and eviction decisions are backend-invariant.
    pub fn build_policy(
        &self,
        kind: PolicyKind,
        repo: Arc<Repository>,
        capacity: ByteSize,
        seed: u64,
        frequencies: Option<&[f64]>,
    ) -> Box<dyn ClipCache> {
        let backend = if kind.supports_heap() {
            self.backend
        } else {
            VictimBackend::Scan
        };
        PolicySpec::with_backend(kind, backend).build(repo, capacity, seed, frequencies)
    }

    /// A clone with a fresh [`SweepStats`] tally (same seed, scale and
    /// jobs). `repro` forks the context per experiment so each summary
    /// line reports only that experiment's points.
    pub fn fork(&self) -> Self {
        ExperimentContext {
            stats: Arc::new(SweepStats::default()),
            ..self.clone()
        }
    }

    /// Scale a request count, keeping at least one window of 100.
    pub fn requests(&self, paper_count: u64) -> u64 {
        ((paper_count as f64 * self.scale).round() as u64).max(100)
    }

    /// Derive a seed for a sub-run (per figure / per policy).
    pub fn sub_seed(&self, tag: u64) -> u64 {
        // SplitMix64 step over (seed ^ tag) for decorrelated sub-seeds.
        let mut z = self.seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The standard per-policy data-point seed: `fig_tag` identifies
    /// the figure, the policy index lands in bits 8.. so policies
    /// within one figure draw decorrelated streams. (`<<` binds tighter
    /// than `^`, so this equals `fig_tag ^ ((pi as u64) << 8)` — kept
    /// explicit here so every call site derives identical seeds.)
    pub fn policy_seed(&self, fig_tag: u64, pi: usize) -> u64 {
        self.sub_seed(fig_tag ^ ((pi as u64) << 8))
    }

    /// Run one simulation point per element of `points`, fanned out
    /// over [`jobs`](Self::jobs) workers via
    /// [`crate::sweep::run_points`], recording per-point wall-clock
    /// into [`stats`](Self::stats). Output order matches `points`
    /// order, and values are bit-identical at any `jobs` count.
    pub fn run_points<I, O, F>(&self, points: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        crate::sweep::run_points(points, self.jobs, |i, p| {
            let start = Instant::now();
            let out = f(i, p);
            self.stats.record(start.elapsed());
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_scale_and_floor() {
        let ctx = ExperimentContext::at_scale(0.1);
        assert_eq!(ctx.requests(10_000), 1_000);
        assert_eq!(ctx.requests(100), 100); // floored
        assert_eq!(ExperimentContext::default().requests(10_000), 10_000);
    }

    #[test]
    fn sub_seeds_differ() {
        let ctx = ExperimentContext::default();
        assert_ne!(ctx.sub_seed(1), ctx.sub_seed(2));
        assert_eq!(ctx.sub_seed(1), ctx.sub_seed(1));
    }

    #[test]
    fn policy_seed_matches_manual_derivation() {
        // The pre-parallel code spelled this as
        // `ctx.sub_seed(fig_tag ^ (pi as u64) << 8)`, relying on `<<`
        // binding tighter than `^`. The helper must reproduce it
        // exactly or every figure's curves shift.
        let ctx = ExperimentContext::default();
        for fig_tag in [0xF2u64, 0xF3, 0xE4, 0x7E57] {
            for pi in 0..6usize {
                #[allow(clippy::precedence)]
                let legacy = ctx.sub_seed(fig_tag ^ (pi as u64) << 8);
                assert_eq!(ctx.policy_seed(fig_tag, pi), legacy);
            }
        }
    }

    #[test]
    fn policy_seeds_distinct_across_policies_and_figures() {
        let ctx = ExperimentContext::default();
        let mut seen = std::collections::HashSet::new();
        for fig_tag in [0xF2u64, 0xF3, 0xF5A, 0xF6A, 0xF7A] {
            for pi in 0..8usize {
                assert!(
                    seen.insert(ctx.policy_seed(fig_tag, pi)),
                    "collision at fig_tag={fig_tag:#x} pi={pi}"
                );
            }
        }
    }

    #[test]
    fn run_points_is_jobs_invariant_and_records_stats() {
        let serial = ExperimentContext::at_scale(0.05);
        let parallel = serial.fork().with_jobs(4);
        let points: Vec<u64> = (0..40).collect();
        let f = |_: usize, &p: &u64| serial.sub_seed(p) as f64 / u64::MAX as f64;
        let a = serial.run_points(&points, f);
        let b = parallel.run_points(&points, f);
        assert_eq!(a, b);
        assert_eq!(serial.stats.points(), 40);
        assert_eq!(parallel.stats.points(), 40);
    }

    #[test]
    fn fork_isolates_stats_but_shares_config() {
        let ctx = ExperimentContext::at_scale(0.3).with_jobs(3);
        ctx.stats.record(Duration::from_millis(5));
        let forked = ctx.fork();
        assert_eq!(forked.jobs, 3);
        assert_eq!(forked.scale, ctx.scale);
        assert_eq!(forked.seed, ctx.seed);
        assert_eq!(forked.stats.points(), 0);
        assert_eq!(ctx.stats.points(), 1);
    }
}
