//! Shared experiment configuration.

/// Configuration shared by every experiment.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Base seed; each figure derives per-run seeds from it.
    pub seed: u64,
    /// Request-count multiplier: 1.0 = the paper's 10,000 requests per
    /// data point. Tests and benches use smaller values.
    pub scale: f64,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext {
            seed: 0x5EED_2007,
            scale: 1.0,
        }
    }
}

impl ExperimentContext {
    /// A context at reduced scale (for tests/benches).
    pub fn at_scale(scale: f64) -> Self {
        ExperimentContext {
            scale,
            ..ExperimentContext::default()
        }
    }

    /// Scale a request count, keeping at least one window of 100.
    pub fn requests(&self, paper_count: u64) -> u64 {
        ((paper_count as f64 * self.scale).round() as u64).max(100)
    }

    /// Derive a seed for a sub-run (per figure / per policy).
    pub fn sub_seed(&self, tag: u64) -> u64 {
        // SplitMix64 step over (seed ^ tag) for decorrelated sub-seeds.
        let mut z = self.seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_scale_and_floor() {
        let ctx = ExperimentContext::at_scale(0.1);
        assert_eq!(ctx.requests(10_000), 1_000);
        assert_eq!(ctx.requests(100), 100); // floored
        assert_eq!(ExperimentContext::default().requests(10_000), 10_000);
    }

    #[test]
    fn sub_seeds_differ() {
        let ctx = ExperimentContext::default();
        assert_ne!(ctx.sub_seed(1), ctx.sub_seed(2));
        assert_eq!(ctx.sub_seed(1), ctx.sub_seed(1));
    }
}
