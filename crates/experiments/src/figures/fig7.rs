//! Figure 7: IGD vs GreedyDual-Freq vs GreedyDual under evolving access
//! patterns (`S_T/S_DB` = 0.125, variable-sized repository).
//!
//! * 7.a — theoretical hit rate over shift-ids: IGD beats GreedyDual-Freq
//!   whenever g > 0, because GreedyDual-Freq's reference counts grow
//!   monotonically while IGD's age away; GreedyDual-Freq can even fall
//!   below plain GreedyDual.
//! * 7.b — windowed hit rate over a 20,000-request run whose pattern
//!   shifts at 10,000: GreedyDual-Freq matches IGD while the pattern is
//!   fixed (first half) but recovers more slowly after the shift.

use crate::context::ExperimentContext;
use crate::figures::{adaptivity_sweep, windowed_adaptivity};
use crate::report::FigureResult;
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use std::sync::Arc;

/// The shift-ids of Figure 7.a (same as 6.a).
pub const SHIFTS: [usize; 6] = [0, 100, 200, 300, 400, 500];

/// Run Figure 7 (both panels).
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let policies = [PolicyKind::Igd, PolicyKind::GdFreq, PolicyKind::GreedyDual];

    let series_a = adaptivity_sweep(ctx, &repo, &policies, &SHIFTS, 10_000, 0xF7A);
    let x_a: Vec<String> = SHIFTS.iter().map(|g| g.to_string()).collect();

    let (x_b, series_b) =
        windowed_adaptivity(ctx, &repo, &policies, &[(10_000, 0), (10_000, 200)], 0xF7B);

    vec![
        FigureResult::new(
            "fig7a",
            "Theoretical cache hit rate vs shift-id g (S_T/S_DB = 0.125)",
            "shift g",
            x_a,
            series_a,
        ),
        FigureResult::new(
            "fig7b",
            "Cache hit rate per 100 requests across a pattern shift at 10,000",
            "request",
            x_b,
            series_b,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn igd_adapts_better_than_gd_freq() {
        let ctx = ExperimentContext::at_scale(0.2);
        let figs = run(&ctx);
        let a = &figs[0];
        let igd = a.series_named("IGD").unwrap();
        let gdf = a.series_named("GreedyDual-Freq").unwrap();
        // GreedyDual-Freq is strongest while the pattern is fresh (g = 0)
        // and decays as shifts accumulate; IGD holds steady. The claim we
        // pin is the *relative* one: IGD's margin over GreedyDual-Freq
        // improves from the first phase to the last two.
        let gap_start = igd.values[0] - gdf.values[0];
        let gap_end = (igd.values[4] - gdf.values[4] + igd.values[5] - gdf.values[5]) / 2.0;
        assert!(
            gap_end > gap_start,
            "IGD margin must improve under shifts: start {gap_start}, end {gap_end}"
        );
    }

    #[test]
    fn gd_freq_competitive_before_shift() {
        let ctx = ExperimentContext::at_scale(0.1);
        let figs = run(&ctx);
        let b = &figs[1];
        let igd = b.series_named("IGD").unwrap();
        let gdf = b.series_named("GreedyDual-Freq").unwrap();
        let half = igd.values.len() / 2;
        // Stable first half: the two are close (within 10 points).
        let igd_first = igd.values[half / 2..half].iter().sum::<f64>() / (half - half / 2) as f64;
        let gdf_first = gdf.values[half / 2..half].iter().sum::<f64>() / (half - half / 2) as f64;
        assert!(
            (igd_first - gdf_first).abs() < 0.10,
            "first half: IGD {igd_first} vs GDF {gdf_first}"
        );
    }
}
