//! One module per paper figure, plus shared sweep machinery.

pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;

use crate::context::ExperimentContext;
use crate::report::Series;
use clipcache_core::PolicyKind;
use clipcache_media::Repository;
use clipcache_sim::metrics::theoretical_hit_rate;
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::{PhaseSchedule, RequestGenerator, ShiftedZipf, Trace, Zipf};
use std::sync::Arc;

/// The paper's Zipf parameter.
pub const THETA: f64 = 0.27;

/// Hit-rate and byte-hit-rate series for `policies` across a cache-size
/// ratio sweep. All policies replay the identical trace (footnote 5);
/// off-line policies receive the accurate unshifted frequencies.
pub(crate) fn ratio_sweep(
    ctx: &ExperimentContext,
    repo: &Arc<Repository>,
    policies: &[PolicyKind],
    ratios: &[f64],
    paper_requests: u64,
    fig_tag: u64,
) -> (Vec<Series>, Vec<Series>) {
    let requests = ctx.requests(paper_requests);
    let trace = Trace::from_generator(RequestGenerator::new(
        repo.len(),
        THETA,
        0,
        requests,
        ctx.sub_seed(fig_tag),
    ));
    let freqs = ShiftedZipf::new(Zipf::new(repo.len(), THETA), 0).frequencies();
    let config = SimulationConfig::default();

    // Every (policy, ratio) cell is an independent simulation point:
    // fresh cache, shared immutable trace/frequencies. Fan the whole
    // grid out and reassemble rows afterwards — results are identical
    // at any `ctx.jobs` because each point's seed depends only on
    // (fig_tag, pi), never on scheduling.
    let grid: Vec<(usize, f64)> = policies
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| ratios.iter().map(move |&ratio| (pi, ratio)))
        .collect();
    let cells = ctx.run_points(&grid, |_, &(pi, ratio)| {
        let capacity = repo.cache_capacity_for_ratio(ratio);
        let mut cache = ctx.build_policy(
            policies[pi],
            Arc::clone(repo),
            capacity,
            ctx.policy_seed(fig_tag, pi),
            Some(&freqs),
        );
        let report = simulate(cache.as_mut(), repo, trace.requests(), &config);
        (report.hit_rate(), report.byte_hit_rate())
    });

    let mut hit_series = Vec::with_capacity(policies.len());
    let mut byte_series = Vec::with_capacity(policies.len());
    for (pi, policy) in policies.iter().enumerate() {
        let row = &cells[pi * ratios.len()..(pi + 1) * ratios.len()];
        hit_series.push(Series::new(
            policy.to_string(),
            row.iter().map(|&(h, _)| h).collect(),
        ));
        byte_series.push(Series::new(
            policy.to_string(),
            row.iter().map(|&(_, b)| b).collect(),
        ));
    }
    (hit_series, byte_series)
}

/// The Figure 6.a / 7.a protocol: phases of requests, one per shift-id,
/// run *sequentially* against the same cache; at each phase end the
/// theoretical hit rate (resident mass under that phase's accurate
/// frequencies) is recorded. Off-line policies are re-informed at each
/// phase boundary.
pub(crate) fn adaptivity_sweep(
    ctx: &ExperimentContext,
    repo: &Arc<Repository>,
    policies: &[PolicyKind],
    shifts: &[usize],
    paper_requests_per_phase: u64,
    fig_tag: u64,
) -> Vec<Series> {
    let per_phase = ctx.requests(paper_requests_per_phase);
    let zipf = Zipf::new(repo.len(), THETA);
    // One deterministic trace covering all phases, shared by all policies.
    let schedule =
        PhaseSchedule::from_pairs(&shifts.iter().map(|&g| (per_phase, g)).collect::<Vec<_>>());
    let trace = Trace::from_generator(RequestGenerator::with_schedule(
        repo.len(),
        THETA,
        schedule,
        ctx.sub_seed(fig_tag),
    ));

    // Phases are sequential *within* a policy (one cache lives across
    // all of them), so the parallel unit here is the policy.
    let points: Vec<usize> = (0..policies.len()).collect();
    ctx.run_points(&points, |_, &pi| {
        let phase0_freqs = ShiftedZipf::new(zipf.clone(), shifts[0]).frequencies();
        let mut cache = ctx.build_policy(
            policies[pi],
            Arc::clone(repo),
            repo.cache_capacity_for_ratio(0.125),
            ctx.policy_seed(fig_tag, pi),
            Some(&phase0_freqs),
        );
        let mut values = Vec::with_capacity(shifts.len());
        for (phase, &g) in shifts.iter().enumerate() {
            let freqs = ShiftedZipf::new(zipf.clone(), g).frequencies();
            cache.inform_frequencies(&freqs);
            let from = phase * per_phase as usize;
            let to = from + per_phase as usize;
            for req in trace.slice(from, to) {
                cache.access(req.clip, req.at);
            }
            values.push(theoretical_hit_rate(cache.as_ref(), &freqs));
        }
        Series::new(policies[pi].to_string(), values)
    })
}

/// The Figure 6.b / 7.b protocol: a two-phase run with the shift-id
/// changing mid-way; returns the windowed (per-100-requests) hit-rate
/// series for each policy.
pub(crate) fn windowed_adaptivity(
    ctx: &ExperimentContext,
    repo: &Arc<Repository>,
    policies: &[PolicyKind],
    phases: &[(u64, usize)],
    fig_tag: u64,
) -> (Vec<String>, Vec<Series>) {
    let scaled: Vec<(u64, usize)> = phases.iter().map(|&(n, g)| (ctx.requests(n), g)).collect();
    let schedule = PhaseSchedule::from_pairs(&scaled);
    let trace = Trace::from_generator(RequestGenerator::with_schedule(
        repo.len(),
        THETA,
        schedule,
        ctx.sub_seed(fig_tag),
    ));
    let zipf = Zipf::new(repo.len(), THETA);
    let first_freqs = ShiftedZipf::new(zipf.clone(), scaled[0].1).frequencies();
    let config = SimulationConfig::default();

    // One point per policy; every policy replays the same trace.
    let indices: Vec<usize> = (0..policies.len()).collect();
    let out = ctx.run_points(&indices, |_, &pi| {
        let mut cache = ctx.build_policy(
            policies[pi],
            Arc::clone(repo),
            repo.cache_capacity_for_ratio(0.125),
            ctx.policy_seed(fig_tag, pi),
            Some(&first_freqs),
        );
        // Off-line oracle: re-inform at each phase boundary. Since
        // `simulate` replays the whole trace at once, split per phase.
        let mut points: Vec<f64> = Vec::new();
        let mut offset = 0usize;
        for &(n, g) in &scaled {
            let freqs = ShiftedZipf::new(zipf.clone(), g).frequencies();
            cache.inform_frequencies(&freqs);
            let report = simulate(
                cache.as_mut(),
                repo,
                trace.slice(offset, offset + n as usize),
                &config,
            );
            points.extend_from_slice(report.series.points());
            offset += n as usize;
        }
        Series::new(policies[pi].to_string(), points)
    });
    let x: Vec<String> = out
        .first()
        .map(|s| {
            (1..=s.values.len())
                .map(|w| format!("{}", w as u64 * 100))
                .collect()
        })
        .unwrap_or_default();
    (x, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipcache_media::paper;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext::at_scale(0.02)
    }

    #[test]
    fn ratio_sweep_shapes_and_monotonicity() {
        let repo = Arc::new(paper::variable_sized_repository_of(48));
        let policies = [PolicyKind::Lru, PolicyKind::Random];
        let ratios = [0.1, 0.5];
        let (hits, bytes) = ratio_sweep(&tiny_ctx(), &repo, &policies, &ratios, 10_000, 0x7E57);
        assert_eq!(hits.len(), 2);
        assert_eq!(bytes.len(), 2);
        for s in hits.iter().chain(&bytes) {
            assert_eq!(s.values.len(), ratios.len());
            for v in &s.values {
                assert!((0.0..=1.0).contains(v), "{}: {v}", s.name);
            }
            assert!(
                s.values[1] >= s.values[0],
                "{} must not fall with size",
                s.name
            );
        }
    }

    #[test]
    fn adaptivity_sweep_returns_resident_mass() {
        let repo = Arc::new(paper::variable_sized_repository_of(48));
        let series = adaptivity_sweep(
            &tiny_ctx(),
            &repo,
            &[PolicyKind::Lru],
            &[0, 10],
            5_000,
            0x7E58,
        );
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].values.len(), 2);
        for v in &series[0].values {
            assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn windowed_adaptivity_covers_all_phases() {
        let repo = Arc::new(paper::variable_sized_repository_of(48));
        let (x, series) = windowed_adaptivity(
            &tiny_ctx(),
            &repo,
            &[PolicyKind::Lru],
            &[(10_000, 0), (10_000, 5)],
            0x7E59,
        );
        // scale 0.02 → 200 + 200 requests → 4 windows of 100.
        assert_eq!(x.len(), 4);
        assert_eq!(series[0].values.len(), 4);
    }

    #[test]
    fn sweeps_are_jobs_invariant() {
        // The determinism contract: jobs=1 and jobs=4 produce
        // bit-identical figures, because point seeds derive from
        // (fig_tag, policy index) and never from thread identity.
        let repo = Arc::new(paper::variable_sized_repository_of(48));
        let policies = [
            PolicyKind::Lru,
            PolicyKind::Random,
            PolicyKind::DynSimple { k: 2 },
        ];
        let ratios = [0.05, 0.125, 0.25, 0.5];
        let serial = tiny_ctx();
        let parallel = serial.fork().with_jobs(4);

        let (h1, b1) = ratio_sweep(&serial, &repo, &policies, &ratios, 10_000, 0x7E5A);
        let (h4, b4) = ratio_sweep(&parallel, &repo, &policies, &ratios, 10_000, 0x7E5A);
        assert_eq!(h1, h4);
        assert_eq!(b1, b4);

        let a1 = adaptivity_sweep(&serial, &repo, &policies, &[0, 7, 14], 5_000, 0x7E5B);
        let a4 = adaptivity_sweep(&parallel, &repo, &policies, &[0, 7, 14], 5_000, 0x7E5B);
        assert_eq!(a1, a4);

        let w1 = windowed_adaptivity(
            &serial,
            &repo,
            &policies,
            &[(10_000, 0), (10_000, 5)],
            0x7E5C,
        );
        let w4 = windowed_adaptivity(
            &parallel,
            &repo,
            &policies,
            &[(10_000, 0), (10_000, 5)],
            0x7E5C,
        );
        assert_eq!(w1, w4);
        // Both contexts saw the same point count.
        assert_eq!(serial.stats.points(), parallel.stats.points());
    }

    #[test]
    fn sweeps_are_backend_invariant() {
        // The other determinism contract: the heap victim index makes
        // the same eviction decisions as the scan, so figures are
        // bit-identical under `--backend heap` (a mixed lineup — heap
        // where supported, silent scan fallback for GreedyDual's
        // time-varying cousins — included).
        use clipcache_core::VictimBackend;
        let repo = Arc::new(paper::variable_sized_repository_of(48));
        let policies = [
            PolicyKind::GreedyDual,
            PolicyKind::LruK { k: 2 },
            PolicyKind::Random,
            PolicyKind::Igd, // scan-only: falls back under heap contexts
        ];
        let ratios = [0.05, 0.25];
        let scan = tiny_ctx();
        let heap = scan.fork().with_backend(VictimBackend::Heap);
        let (h_scan, b_scan) = ratio_sweep(&scan, &repo, &policies, &ratios, 10_000, 0x7E5D);
        let (h_heap, b_heap) = ratio_sweep(&heap, &repo, &policies, &ratios, 10_000, 0x7E5D);
        assert_eq!(h_scan, h_heap);
        assert_eq!(b_scan, b_heap);
    }
}
