//! Figure 5: the paper's new techniques against the old ones.
//!
//! * 5.a (equi-sized): DYNSimple and IGD recover the hit rate GreedyDual
//!   loses on equal sizes, matching or beating LRU-2.
//! * 5.b (variable-sized): DYNSimple(K=32) leads; LRU-S2 and GreedyDual
//!   are competitive; LRU-2 trails badly.

use crate::context::ExperimentContext;
use crate::figures::ratio_sweep;
use crate::report::FigureResult;
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use std::sync::Arc;

/// The x-axis of Figure 5: `S_T / S_DB` from 0.01 to 0.25.
pub const RATIOS: [f64; 6] = [0.01, 0.05, 0.1, 0.15, 0.2, 0.25];

/// Run Figure 5 (both panels).
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let x: Vec<String> = RATIOS.iter().map(|r| r.to_string()).collect();

    // 5.a — equi-sized repository.
    let equi = Arc::new(paper::equi_sized_repository());
    let policies_a = [
        PolicyKind::DynSimple { k: 32 },
        PolicyKind::Igd,
        PolicyKind::LruK { k: 2 },
        PolicyKind::GreedyDual,
    ];
    let (hits_a, _) = ratio_sweep(ctx, &equi, &policies_a, &RATIOS, 10_000, 0xF5A);

    // 5.b — variable-sized repository.
    let var = Arc::new(paper::variable_sized_repository());
    let policies_b = [
        PolicyKind::DynSimple { k: 32 },
        PolicyKind::LruSK { k: 2 },
        PolicyKind::GreedyDual,
        PolicyKind::LruK { k: 2 },
    ];
    let (hits_b, _) = ratio_sweep(ctx, &var, &policies_b, &RATIOS, 10_000, 0xF5B);

    vec![
        FigureResult::new(
            "fig5a",
            "Cache hit rate vs S_T/S_DB (equi-sized clips)",
            "S_T/S_DB",
            x.clone(),
            hits_a,
        ),
        FigureResult::new(
            "fig5b",
            "Cache hit rate vs S_T/S_DB (variable-sized clips)",
            "S_T/S_DB",
            x,
            hits_b,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_techniques_fix_greedydual_on_equi_sized() {
        let ctx = ExperimentContext::at_scale(0.2);
        let figs = run(&ctx);
        let a = &figs[0];
        let dyn_s = a.series_named("DYNSimple(K=32)").unwrap();
        let igd = a.series_named("IGD").unwrap();
        let gd = a.series_named("GreedyDual").unwrap();
        assert!(dyn_s.mean() > gd.mean(), "DYNSimple must beat GreedyDual");
        assert!(igd.mean() > gd.mean(), "IGD must beat GreedyDual");
    }

    #[test]
    fn variable_sized_ranking() {
        let ctx = ExperimentContext::at_scale(0.2);
        let figs = run(&ctx);
        let b = &figs[1];
        let dyn_s = b.series_named("DYNSimple(K=32)").unwrap();
        let lru_s2 = b.series_named("LRU-S2").unwrap();
        let lru2 = b.series_named("LRU-2").unwrap();
        // Size-aware techniques clear LRU-2 by a wide margin.
        assert!(dyn_s.mean() > lru2.mean() + 0.05);
        assert!(lru_s2.mean() > lru2.mean() + 0.05);
    }
}
