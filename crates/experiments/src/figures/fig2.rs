//! Figure 2: Simple vs LRU-2 vs GreedyDual vs Random on the variable-sized
//! repository — cache hit rate (2.a) and byte hit rate (2.b) as a function
//! of `S_T / S_DB`.
//!
//! Expected shape (paper):
//! * Simple gives the highest hit rate at every ratio (it is off-line);
//! * Simple and GreedyDual beat LRU-2 on hit rate because they are
//!   size-aware;
//! * LRU-2 is competitive on *byte* hit rate;
//! * Random trails everything but also rises with cache size.

use crate::context::ExperimentContext;
use crate::figures::ratio_sweep;
use crate::report::FigureResult;
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use std::sync::Arc;

/// The paper's x-axis: `S_T / S_DB` values of Figure 2.
pub const RATIOS: [f64; 6] = [0.0125, 0.1, 0.2, 0.3, 0.5, 0.75];

/// The four techniques of Figure 2.
pub fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Simple,
        PolicyKind::GreedyDual,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Random,
    ]
}

/// Run Figure 2 (both panels).
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let (hits, bytes) = ratio_sweep(ctx, &repo, &policies(), &RATIOS, 10_000, 0xF2);
    let x: Vec<String> = RATIOS.iter().map(|r| r.to_string()).collect();
    vec![
        FigureResult::new(
            "fig2a",
            "Cache hit rate vs S_T/S_DB (variable-sized clips)",
            "S_T/S_DB",
            x.clone(),
            hits,
        ),
        FigureResult::new(
            "fig2b",
            "Byte hit rate vs S_T/S_DB (variable-sized clips)",
            "S_T/S_DB",
            x,
            bytes,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper_at_reduced_scale() {
        let ctx = ExperimentContext::at_scale(0.2);
        let figs = run(&ctx);
        assert_eq!(figs.len(), 2);
        let hit = &figs[0];
        let simple = hit.series_named("Simple").unwrap();
        let gd = hit.series_named("GreedyDual").unwrap();
        let lru2 = hit.series_named("LRU-2").unwrap();
        let random = hit.series_named("Random").unwrap();

        // Hit rate rises with cache size for every technique.
        for s in [simple, gd, lru2, random] {
            assert!(
                s.values.last().unwrap() > s.values.first().unwrap(),
                "{} should rise with cache size",
                s.name
            );
        }
        // Size-aware techniques beat LRU-2 on mean hit rate.
        assert!(simple.mean() > lru2.mean());
        assert!(gd.mean() > lru2.mean());
        // Simple dominates Random everywhere.
        for (s, r) in simple.values.iter().zip(&random.values) {
            assert!(s >= r, "Simple {s} vs Random {r}");
        }
    }
}
