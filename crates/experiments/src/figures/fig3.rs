//! Figure 3: LRU-2 provides a higher cache hit rate than GreedyDual for a
//! repository of equi-sized clips.
//!
//! On equal sizes GreedyDual's priorities collapse (`cost/size` identical
//! for every clip) and it must break ties randomly, forfeiting recency
//! information; LRU-2 exploits the last two reference times and wins.

use crate::context::ExperimentContext;
use crate::figures::ratio_sweep;
use crate::report::FigureResult;
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use std::sync::Arc;

/// Figure 3 uses the same ratio axis as Figure 2.
pub const RATIOS: [f64; 6] = [0.0125, 0.1, 0.2, 0.3, 0.5, 0.75];

/// Run Figure 3.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::equi_sized_repository());
    let policies = [PolicyKind::LruK { k: 2 }, PolicyKind::GreedyDual];
    let (hits, _) = ratio_sweep(ctx, &repo, &policies, &RATIOS, 10_000, 0xF3);
    let x: Vec<String> = RATIOS.iter().map(|r| r.to_string()).collect();
    vec![FigureResult::new(
        "fig3",
        "Cache hit rate vs S_T/S_DB (equi-sized clips)",
        "S_T/S_DB",
        x,
        hits,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru2_beats_greedydual_on_equi_sized() {
        let ctx = ExperimentContext::at_scale(0.2);
        let fig = run(&ctx).remove(0);
        let lru2 = fig.series_named("LRU-2").unwrap();
        let gd = fig.series_named("GreedyDual").unwrap();
        assert!(
            lru2.mean() > gd.mean(),
            "LRU-2 {} vs GreedyDual {}",
            lru2.mean(),
            gd.mean()
        );
        // At the extremes both converge (tiny cache: nothing helps; huge
        // cache: everything fits), so check mid-range points directly.
        for i in 1..4 {
            assert!(
                lru2.values[i] >= gd.values[i] - 0.02,
                "mid-range point {i}: LRU-2 {} vs GreedyDual {}",
                lru2.values[i],
                gd.values[i]
            );
        }
    }
}
