//! Figure 6: adaptability to evolving access patterns (`S_T/S_DB` = 0.125,
//! variable-sized repository).
//!
//! * 6.a — theoretical cache hit rate after 10,000 requests at each
//!   shift-id g ∈ {0, 100, …, 500}, phases run back-to-back against the
//!   same cache. Simple (the re-informed oracle) sets the yardstick;
//!   DYNSimple/LRU-SK with K = 2 adapt within a few hundred requests;
//!   DYNSimple with K = 32 adapts more slowly; IGD needs the most
//!   requests to stabilize.
//! * 6.b — cache hit rate every 100 requests across a g: 200 → 300 switch
//!   at request 20,000 (of 30,000): every technique drops sharply at the
//!   switch, then recovers at its own pace.

use crate::context::ExperimentContext;
use crate::figures::{adaptivity_sweep, windowed_adaptivity};
use crate::report::FigureResult;
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use std::sync::Arc;

/// The shift-ids of Figure 6.a.
pub const SHIFTS: [usize; 6] = [0, 100, 200, 300, 400, 500];

/// Run Figure 6 (both panels).
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());

    let policies_a = [
        PolicyKind::Simple,
        PolicyKind::DynSimple { k: 2 },
        PolicyKind::DynSimple { k: 32 },
        PolicyKind::LruSK { k: 2 },
        PolicyKind::Igd,
        PolicyKind::GreedyDual,
    ];
    let series_a = adaptivity_sweep(ctx, &repo, &policies_a, &SHIFTS, 10_000, 0xF6A);
    let x_a: Vec<String> = SHIFTS.iter().map(|g| g.to_string()).collect();

    let policies_b = [
        PolicyKind::Simple,
        PolicyKind::DynSimple { k: 2 },
        PolicyKind::DynSimple { k: 32 },
        PolicyKind::LruSK { k: 2 },
        PolicyKind::Igd,
    ];
    let (x_b, series_b) = windowed_adaptivity(
        ctx,
        &repo,
        &policies_b,
        &[(20_000, 200), (10_000, 300)],
        0xF6B,
    );

    vec![
        FigureResult::new(
            "fig6a",
            "Theoretical cache hit rate vs shift-id g (S_T/S_DB = 0.125)",
            "shift g",
            x_a,
            series_a,
        ),
        FigureResult::new(
            "fig6b",
            "Cache hit rate per 100 requests across a g: 200 -> 300 switch",
            "request",
            x_b,
            series_b,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_dominates_and_k2_adapts() {
        let ctx = ExperimentContext::at_scale(0.2);
        let figs = run(&ctx);
        let a = &figs[0];
        let simple = a.series_named("Simple").unwrap();
        let dyn2 = a.series_named("DYNSimple(K=2)").unwrap();
        let gd = a.series_named("GreedyDual").unwrap();
        // The re-informed oracle is the best at every shift.
        for s in &a.series {
            assert!(
                simple.mean() >= s.mean() - 1e-9,
                "Simple must dominate {}",
                s.name
            );
        }
        // DYNSimple(K=2) adapts: beats GreedyDual on average.
        assert!(dyn2.mean() > gd.mean());
    }

    #[test]
    fn windowed_series_drop_at_switch() {
        let ctx = ExperimentContext::at_scale(0.2);
        let figs = run(&ctx);
        let b = &figs[1];
        // DYNSimple(K=32) is the slow adapter: the post-switch dip is wide
        // enough to measure reliably. Phase 1 covers 2/3 of the windows.
        let dyn32 = b.series_named("DYNSimple(K=32)").unwrap();
        let n = dyn32.values.len();
        let p1 = n * 2 / 3;
        assert!(n >= 30, "expected >= 30 windows, got {n}");
        let before = dyn32.values[p1 - 6..p1].iter().sum::<f64>() / 6.0;
        let after = dyn32.values[p1..p1 + 4].iter().sum::<f64>() / 4.0;
        assert!(
            after < before - 0.02,
            "hit rate must drop at the switch: after {after} vs before {before}"
        );
        // ... and recover by the end of phase 2.
        let late = dyn32.values[n - 5..].iter().sum::<f64>() / 5.0;
        assert!(
            late > after,
            "hit rate must recover: late {late} vs post-switch {after}"
        );
    }
}
