//! Continuous-time regional streaming: the paper's throughput metric with
//! real display durations.
//!
//! The round-based `region` experiment charges every display one round;
//! here the discrete-event engine holds a miss's bandwidth reservation
//! for the clip's entire display (2 hours for the big videos), so station
//! contention compounds over time. Sixteen phones behind an 8 Mbps
//! station run a closed request loop for one simulated day per cache
//! ratio.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::{paper, Bandwidth};
use clipcache_sim::des::{StreamingConfig, StreamingSim};
use clipcache_sim::network::{ConnectivitySchedule, NetworkLink};
use clipcache_sim::station::BaseStation;
use clipcache_workload::RequestGenerator;
use std::sync::Arc;

/// Per-device cache ratios swept.
pub const RATIOS: [f64; 4] = [0.02, 0.1, 0.25, 0.5];
/// Devices in the region.
pub const DEVICES: usize = 16;

/// Run the continuous-time streaming experiment.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository_of(96));
    // One simulated day at full scale; `scale` shortens the horizon.
    let horizon_secs = 24.0 * 3600.0 * ctx.scale.max(0.05);

    // Both panels (cellular-only and the FMC day) sweep the same
    // ratios with the same caches and workloads; only the connectivity
    // schedule differs. Fan the full (ratio, schedule) grid out as one
    // batch of independent points.
    let grid: Vec<(f64, bool)> = RATIOS
        .iter()
        .flat_map(|&ratio| [(ratio, false), (ratio, true)])
        .collect();
    let cells = ctx.run_points(&grid, |_, &(ratio, fmc)| {
        let caches = (0..DEVICES)
            .map(|i| {
                PolicyKind::DynSimple { k: 2 }.build(
                    Arc::clone(&repo),
                    repo.cache_capacity_for_ratio(ratio),
                    ctx.sub_seed(0xF100 + i as u64),
                    None,
                )
            })
            .collect();
        let workloads = (0..DEVICES)
            .map(|i| {
                RequestGenerator::new(
                    repo.len(),
                    THETA,
                    0,
                    1_000_000, // effectively unbounded for the horizon
                    ctx.sub_seed(0xF200 + i as u64),
                )
            })
            .collect();
        let schedule = if fmc {
            ConnectivitySchedule::fmc_day(25)
        } else {
            ConnectivitySchedule::always(NetworkLink::cellular_default())
        };
        let mut sim = StreamingSim::new(
            Arc::clone(&repo),
            BaseStation::new(Bandwidth::mbps(8)),
            StreamingConfig {
                horizon_secs,
                ..StreamingConfig::default()
            },
            caches,
            workloads,
            schedule,
        );
        // Devices arrive with history: warm each cache on 2,000 requests
        // before simulated time starts.
        sim.warm_up(2_000, ctx.sub_seed(0xF3));
        let report = sim.run();
        (
            report.denial_rate(),
            report.mean_concurrent_displays(),
            report.displays_completed as f64,
            report.mean_startup_secs(),
        )
    });
    let cellular: Vec<_> = cells.iter().step_by(2).collect();
    let fmc: Vec<_> = cells.iter().skip(1).step_by(2).collect();
    let denial: Vec<f64> = cellular.iter().map(|c| c.0).collect();
    let concurrent: Vec<f64> = cellular.iter().map(|c| c.1).collect();
    let completed: Vec<f64> = cellular.iter().map(|c| c.2).collect();
    let startup: Vec<f64> = cellular.iter().map(|c| c.3).collect();

    let cellular_fig = FigureResult::new(
        "streaming",
        "Continuous-time region: 16 phones, 8 Mbps station, one simulated day",
        "S_T/S_DB",
        RATIOS.iter().map(|r| r.to_string()).collect(),
        vec![
            Series::new("denial rate", denial),
            Series::new("mean concurrent displays", concurrent),
            Series::new("displays completed", completed),
            Series::new("mean startup latency (s)", startup),
        ],
    );

    // Second panel: the FMC day (Wi-Fi at home → cellular → dead zone →
    // cellular). Wi-Fi misses ride per-device broadband and bypass the
    // shared station, so the same caches deny far less than on
    // cellular-only days — the convergence story of the paper's intro.
    let denial_fmc: Vec<f64> = fmc.iter().map(|c| c.0).collect();
    let startup_fmc: Vec<f64> = fmc.iter().map(|c| c.3).collect();
    let fmc_fig = FigureResult::new(
        "streaming_fmc",
        "Same region across the FMC day: Wi-Fi misses bypass the shared station",
        "S_T/S_DB",
        RATIOS.iter().map(|r| r.to_string()).collect(),
        vec![
            Series::new("denial rate", denial_fmc),
            Series::new("mean startup latency (s)", startup_fmc),
        ],
    );

    vec![cellular_fig, fmc_fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmc_day_denies_less_than_cellular_only() {
        let ctx = ExperimentContext::at_scale(0.25);
        let figs = run(&ctx);
        let cellular = figs[0].series_named("denial rate").unwrap();
        let fmc = figs[1].series_named("denial rate").unwrap();
        for (i, (c, f)) in cellular.values.iter().zip(&fmc.values).enumerate() {
            assert!(
                f < c,
                "ratio index {i}: FMC denial {f} must undercut cellular-only {c}"
            );
        }
    }

    #[test]
    fn denial_falls_with_cache_size() {
        let ctx = ExperimentContext::at_scale(0.25);
        let fig = run(&ctx).remove(0);
        let denial = fig.series_named("denial rate").unwrap();
        assert!(
            denial.values.first().unwrap() > denial.values.last().unwrap(),
            "denial must fall with cache size: {:?}",
            denial.values
        );
        let conc = fig.series_named("mean concurrent displays").unwrap();
        for v in &conc.values {
            assert!(*v <= DEVICES as f64 + 1e-9);
        }
    }
}
