//! Ablations of the design choices DESIGN.md documents.
//!
//! 1. **IGD `nref` on admission** — the paper's text resets `nref` to 0,
//!    which makes a freshly admitted clip the next eviction candidate
//!    unless it earns a hit first: an implicit admission probation. The
//!    ablation runs both readings on *both* repositories: probation wins
//!    ~7–9 points on equi-sized clips (placing IGD exactly where Figure
//!    5.a draws it) but collapses on the variable-sized repository,
//!    where every fresh clip ties at priority `L` and size-awareness is
//!    lost. Neither reading matches every figure; DESIGN.md documents
//!    why `nref = 1` is the default.
//! 2. **DYNSimple's two-pass victim selection** — Figure 4 over-collects
//!    the cheapest candidates and then evicts biggest-first, sparing
//!    over-collected small clips. The ablation replaces pass 2 with plain
//!    ascending-value eviction to measure what the sparing pass buys.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::policies::dyn_simple::{DynSimpleCache, EvictionMode};
use clipcache_core::policies::igd::{IgdCache, NrefMode};
use clipcache_core::ClipCache;
use clipcache_media::{paper, Repository};
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::{RequestGenerator, Trace};
use std::sync::Arc;

/// The cache-size ratios swept (Figure 5's axis).
pub const RATIOS: [f64; 4] = [0.05, 0.1, 0.175, 0.25];

fn rate(cache: &mut dyn ClipCache, repo: &Repository, trace: &Trace) -> f64 {
    simulate(cache, repo, trace.requests(), &SimulationConfig::default()).hit_rate()
}

/// Run both ablations.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let requests = ctx.requests(10_000);
    let x: Vec<String> = RATIOS.iter().map(|r| r.to_string()).collect();

    // 1. IGD nref — on both repositories: the two readings win in
    //    different regimes.
    let equi = Arc::new(paper::equi_sized_repository());
    let var0 = Arc::new(paper::variable_sized_repository());
    let trace_e = Trace::from_generator(RequestGenerator::new(
        equi.len(),
        THETA,
        0,
        requests,
        ctx.sub_seed(0xF8),
    ));
    let trace_v0 = Trace::from_generator(RequestGenerator::new(
        var0.len(),
        THETA,
        0,
        requests,
        ctx.sub_seed(0xFA),
    ));
    let igd_cells = ctx.run_points(&RATIOS, |_, &ratio| {
        let cap_e = equi.cache_capacity_for_ratio(ratio);
        let mut a = IgdCache::with_nref_mode(Arc::clone(&equi), cap_e, 1, NrefMode::CountAdmission);
        let counted_e = rate(&mut a, &equi, &trace_e);
        let mut b = IgdCache::with_nref_mode(Arc::clone(&equi), cap_e, 1, NrefMode::LiteralZero);
        let literal_e = rate(&mut b, &equi, &trace_e);
        let cap_v = var0.cache_capacity_for_ratio(ratio);
        let mut c = IgdCache::with_nref_mode(Arc::clone(&var0), cap_v, 1, NrefMode::CountAdmission);
        let counted_v = rate(&mut c, &var0, &trace_v0);
        let mut d = IgdCache::with_nref_mode(Arc::clone(&var0), cap_v, 1, NrefMode::LiteralZero);
        let literal_v = rate(&mut d, &var0, &trace_v0);
        (counted_e, literal_e, counted_v, literal_v)
    });
    let counted_equi: Vec<f64> = igd_cells.iter().map(|c| c.0).collect();
    let literal_equi: Vec<f64> = igd_cells.iter().map(|c| c.1).collect();
    let counted_var: Vec<f64> = igd_cells.iter().map(|c| c.2).collect();
    let literal_var: Vec<f64> = igd_cells.iter().map(|c| c.3).collect();
    let igd_fig = FigureResult::new(
        "ablation_igd",
        "IGD nref on admission: nref=1 (default) vs the paper's literal nref=0",
        "S_T/S_DB",
        x.clone(),
        vec![
            Series::new("nref=1, equi-sized", counted_equi),
            Series::new("nref=0, equi-sized", literal_equi),
            Series::new("nref=1, variable-sized", counted_var),
            Series::new("nref=0, variable-sized", literal_var),
        ],
    );

    // 2. DYNSimple pass-2 sparing — on the variable-sized repository,
    //    where over-collection actually happens.
    let var = Arc::new(paper::variable_sized_repository());
    let trace_v = Trace::from_generator(RequestGenerator::new(
        var.len(),
        THETA,
        0,
        requests,
        ctx.sub_seed(0xF9),
    ));
    let dyn_cells = ctx.run_points(&RATIOS, |_, &ratio| {
        let capacity = var.cache_capacity_for_ratio(ratio);
        let mut a = DynSimpleCache::new(Arc::clone(&var), capacity, 2);
        let two = rate(&mut a, &var, &trace_v);
        let mut b = DynSimpleCache::new(Arc::clone(&var), capacity, 2);
        b.set_eviction_mode(EvictionMode::SinglePass);
        let one = rate(&mut b, &var, &trace_v);
        (two, one)
    });
    let two_pass: Vec<f64> = dyn_cells.iter().map(|c| c.0).collect();
    let single_pass: Vec<f64> = dyn_cells.iter().map(|c| c.1).collect();
    let dyn_fig = FigureResult::new(
        "ablation_dynsimple",
        "DYNSimple victim selection: Figure 4's two-pass vs plain ascending-value",
        "S_T/S_DB",
        x,
        vec![
            Series::new("two-pass (Figure 4)", two_pass),
            Series::new("single-pass", single_pass),
        ],
    );

    vec![igd_fig, dyn_fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nref_readings_win_in_different_regimes() {
        let ctx = ExperimentContext::at_scale(0.3);
        let figs = run(&ctx);
        let igd = &figs[0];
        let counted_e = igd.series_named("nref=1, equi-sized").unwrap();
        let literal_e = igd.series_named("nref=0, equi-sized").unwrap();
        let counted_v = igd.series_named("nref=1, variable-sized").unwrap();
        let literal_v = igd.series_named("nref=0, variable-sized").unwrap();
        // Probation wins on equal sizes…
        assert!(
            literal_e.mean() > counted_e.mean() + 0.02,
            "equi: literal {} vs counted {}",
            literal_e.mean(),
            counted_e.mean()
        );
        // …and loses on variable sizes, where it forfeits size-awareness.
        assert!(
            counted_v.mean() > literal_v.mean() + 0.02,
            "variable: counted {} vs literal {}",
            counted_v.mean(),
            literal_v.mean()
        );
    }

    #[test]
    fn two_pass_never_loses_to_single_pass() {
        let ctx = ExperimentContext::at_scale(0.3);
        let figs = run(&ctx);
        let d = &figs[1];
        let two = d.series_named("two-pass (Figure 4)").unwrap();
        let one = d.series_named("single-pass").unwrap();
        assert!(
            two.mean() >= one.mean() - 0.005,
            "two-pass {} vs single-pass {}",
            two.mean(),
            one.mean()
        );
    }
}
