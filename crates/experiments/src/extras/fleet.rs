//! Fleet upgrades: what does a region gain as devices adopt the better
//! policy?
//!
//! The paper argues per-device hit-rate gains compound into regional
//! throughput. Operators do not upgrade every handset at once, so the
//! operative question is the *adoption curve*: sixteen devices share one
//! 8 Mbps station; a sweep moves them from LRU-2 firmware to
//! DYNSimple(K=2), measuring round-based throughput and rejections at
//! each adoption level.
//!
//! The measured curve is **non-monotone**: partial adoption *dips*
//! regional throughput (9.8 → 8.6 devices/round at 4 of 16 upgraded)
//! before full adoption wins (11.1). The mechanism: DYNSimple hits the
//! tiny audio clips locally, so nearly all of its *misses* are 4 Mbps
//! video requests — expensive to admit (two fill the station) — while
//! LRU-2 hoards videos and misses cheap 300 Kbps audio that the station
//! can admit in bulk. Aggregate hit rate rises monotonically throughout;
//! it is the miss *mix* that makes the region's bandwidth go further or
//! shorter. A caution the paper's per-device framing doesn't surface.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::{paper, Bandwidth};
use clipcache_sim::device::Device;
use clipcache_sim::network::{ConnectivitySchedule, NetworkLink};
use clipcache_sim::region::RegionSim;
use clipcache_sim::station::BaseStation;
use clipcache_workload::RequestGenerator;
use std::sync::Arc;

/// Devices in the region.
pub const DEVICES: usize = 16;
/// Adoption levels swept (devices running DYNSimple).
pub const UPGRADED: [usize; 5] = [0, 4, 8, 12, 16];

/// Run the adoption sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository_of(96));
    let rounds = ctx.requests(1_000);

    let cells = ctx.run_points(&UPGRADED, |_, &upgraded| {
        let devices: Vec<Device> = (0..DEVICES)
            .map(|i| {
                let policy = if i < upgraded {
                    PolicyKind::DynSimple { k: 2 }
                } else {
                    PolicyKind::LruK { k: 2 }
                };
                let cache = policy.build(
                    Arc::clone(&repo),
                    repo.cache_capacity_for_ratio(0.1),
                    ctx.sub_seed(0xFC00 + i as u64),
                    None,
                );
                let gen = RequestGenerator::new(
                    repo.len(),
                    THETA,
                    0,
                    rounds,
                    ctx.sub_seed(0xFD00 + i as u64),
                );
                Device::new(
                    i,
                    Arc::clone(&repo),
                    cache,
                    gen,
                    ConnectivitySchedule::always(NetworkLink::cellular_default()),
                )
            })
            .collect();
        let mut region = RegionSim::new(devices, BaseStation::new(Bandwidth::mbps(8)));
        let report = region.run(rounds);
        (
            report.mean_throughput(),
            report.mean_rejections(),
            report.aggregate_hit_rate(),
        )
    });
    let throughput: Vec<f64> = cells.iter().map(|c| c.0).collect();
    let rejections: Vec<f64> = cells.iter().map(|c| c.1).collect();
    let hit_rate: Vec<f64> = cells.iter().map(|c| c.2).collect();

    vec![FigureResult::new(
        "fleet",
        "Regional throughput as devices upgrade LRU-2 -> DYNSimple (16 devices)",
        "devices upgraded",
        UPGRADED.iter().map(|u| u.to_string()).collect(),
        vec![
            Series::new("mean devices displaying / round", throughput),
            Series::new("mean rejections / round", rejections),
            Series::new("aggregate hit rate", hit_rate),
        ],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adoption_wins_but_the_curve_dips() {
        let ctx = ExperimentContext::at_scale(0.3);
        let fig = run(&ctx).remove(0);
        let tp = fig.series_named("mean devices displaying / round").unwrap();
        let hit = fig.series_named("aggregate hit rate").unwrap();
        // Endpoints: a fully upgraded fleet beats a fully legacy one.
        assert!(tp.values.last().unwrap() > tp.values.first().unwrap());
        // Aggregate hit rate is monotone in adoption even where
        // throughput is not.
        for pair in hit.values.windows(2) {
            assert!(
                pair[1] > pair[0] - 0.01,
                "hit rate dipped: {:?}",
                hit.values
            );
        }
        // The documented non-monotonicity: some interior level sits below
        // the legacy baseline (if this stops holding, the module docs
        // need rewriting, not just the test).
        let baseline = tp.values[0];
        assert!(
            tp.values[1..tp.values.len() - 1]
                .iter()
                .any(|v| *v < baseline),
            "expected an interior throughput dip: {:?}",
            tp.values
        );
    }
}
