//! Extension experiments reproducing the paper's textual claims
//! (DESIGN.md's second experiment table).

pub mod ablation;
pub mod blocks;
pub mod bypass;
pub mod clusterbench;
pub mod composition;
pub mod coop;
pub mod degradebench;
pub mod equivalence;
pub mod faultbench;
pub mod fleet;
pub mod ksweep;
pub mod latency;
pub mod locality;
pub mod loglaw;
pub mod mattson;
pub mod objectives;
pub mod optimality;
pub mod prefixbench;
pub mod quality;
pub mod recoverybench;
pub mod region;
pub mod restart;
pub mod retention;
pub mod servebench;
pub mod sizes;
pub mod skew;
pub mod streaming;
pub mod table1;
pub mod variance;
pub mod walbench;
