//! Section 1's region-throughput metric: devices sharing one base station
//! compete for bandwidth on misses. Higher per-device hit rates translate
//! directly into higher regional throughput; this experiment sweeps the
//! per-device cache ratio and reports mean round throughput for a region
//! of 16 devices behind an 8 Mbps station (room for two concurrent 4 Mbps
//! video streams).

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::{paper, Bandwidth};
use clipcache_sim::device::Device;
use clipcache_sim::network::{ConnectivitySchedule, NetworkLink};
use clipcache_sim::region::RegionSim;
use clipcache_sim::station::BaseStation;
use clipcache_workload::RequestGenerator;
use std::sync::Arc;

/// Per-device cache ratios swept.
pub const RATIOS: [f64; 4] = [0.02, 0.1, 0.25, 0.5];
/// Devices in the region.
pub const DEVICES: usize = 16;

/// Run the region-throughput experiment.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository_of(96));
    let rounds = ctx.requests(1_000);

    let cells = ctx.run_points(&RATIOS, |_, &ratio| {
        let devices: Vec<Device> = (0..DEVICES)
            .map(|i| {
                let cache = PolicyKind::DynSimple { k: 2 }.build(
                    Arc::clone(&repo),
                    repo.cache_capacity_for_ratio(ratio),
                    ctx.sub_seed(0xE8 ^ i as u64),
                    None,
                );
                let gen = RequestGenerator::new(
                    repo.len(),
                    THETA,
                    0,
                    rounds,
                    ctx.sub_seed(0xE80 + i as u64),
                );
                Device::new(
                    i,
                    Arc::clone(&repo),
                    cache,
                    gen,
                    ConnectivitySchedule::always(NetworkLink::cellular_default()),
                )
            })
            .collect();
        let mut region = RegionSim::new(devices, BaseStation::new(Bandwidth::mbps(8)));
        let report = region.run(rounds);
        (
            report.mean_throughput(),
            report.mean_rejections(),
            report.aggregate_hit_rate(),
        )
    });
    let throughput: Vec<f64> = cells.iter().map(|c| c.0).collect();
    let rejections: Vec<f64> = cells.iter().map(|c| c.1).collect();
    let hit_rates: Vec<f64> = cells.iter().map(|c| c.2).collect();

    vec![FigureResult::new(
        "region",
        "Region throughput vs per-device cache size (16 devices, 8 Mbps station)",
        "S_T/S_DB",
        RATIOS.iter().map(|r| r.to_string()).collect(),
        vec![
            Series::new("mean devices displaying / round", throughput),
            Series::new("mean rejections / round", rejections),
            Series::new("aggregate hit rate", hit_rates),
        ],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_rises_with_cache_size() {
        let ctx = ExperimentContext::at_scale(0.2);
        let fig = run(&ctx).remove(0);
        let tp = fig.series_named("mean devices displaying / round").unwrap();
        let rej = fig.series_named("mean rejections / round").unwrap();
        assert!(tp.values.first().unwrap() < tp.values.last().unwrap());
        assert!(rej.values.first().unwrap() > rej.values.last().unwrap());
        // Throughput can never exceed the device count.
        for v in &tp.values {
            assert!(*v <= DEVICES as f64 + 1e-9);
        }
    }
}
