//! Section 4.4.1's closing observation: "the cache hit rate with the
//! alternative techniques becomes almost identical with a more skewed
//! access pattern. With a more uniform distribution of access, DYNSimple
//! outperforms the other techniques by a wider margin."
//!
//! In this parameterization (`p_i ∝ 1/i^(1-θ)`), θ → 0 is *more skewed*
//! and θ → 1 more uniform, so the gap between DYNSimple and the weakest
//! competitor should widen as θ grows.

use crate::context::ExperimentContext;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::{RequestGenerator, Trace};
use std::sync::Arc;

/// The θ values swept (0 = most skewed, 0.9 = near uniform).
pub const THETAS: [f64; 5] = [0.0, 0.27, 0.5, 0.7, 0.9];

/// Run the skew sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let requests = ctx.requests(10_000);
    let capacity = repo.cache_capacity_for_ratio(0.125);
    let policies = [
        PolicyKind::DynSimple { k: 2 },
        PolicyKind::GreedyDual,
        PolicyKind::LruK { k: 2 },
    ];
    let config = SimulationConfig::default();

    // Materialize each theta's trace once (shared across policies),
    // then fan the (theta, policy) grid out as independent points.
    let theta_indices: Vec<usize> = (0..THETAS.len()).collect();
    let traces: Vec<Trace> = ctx.run_points(&theta_indices, |_, &ti| {
        Trace::from_generator(RequestGenerator::new(
            repo.len(),
            THETAS[ti],
            0,
            requests,
            ctx.sub_seed(0xE3 ^ (ti as u64) << 4),
        ))
    });
    let grid: Vec<(usize, usize)> = theta_indices
        .iter()
        .flat_map(|&ti| (0..policies.len()).map(move |pi| (ti, pi)))
        .collect();
    let cells = ctx.run_points(&grid, |_, &(ti, pi)| {
        let mut cache = policies[pi].build(Arc::clone(&repo), capacity, 1, None);
        simulate(cache.as_mut(), &repo, traces[ti].requests(), &config).hit_rate()
    });

    let series = policies
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            let values = theta_indices
                .iter()
                .map(|&ti| cells[ti * policies.len() + pi])
                .collect();
            Series::new(p.to_string(), values)
        })
        .collect();
    vec![FigureResult::new(
        "skew",
        "Cache hit rate vs Zipf theta (more uniform to the right)",
        "theta",
        THETAS.iter().map(|t| t.to_string()).collect(),
        series,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynsimple_margin_widens_with_uniformity() {
        let ctx = ExperimentContext::at_scale(0.3);
        let fig = run(&ctx).remove(0);
        let d = fig.series_named("DYNSimple(K=2)").unwrap();
        let lru2 = fig.series_named("LRU-2").unwrap();
        // Margin over LRU-2 at the most skewed vs most uniform end.
        let margin_skewed = d.values[0] - lru2.values[0];
        let margin_uniform = d.values[THETAS.len() - 1] - lru2.values[THETAS.len() - 1];
        assert!(
            margin_uniform > margin_skewed,
            "margin should widen: skewed {margin_skewed} vs uniform {margin_uniform}"
        );
    }
}
