//! Section 1's startup-latency metric: streaming from the cache is
//! near-instant; Wi-Fi misses pay admission overhead; cellular misses on
//! video must prefetch most of the clip; disconnected misses cannot be
//! served at all. This experiment quantifies mean startup latency and
//! unavailability across cache sizes under the FMC connectivity day.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use clipcache_sim::network::ConnectivitySchedule;
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::{RequestGenerator, Trace};
use std::sync::Arc;

/// Cache ratios swept.
pub const RATIOS: [f64; 4] = [0.05, 0.125, 0.25, 0.5];

/// Run the latency experiment with DYNSimple(K=2).
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let requests = ctx.requests(10_000);
    let trace = Trace::from_generator(RequestGenerator::new(
        repo.len(),
        THETA,
        0,
        requests,
        ctx.sub_seed(0xE7),
    ));
    let config = SimulationConfig {
        connectivity: Some(ConnectivitySchedule::fmc_day(250)),
        ..SimulationConfig::default()
    };

    let cells = ctx.run_points(&RATIOS, |_, &ratio| {
        let mut cache = PolicyKind::DynSimple { k: 2 }.build(
            Arc::clone(&repo),
            repo.cache_capacity_for_ratio(ratio),
            1,
            None,
        );
        let report = simulate(cache.as_mut(), &repo, trace.requests(), &config);
        (
            report.latency.mean_secs(),
            report.latency.percentile(0.95),
            report.latency.unavailability(),
            report.hit_rate(),
        )
    });
    let mean_latency: Vec<f64> = cells.iter().map(|c| c.0).collect();
    let p95_latency: Vec<f64> = cells.iter().map(|c| c.1).collect();
    let unavailability: Vec<f64> = cells.iter().map(|c| c.2).collect();
    let hit_rates: Vec<f64> = cells.iter().map(|c| c.3).collect();

    vec![FigureResult::new(
        "latency",
        "Startup latency and unavailability vs cache size (DYNSimple, FMC day)",
        "S_T/S_DB",
        RATIOS.iter().map(|r| r.to_string()).collect(),
        vec![
            Series::new("mean startup latency (s)", mean_latency),
            Series::new("p95 startup latency (s)", p95_latency),
            Series::new("unavailability", unavailability),
            Series::new("cache hit rate", hit_rates),
        ],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_cache_means_lower_latency_and_unavailability() {
        let ctx = ExperimentContext::at_scale(0.2);
        let fig = run(&ctx).remove(0);
        let lat = fig.series_named("mean startup latency (s)").unwrap();
        let unav = fig.series_named("unavailability").unwrap();
        let hits = fig.series_named("cache hit rate").unwrap();
        assert!(lat.values.first().unwrap() > lat.values.last().unwrap());
        assert!(unav.values.first().unwrap() > unav.values.last().unwrap());
        assert!(hits.values.first().unwrap() < hits.values.last().unwrap());
    }
}
