//! Section 3.3's Simple variant: streaming unpopular clips without caching
//! them "performs either identical or slightly better" than always
//! materializing. This experiment reruns the Figure 2 sweep with both
//! admission modes.

use crate::context::ExperimentContext;
use crate::figures::{fig2, ratio_sweep};
use crate::report::FigureResult;
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use std::sync::Arc;

/// Run the Simple-vs-bypass comparison, including the on-line variant
/// (DYNSimple with no-materialize admission — the paper's Section 2
/// future-work scenario).
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let policies = [
        PolicyKind::Simple,
        PolicyKind::SimpleBypass,
        PolicyKind::DynSimple { k: 2 },
        PolicyKind::DynSimpleBypass { k: 2 },
    ];
    let (hits, _) = ratio_sweep(ctx, &repo, &policies, &fig2::RATIOS, 10_000, 0xE4);
    vec![FigureResult::new(
        "bypass",
        "Always-materialize vs bypass admission: cache hit rate vs S_T/S_DB",
        "S_T/S_DB",
        fig2::RATIOS.iter().map(|r| r.to_string()).collect(),
        hits,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bypass_never_loses_much() {
        let ctx = ExperimentContext::at_scale(0.2);
        let fig = run(&ctx).remove(0);
        let base = fig.series_named("Simple").unwrap();
        let bypass = fig.series_named("Simple(bypass)").unwrap();
        for (i, (b, p)) in base.values.iter().zip(&bypass.values).enumerate() {
            assert!(p >= &(b - 0.02), "ratio index {i}: bypass {p} vs base {b}");
        }
        // And on average it is at least as good.
        assert!(bypass.mean() >= base.mean() - 1e-9);
    }

    #[test]
    fn online_bypass_competitive_with_always_materialize() {
        let ctx = ExperimentContext::at_scale(0.2);
        let fig = run(&ctx).remove(0);
        let always = fig.series_named("DYNSimple(K=2)").unwrap();
        let bypass = fig.series_named("DYNSimple(K=2,bypass)").unwrap();
        assert!(
            bypass.mean() >= always.mean() - 0.02,
            "online bypass {} vs always {}",
            bypass.mean(),
            always.mean()
        );
    }
}
