//! Table 1 — "Parameters and their definitions" — rendered with the
//! concrete values of the paper's evaluation repository. The paper's
//! table defines symbols; this regenerator instantiates them so the
//! simulated database can be audited at a glance:
//!
//! * `N` — number of clips (576),
//! * `f(i)` — frequency of access to clip i (Zipf θ = 0.27; we report the
//!   head),
//! * `size(i)` — clip sizes (the six-class pattern),
//! * `S_DB = Σ size(i)`,
//! * `S_T` — the device cache size (reported for the figures' ratios),
//! * `B_Display(i)` — display bandwidth (300 Kbps audio / 4 Mbps video).

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_media::{paper, CatalogStats};
use clipcache_workload::{ShiftedZipf, Zipf};

/// Render Table 1's parameters for the evaluation repository.
pub fn run(_ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = paper::variable_sized_repository();
    let stats = CatalogStats::of(&repo);
    let dist = ShiftedZipf::new(Zipf::new(repo.len(), THETA), 0);

    // Scalar parameters, one column each.
    let scalar = FigureResult::new(
        "table1",
        "Table 1 instantiated: repository and workload parameters",
        "parameter",
        vec![
            "N (clips)".into(),
            "S_DB (bytes)".into(),
            "max size(i) (bytes)".into(),
            "min size(i) (bytes)".into(),
            "B_Display audio (bps)".into(),
            "B_Display video (bps)".into(),
            "Zipf theta".into(),
            "f(1) most popular".into(),
            "f(N) least popular".into(),
        ],
        vec![Series::new(
            "value",
            vec![
                stats.clips as f64,
                stats.total_size.as_f64(),
                stats.max_clip_size.as_f64(),
                stats.min_clip_size.as_f64(),
                paper::AUDIO_BW.as_bps() as f64,
                paper::VIDEO_BW.as_bps() as f64,
                THETA,
                dist.frequency_of_clip(clipcache_media::ClipId::new(1)),
                dist.frequency_of_clip(clipcache_media::ClipId::new(repo.len() as u32)),
            ],
        )],
    );

    // The S_T values used across the figures.
    let ratios = [0.0125, 0.05, 0.1, 0.125, 0.2, 0.25, 0.3, 0.5, 0.75];
    let st = FigureResult::new(
        "table1_st",
        "Cache sizes S_T for the figures' S_T/S_DB ratios",
        "S_T/S_DB",
        ratios.iter().map(|r| r.to_string()).collect(),
        vec![Series::new(
            "S_T (bytes)",
            ratios
                .iter()
                .map(|&r| repo.cache_capacity_for_ratio(r).as_f64())
                .collect(),
        )],
    );

    vec![scalar, st]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_match_the_paper() {
        let figs = run(&ExperimentContext::default());
        let t1 = &figs[0];
        let v = &t1.series[0].values;
        assert_eq!(v[0], 576.0); // N
        assert!((v[1] - 596.678_4e9).abs() < 1e6); // S_DB ≈ 596.7 GB
        assert_eq!(v[2], 3.5e9); // biggest video
        assert_eq!(v[3], 2.2e6); // smallest audio
        assert_eq!(v[4], 300_000.0);
        assert_eq!(v[5], 4_000_000.0);
        assert_eq!(v[6], 0.27);
        assert!(v[7] > v[8], "rank 1 must outdraw rank N");
        // S_T at 0.125 is the 74.6 GB the adaptability figures use.
        let st = &figs[1];
        let idx = st.x.iter().position(|x| x == "0.125").unwrap();
        assert!((st.series[0].values[idx] - 74.584_8e9).abs() < 1e6);
    }
}
