//! Recovery bench: what does a restart cost once cache state is durable?
//!
//! The persistence layer's headline claim, as a figure: a serve-layer
//! restart with `--data-dir` (checkpoint + WAL recovery) preserves the
//! cache's working set, so the post-restart hit rate tracks an
//! uninterrupted run instead of collapsing to a cold start. Each policy
//! column runs the same trace three ways and reports the hit rate over
//! the **second half** only:
//!
//! * *continuous* — one in-memory service, never restarted (the ceiling);
//! * *warm restart* — a durable service is torn down at the midpoint and
//!   recovered from its checkpoints + WAL before the second half;
//! * *cold restart* — a fresh empty service serves the second half (the
//!   floor: every residency byte is re-fetched).
//!
//! Warm recovery is residency-exact but metadata-approximate (recency
//! and reference histories are rebuilt from the checkpoint's sorted
//! residency plus the WAL tail), so the warm column sits between the
//! floor and the ceiling — the gap to *continuous* is the metadata loss,
//! the gap to *cold* is what durability buys.
//!
//! The run is deterministic and jobs-invariant: every cell replays its
//! trace from one closed-loop client against its own scratch directory,
//! so the figure is byte-identical at any `--jobs` value.

use crate::context::ExperimentContext;
use crate::report::{FigureResult, Series};
use clipcache_core::{PolicyKind, PolicySpec};
use clipcache_media::Repository;
use clipcache_serve::{run_load, CacheService, PersistOptions, ServiceConfig, Target};
use clipcache_sim::metrics::HitStats;
use clipcache_workload::{RequestGenerator, Trace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CLIPS: usize = 100;
const RATIO: f64 = 0.25;
const SHARDS: usize = 2;

/// Restart modes compared, in series order.
pub const MODES: [&str; 3] = [
    "continuous (no restart)",
    "warm restart (checkpoint + WAL)",
    "cold restart (empty cache)",
];

/// Policies compared across the restart (the figure's x axis).
pub fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::DynSimple { k: 2 },
    ]
}

/// Monotonic tag so concurrent cells (and concurrent test binaries)
/// never share a scratch directory.
fn scratch_dir() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let tag = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "clipcache-recoverybench-{}-{tag}",
        std::process::id()
    ))
}

/// Hit rate of the requests between two counter snapshots.
fn window_rate(before: &HitStats, after: &HitStats) -> f64 {
    let hits = after.hits - before.hits;
    let total = after.requests() - before.requests();
    hits as f64 / total as f64
}

fn drive(service: &Arc<CacheService>, repo: &Arc<Repository>, trace: &Trace) {
    run_load(&Target::InProcess(Arc::clone(service)), repo, trace, 1)
        .expect("in-process load cannot fail");
}

fn run_cell(
    repo: &Arc<Repository>,
    policy: PolicySpec,
    mode: usize,
    seed: u64,
    first: &Trace,
    second: &Trace,
) -> f64 {
    let config = ServiceConfig::new(policy, SHARDS, repo.cache_capacity_for_ratio(RATIO), seed);
    match mode {
        // Continuous: one service sees both halves.
        0 => {
            let service = Arc::new(
                CacheService::new(Arc::clone(repo), config, None)
                    .expect("on-line policies build without frequencies"),
            );
            drive(&service, repo, first);
            let mid = service.stats();
            drive(&service, repo, second);
            window_rate(&mid, &service.stats())
        }
        // Warm restart: tear the durable service down at the midpoint
        // and recover it from disk before the second half.
        1 => {
            let dir = scratch_dir();
            let _ = std::fs::remove_dir_all(&dir);
            let opts = PersistOptions::at(&dir);
            let (service, _) = CacheService::open_persistent(Arc::clone(repo), config, None, &opts)
                .expect("fresh durable service opens");
            let service = Arc::new(service);
            drive(&service, repo, first);
            drop(service);
            let (service, report) =
                CacheService::open_persistent(Arc::clone(repo), config, None, &opts)
                    .expect("durable service recovers");
            assert_eq!(
                service.stats().requests(),
                first.len() as u64,
                "recovery must restore every first-half request"
            );
            assert!(
                report.checkpoints_loaded > 0 || report.replayed > 0,
                "a warm restart must actually recover something"
            );
            let service = Arc::new(service);
            let mid = service.stats();
            drive(&service, repo, second);
            let rate = window_rate(&mid, &service.stats());
            drop(service);
            let _ = std::fs::remove_dir_all(&dir);
            rate
        }
        // Cold restart: an empty service pays the full re-fetch cost.
        _ => {
            let service = Arc::new(
                CacheService::new(Arc::clone(repo), config, None)
                    .expect("on-line policies build without frequencies"),
            );
            drive(&service, repo, second);
            service.stats().hit_rate()
        }
    }
}

/// Run the recovery bench.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(clipcache_media::paper::variable_sized_repository_of(CLIPS));
    let seed = ctx.sub_seed(0x4EC0);
    let total = ctx.requests(20_000) as usize;
    let half = total / 2;
    let trace = Trace::from_generator(RequestGenerator::new(CLIPS, 0.27, 0, total as u64, seed));
    let first = Trace::from_requests(trace.slice(0, half).to_vec());
    let second = Trace::from_requests(trace.slice(half, total).to_vec());
    let policies = policies();

    // Fan the (policy, mode) grid out as independent points.
    let grid: Vec<(usize, usize)> = (0..policies.len())
        .flat_map(|pi| (0..MODES.len()).map(move |mi| (pi, mi)))
        .collect();
    let cells = ctx.run_points(&grid, |_, &(pi, mi)| {
        run_cell(&repo, policies[pi].into(), mi, seed, &first, &second)
    });

    let series: Vec<Series> = MODES
        .iter()
        .enumerate()
        .map(|(mi, name)| {
            let values = (0..policies.len())
                .map(|pi| cells[pi * MODES.len() + mi])
                .collect();
            Series::new((*name).to_string(), values)
        })
        .collect();

    vec![FigureResult::new(
        "recoverybench",
        "Second-half hit rate: continuous vs warm (durable) vs cold restart at the midpoint",
        "policy",
        policies.iter().map(|p| format!("{p}")).collect(),
        series,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_restart_beats_cold_for_every_policy() {
        let ctx = ExperimentContext::at_scale(0.1);
        let fig = run(&ctx).remove(0);
        let warm = fig.series_named(MODES[1]).unwrap();
        let cold = fig.series_named(MODES[2]).unwrap();
        for (i, (w, c)) in warm.values.iter().zip(&cold.values).enumerate() {
            assert!(
                w > c,
                "policy column {i}: warm restart ({w}) must beat a cold start ({c})"
            );
        }
    }

    #[test]
    fn warm_restart_recovers_most_of_the_interruption_cost() {
        // Warm recovery rebuilds policy metadata approximately, so it
        // trails the uninterrupted ceiling — but residency-exact restore
        // must still close a meaningful share of the continuous-to-cold
        // gap for every policy (frequency-history policies like LFU lose
        // the most metadata and set the floor here).
        let ctx = ExperimentContext::at_scale(0.1);
        let fig = run(&ctx).remove(0);
        let cont = fig.series_named(MODES[0]).unwrap();
        let warm = fig.series_named(MODES[1]).unwrap();
        let cold = fig.series_named(MODES[2]).unwrap();
        for i in 0..cont.values.len() {
            let interruption_cost = cont.values[i] - cold.values[i];
            assert!(
                interruption_cost > 0.0,
                "column {i}: a cold restart must cost something"
            );
            let recovered = (warm.values[i] - cold.values[i]) / interruption_cost;
            assert!(
                recovered >= 0.25,
                "column {i}: warm restart recovered only {recovered:.2} of the gap"
            );
        }
    }

    #[test]
    fn figure_is_jobs_invariant() {
        let serial_ctx = ExperimentContext::at_scale(0.05);
        let figs1 = run(&serial_ctx);
        let mut parallel_ctx = ExperimentContext::at_scale(0.05);
        parallel_ctx.jobs = 4;
        let figs4 = run(&parallel_ctx);
        assert_eq!(figs1[0].to_csv(), figs4[0].to_csv());
    }
}
