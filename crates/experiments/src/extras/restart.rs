//! Device restart: what does losing the cache manager's metadata cost?
//!
//! A phone reboots mid-day. The clips on disk survive; the policy's
//! in-memory state (reference histories, priorities) does not.
//! `core::snapshot` restores residency exactly and lets the policy
//! relearn its metadata. This experiment runs 20,000 requests with a
//! snapshot/restore restart at 10,000 and plots the windowed hit rate of
//! the interrupted run against an uninterrupted control — the dip at the
//! restart is the metadata's worth.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::snapshot::{restore, CacheSnapshot};
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use clipcache_sim::metrics::WindowedSeries;
use clipcache_workload::{RequestGenerator, Timestamp, Trace};
use std::sync::Arc;

/// Policies compared across the restart.
pub fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::DynSimple { k: 2 },
        PolicyKind::DynSimple { k: 32 },
        PolicyKind::Igd,
        PolicyKind::LruK { k: 2 },
    ]
}

/// Run the restart experiment at `S_T/S_DB = 0.125`.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let half = ctx.requests(10_000);
    let trace = Trace::from_generator(RequestGenerator::new(
        repo.len(),
        THETA,
        0,
        half * 2,
        ctx.sub_seed(0xFB),
    ));
    let capacity = repo.cache_capacity_for_ratio(0.125);

    // One point per interrupted policy run, plus one (`None`) for the
    // uninterrupted control of the strongest policy.
    let points: Vec<Option<PolicyKind>> = policies().into_iter().map(Some).chain([None]).collect();
    let series: Vec<Series> = ctx.run_points(&points, |_, &point| match point {
        Some(policy) => {
            // Interrupted run: snapshot at the midpoint, rebuild, resume.
            let mut cache = policy.build(Arc::clone(&repo), capacity, 1, None);
            let mut windows = WindowedSeries::new(100);
            let mut tick = Timestamp::ZERO;
            for req in trace.slice(0, half as usize) {
                tick = req.at;
                windows.record(cache.access(req.clip, req.at).is_hit());
            }
            let snap = CacheSnapshot::take(cache.as_ref(), policy, tick);
            drop(cache); // the reboot
            let (mut cache, mut tick) =
                restore(&snap, Arc::clone(&repo), 1, None).expect("online policies restore");
            for req in trace.slice(half as usize, 2 * half as usize) {
                tick = tick.next();
                windows.record(cache.access(req.clip, tick).is_hit());
            }
            Series::new(
                format!("{policy} (restart at {half})"),
                windows.points().to_vec(),
            )
        }
        None => {
            // Uninterrupted control for the strongest policy.
            let policy = PolicyKind::DynSimple { k: 2 };
            let mut cache = policy.build(Arc::clone(&repo), capacity, 1, None);
            let mut windows = WindowedSeries::new(100);
            for req in trace.requests() {
                windows.record(cache.access(req.clip, req.at).is_hit());
            }
            Series::new(format!("{policy} (no restart)"), windows.points().to_vec())
        }
    });
    let x: Vec<String> = series
        .first()
        .map(|s| {
            (1..=s.values.len())
                .map(|w| (w * 100).to_string())
                .collect()
        })
        .unwrap_or_default();

    vec![FigureResult::new(
        "restart",
        "Windowed hit rate across a device restart (residency restored, metadata lost)",
        "request",
        x,
        series,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_transient_recovers() {
        let ctx = ExperimentContext::at_scale(0.3);
        let fig = run(&ctx).remove(0);
        let restarted = &fig.series[0]; // DYNSimple(K=2) with restart
        let control = fig
            .series
            .iter()
            .find(|s| s.name.contains("no restart"))
            .unwrap();
        let n = restarted.values.len();
        let half = n / 2;
        // By the last quarter the interrupted run matches the control.
        let late_r: f64 = restarted.values[n - n / 4..].iter().sum::<f64>() / (n / 4) as f64;
        let late_c: f64 = control.values[n - n / 4..].iter().sum::<f64>() / (n / 4) as f64;
        assert!(
            (late_r - late_c).abs() < 0.04,
            "post-restart steady state {late_r} vs control {late_c}"
        );
        // The pre-restart halves are identical (same policy, same trace).
        for i in 0..half.min(10) {
            assert!((restarted.values[i] - control.values[i]).abs() < 1e-9);
        }
    }
}
