//! Section 4.4's K-sensitivity claims:
//!
//! * DYNSimple's hit rate improves only minimally beyond K = 2
//!   ("We believe K = 2 is sufficient in most cases");
//! * with K = 2, DYNSimple and LRU-SK produce almost identical hit rates;
//! * with K > 2, DYNSimple provides a higher hit rate than LRU-SK at the
//!   same K (LRU-SK degrades as K grows, per the Figure 6 discussion).

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::{RequestGenerator, Trace};
use std::sync::Arc;

/// The K values swept.
pub const KS: [usize; 5] = [2, 4, 8, 16, 32];

/// Run the K sweep for DYNSimple and LRU-SK.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let requests = ctx.requests(10_000);
    let trace = Trace::from_generator(RequestGenerator::new(
        repo.len(),
        THETA,
        0,
        requests,
        ctx.sub_seed(0xE2),
    ));
    let config = SimulationConfig::default();
    let capacity = repo.cache_capacity_for_ratio(0.125);

    let pairs = ctx.run_points(&KS, |_, &k| {
        let mut d = PolicyKind::DynSimple { k }.build(Arc::clone(&repo), capacity, 1, None);
        let dyn_hit = simulate(d.as_mut(), &repo, trace.requests(), &config).hit_rate();
        let mut l = PolicyKind::LruSK { k }.build(Arc::clone(&repo), capacity, 1, None);
        let lrusk_hit = simulate(l.as_mut(), &repo, trace.requests(), &config).hit_rate();
        (dyn_hit, lrusk_hit)
    });
    let dyn_vals: Vec<f64> = pairs.iter().map(|&(d, _)| d).collect();
    let lrusk_vals: Vec<f64> = pairs.iter().map(|&(_, l)| l).collect();

    vec![FigureResult::new(
        "ksweep",
        "Cache hit rate vs history depth K (S_T/S_DB = 0.125)",
        "K",
        KS.iter().map(|k| k.to_string()).collect(),
        vec![
            Series::new("DYNSimple", dyn_vals),
            Series::new("LRU-SK", lrusk_vals),
        ],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k2_is_nearly_sufficient_for_dynsimple() {
        let ctx = ExperimentContext::at_scale(0.3);
        let fig = run(&ctx).remove(0);
        let d = fig.series_named("DYNSimple").unwrap();
        let spread = d.values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - d.values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread < 0.06,
            "DYNSimple hit rate should barely move with K; spread {spread}"
        );
    }

    #[test]
    fn k2_parity_between_techniques() {
        let ctx = ExperimentContext::at_scale(0.3);
        let fig = run(&ctx).remove(0);
        let d = fig.series_named("DYNSimple").unwrap().values[0];
        let l = fig.series_named("LRU-SK").unwrap().values[0];
        assert!(
            (d - l).abs() < 0.03,
            "K=2: DYNSimple {d} vs LRU-SK {l} should be almost identical"
        );
    }
}
