//! Chunk layer: what does prefix caching buy at a fixed byte budget?
//!
//! Two ways to spend the same cache budget `f · S_DB`:
//!
//! * **prefix** — every clip keeps the head `⌊f · chunks⌋` chunks
//!   resident (1 MB chunks). Displays start from the local prefix while
//!   the tail streams; a request is denied only when the clip has *no*
//!   resident prefix while disconnected.
//! * **whole-clip** — the budget holds entire clips, most popular
//!   first (the pre-chunking model). Covered clips start at disk
//!   latency; everything else pays the full network prefetch, and is
//!   denied outright while disconnected.
//!
//! Both variants face the identical Zipf trace under the FMC
//! connectivity day and report startup-latency p95/mean, denial rate,
//! and how many distinct clips the budget covers. The measured
//! headline (EXPERIMENTS.md): on a skewed trace the popularity-packed
//! whole-clip cache wins raw p95 — it serves the heavy hitters
//! entirely from disk — but prefix spreading strictly dominates on
//! *availability*: it never denies more, and reaches a zero denial
//! rate at half the budget whole-clip coverage needs. Prefix p95 also
//! improves monotonically with the budget, the property the chunk
//! layer's admission story rests on.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_media::{paper, ByteSize, ClipId, Repository};
use clipcache_sim::latency::{LatencyModel, LatencyStats};
use clipcache_sim::network::ConnectivitySchedule;
use clipcache_workload::{RequestGenerator, Trace};
use std::sync::Arc;

/// Byte budgets swept, as fractions of the repository size.
pub const FRACTIONS: [f64; 5] = [0.125, 0.25, 0.5, 0.75, 1.0];

/// Chunk size for the prefix variant.
const CHUNK: ByteSize = ByteSize::mb(1);

/// One variant's measurement at one budget.
struct Cell {
    p95: f64,
    mean: f64,
    denial: f64,
    covered: usize,
}

/// Measure one variant: `resident(clip)` gives the locally resident
/// head bytes (the clip's full size means a whole-clip hit).
fn measure(
    repo: &Repository,
    trace: &Trace,
    schedule: &ConnectivitySchedule,
    model: &LatencyModel,
    resident: impl Fn(ClipId) -> ByteSize,
    covered: usize,
) -> Cell {
    let mut stats = LatencyStats::default();
    for (i, req) in trace.requests().iter().enumerate() {
        let clip = repo.clip(req.clip);
        let link = schedule.link_at(i as u64 + 1);
        let head = resident(req.clip);
        let lat = if head == ByteSize::ZERO {
            model.network_latency(clip, link)
        } else {
            model.prefix_latency(clip, head, link)
        };
        stats.record(lat);
    }
    Cell {
        p95: stats.percentile(0.95),
        mean: stats.mean_secs(),
        denial: stats.unavailability(),
        covered,
    }
}

/// Run the prefix-vs-whole-clip budget sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository().with_chunk_size(CHUNK));
    let requests = ctx.requests(10_000);
    let trace = Trace::from_generator(RequestGenerator::new(
        repo.len(),
        THETA,
        0,
        requests,
        ctx.sub_seed(0xFB),
    ));
    let schedule = ConnectivitySchedule::fmc_day(250);
    let model = LatencyModel::default();

    // Popularity order for the whole-clip packer: observed trace counts,
    // ties broken by id for determinism.
    let mut counts = vec![0u64; repo.len()];
    for req in trace.requests() {
        counts[req.clip.index()] += 1;
    }
    let mut by_popularity: Vec<usize> = (0..repo.len()).collect();
    by_popularity.sort_by_key(|&i| (std::cmp::Reverse(counts[i]), i));

    let mut prefix_cells = Vec::new();
    let mut whole_cells = Vec::new();
    for &fraction in &FRACTIONS {
        let budget = ByteSize::bytes((repo.total_size().as_f64() * fraction) as u64);

        // Prefix variant: ⌊f · chunks⌋ head chunks per clip — never over
        // budget (the floor rounds down), exactly everything at f = 1.
        let repo_ref = Arc::clone(&repo);
        let prefix_chunks: Vec<u32> = (0..repo.len())
            .map(|i| {
                let total = repo_ref.chunks_of(ClipId::from_index(i));
                (fraction * total as f64).floor() as u32
            })
            .collect();
        let covered = prefix_chunks.iter().filter(|&&p| p > 0).count();
        let pc = prefix_chunks.clone();
        prefix_cells.push(measure(
            &repo,
            &trace,
            &schedule,
            &model,
            |clip| repo_ref.prefix_bytes(clip, pc[clip.index()]),
            covered,
        ));

        // Whole-clip baseline: pack entire clips, most popular first,
        // skipping any that no longer fits (first-fit-decreasing on
        // popularity — the strongest reasonable whole-clip packer).
        let mut spent = ByteSize::ZERO;
        let mut held = vec![false; repo.len()];
        for &i in &by_popularity {
            let size = repo.clip(ClipId::from_index(i)).size;
            if (spent + size).as_u64() <= budget.as_u64() {
                spent += size;
                held[i] = true;
            }
        }
        let covered = held.iter().filter(|&&h| h).count();
        let repo_ref = Arc::clone(&repo);
        whole_cells.push(measure(
            &repo,
            &trace,
            &schedule,
            &model,
            |clip| {
                if held[clip.index()] {
                    repo_ref.clip(clip).size
                } else {
                    ByteSize::ZERO
                }
            },
            covered,
        ));
    }

    vec![FigureResult::new(
        "prefixbench",
        "Startup latency and denial rate: prefix caching vs whole-clip at equal byte budgets (FMC day)",
        "budget/S_DB",
        FRACTIONS.iter().map(|f| f.to_string()).collect(),
        vec![
            Series::new("prefix p95 latency (s)", prefix_cells.iter().map(|c| c.p95).collect()),
            Series::new("prefix mean latency (s)", prefix_cells.iter().map(|c| c.mean).collect()),
            Series::new("prefix denial rate", prefix_cells.iter().map(|c| c.denial).collect()),
            Series::new(
                "prefix covered clips",
                prefix_cells.iter().map(|c| c.covered as f64).collect(),
            ),
            Series::new(
                "whole-clip p95 latency (s)",
                whole_cells.iter().map(|c| c.p95).collect(),
            ),
            Series::new(
                "whole-clip mean latency (s)",
                whole_cells.iter().map(|c| c.mean).collect(),
            ),
            Series::new(
                "whole-clip denial rate",
                whole_cells.iter().map(|c| c.denial).collect(),
            ),
            Series::new(
                "whole-clip covered clips",
                whole_cells.iter().map(|c| c.covered as f64).collect(),
            ),
        ],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_p95_improves_monotonically_and_beats_whole_clip_denials() {
        let ctx = ExperimentContext::at_scale(0.2);
        let fig = run(&ctx).remove(0);
        let p95 = &fig.series_named("prefix p95 latency (s)").unwrap().values;
        let denial = &fig.series_named("prefix denial rate").unwrap().values;
        let whole_denial = &fig.series_named("whole-clip denial rate").unwrap().values;
        let whole_p95 = &fig
            .series_named("whole-clip p95 latency (s)")
            .unwrap()
            .values;
        // Longer prefixes can only help: p95 non-increasing in budget.
        for w in p95.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "prefix p95 not monotone: {p95:?}");
        }
        // Denial: prefix spreading never denies more than whole-clip at
        // the same budget, and beats it strictly at the smallest budget.
        for (p, w) in denial.iter().zip(whole_denial) {
            assert!(p <= w, "prefix denies more than whole-clip: {p} > {w}");
        }
        assert!(denial[0] < whole_denial[0]);
        // Prefix spreading hits zero denials at half the repository
        // budget; the whole-clip packer is still denying there.
        assert_eq!(
            denial[2], 0.0,
            "fractions: {FRACTIONS:?}, denial: {denial:?}"
        );
        assert!(whole_denial[2] > 0.0);
        // Full budget: both variants hold everything — identical p95,
        // no denials anywhere.
        assert_eq!(*denial.last().unwrap(), 0.0);
        assert_eq!(*whole_denial.last().unwrap(), 0.0);
        assert!((p95.last().unwrap() - whole_p95.last().unwrap()).abs() < 1e-9);
    }
}
