//! The paper's metadata-retention direction (Sections 4.1 and 5):
//! DYNSimple keeps K timestamps even for non-resident clips; "some
//! applications may not tolerate the storage overhead … we propose to
//! develop a rule similar to the 5 minute rule … deciding how long to
//! keep the meta-data for the past references."
//!
//! This experiment implements that rule as a sliding horizon: every 100
//! requests, histories whose latest reference is older than `horizon`
//! ticks are forgotten. We sweep the horizon and report the hit rate next
//! to the peak metadata footprint — the economics trade-off the rule is
//! meant to navigate.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::policies::dyn_simple::DynSimpleCache;
use clipcache_core::ClipCache;
use clipcache_media::paper;
use clipcache_workload::{RequestGenerator, Timestamp};
use std::sync::Arc;

/// Retention horizons swept, in virtual ticks (requests); `u64::MAX`
/// means "never forget" (the paper's default DYNSimple).
pub const HORIZONS: [u64; 6] = [100, 250, 500, 1_000, 5_000, u64::MAX];

/// Run the retention sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let requests = ctx.requests(10_000);
    let capacity = repo.cache_capacity_for_ratio(0.125);

    let cells = ctx.run_points(&HORIZONS, |_, &horizon| {
        let mut cache = DynSimpleCache::new(Arc::clone(&repo), capacity, 2);
        let gen = RequestGenerator::new(repo.len(), THETA, 0, requests, ctx.sub_seed(0xE9));
        let mut hits = 0u64;
        let mut peak = 0usize;
        for req in gen {
            if cache.access(req.clip, req.at).is_hit() {
                hits += 1;
            }
            if req.at.get() % 100 == 0 {
                if horizon != u64::MAX {
                    let cutoff = Timestamp(req.at.get().saturating_sub(horizon));
                    cache.prune_history(cutoff);
                }
                peak = peak.max(cache.history().metadata_bytes());
            }
        }
        (hits as f64 / requests as f64, peak as f64)
    });
    let hit_rates: Vec<f64> = cells.iter().map(|c| c.0).collect();
    let peak_meta: Vec<f64> = cells.iter().map(|c| c.1).collect();

    let x: Vec<String> = HORIZONS
        .iter()
        .map(|&h| {
            if h == u64::MAX {
                "never".to_string()
            } else {
                h.to_string()
            }
        })
        .collect();
    vec![FigureResult::new(
        "retention",
        "DYNSimple(K=2) under metadata retention horizons (S_T/S_DB = 0.125)",
        "horizon (requests)",
        x,
        vec![
            Series::new("cache hit rate", hit_rates),
            Series::new("peak metadata bytes", peak_meta),
        ],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forgetting_saves_metadata_and_costs_little() {
        let ctx = ExperimentContext::at_scale(0.3);
        let fig = run(&ctx).remove(0);
        let hits = fig.series_named("cache hit rate").unwrap();
        let meta = fig.series_named("peak metadata bytes").unwrap();
        let n = hits.values.len();
        // Metadata footprint grows with the horizon.
        assert!(meta.values[0] < meta.values[n - 1]);
        // A generous horizon loses almost nothing against never-forget.
        assert!(
            (hits.values[n - 2] - hits.values[n - 1]).abs() < 0.02,
            "5000-tick horizon {} vs never {}",
            hits.values[n - 2],
            hits.values[n - 1]
        );
        // Even the tightest horizon keeps the cache functional.
        assert!(hits.values[0] > 0.3);
    }
}
