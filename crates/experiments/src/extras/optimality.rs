//! How far from optimal are the paper's techniques?
//!
//! Belady's MIN (clairvoyant, provably optimal for equal sizes) sits
//! above every realizable policy; the gap to it is the headroom an
//! on-line policy leaves. On the equi-sized repository this experiment
//! stacks MIN, the oracle-frequency Simple, and the strongest on-line
//! techniques over the Figure 5.a sweep — quantifying the paper's
//! implicit claim that DYNSimple approaches what frequency knowledge can
//! deliver, and showing how much more *future* knowledge is worth than
//! *frequency* knowledge.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::policies::belady::BeladyCache;
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::{RequestGenerator, ShiftedZipf, Trace, Zipf};
use std::sync::Arc;

/// The Figure 5.a cache-size axis.
pub const RATIOS: [f64; 6] = [0.01, 0.05, 0.1, 0.15, 0.2, 0.25];

/// Run the optimality-gap experiment (equi-sized repository).
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::equi_sized_repository());
    let requests = ctx.requests(10_000);
    let trace = Trace::from_generator(RequestGenerator::new(
        repo.len(),
        THETA,
        0,
        requests,
        ctx.sub_seed(0xFE),
    ));
    let freqs = ShiftedZipf::new(Zipf::new(repo.len(), THETA), 0).frequencies();
    let config = SimulationConfig::default();

    let online = [
        PolicyKind::Simple,
        PolicyKind::DynSimple { k: 32 },
        PolicyKind::LruK { k: 2 },
        PolicyKind::Igd,
    ];
    // The (ratio, contender) grid — contender 0 is Belady's MIN, the
    // rest are the on-line lineup — fanned out as independent points.
    let contenders = online.len() + 1;
    let grid: Vec<(f64, usize)> = RATIOS
        .iter()
        .flat_map(|&ratio| (0..contenders).map(move |ci| (ratio, ci)))
        .collect();
    let cells = ctx.run_points(&grid, |_, &(ratio, ci)| {
        let capacity = repo.cache_capacity_for_ratio(ratio);
        if ci == 0 {
            let mut min = BeladyCache::new(Arc::clone(&repo), capacity, trace.requests());
            simulate(&mut min, &repo, trace.requests(), &config).hit_rate()
        } else {
            let mut cache = online[ci - 1].build(Arc::clone(&repo), capacity, 1, Some(&freqs));
            simulate(cache.as_mut(), &repo, trace.requests(), &config).hit_rate()
        }
    });
    let column = |ci: usize| -> Vec<f64> {
        (0..RATIOS.len())
            .map(|ri| cells[ri * contenders + ci])
            .collect()
    };

    let mut all = vec![Series::new("Belady-MIN (offline optimal)", column(0))];
    all.extend(
        online
            .iter()
            .enumerate()
            .map(|(pi, p)| Series::new(p.to_string(), column(pi + 1))),
    );
    vec![FigureResult::new(
        "optimality",
        "Distance to the clairvoyant optimum (equi-sized clips)",
        "S_T/S_DB",
        RATIOS.iter().map(|r| r.to_string()).collect(),
        all,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_dominates_and_simple_is_second() {
        let ctx = ExperimentContext::at_scale(0.2);
        let fig = run(&ctx).remove(0);
        let min = fig.series_named("Belady-MIN (offline optimal)").unwrap();
        for s in &fig.series[1..] {
            for (i, (m, v)) in min.values.iter().zip(&s.values).enumerate() {
                assert!(
                    m + 1e-9 >= *v,
                    "{} beat MIN at ratio index {i}: {v} vs {m}",
                    s.name
                );
            }
        }
        // Future knowledge beats frequency knowledge by a clear margin in
        // the middle of the sweep.
        let simple = fig.series_named("Simple").unwrap();
        assert!(min.values[2] > simple.values[2] + 0.03);
    }
}
