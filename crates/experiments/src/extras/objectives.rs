//! Objective functions: what the cache optimizes matters.
//!
//! Section 1 argues for maximizing hit rate and explicitly excludes
//! techniques that trade it away — "An example is GDS-Popularity which
//! enhances byte hit rate at the expense of cache hit rate" — while
//! Section 3.2 notes GreedyDual's cost knob can instead minimize average
//! latency \[3\]. This experiment puts the three objectives side by side
//! on the paper's workload: hit rate, byte hit rate, and mean startup
//! latency over a cellular link.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use clipcache_sim::network::{ConnectivitySchedule, NetworkLink};
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::{RequestGenerator, Trace};
use std::sync::Arc;

/// The three objective representatives.
pub fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::GreedyDual,                      // maximize hit rate
        PolicyKind::GreedyDualLatency { mbps: 1 },   // minimize startup latency
        PolicyKind::GreedyDualFetchTime { mbps: 1 }, // degenerate (≈ Random)
        PolicyKind::GreedyDualPackets,               // minimize network packets
        PolicyKind::GdsPopularity,                   // maximize byte hit rate
    ]
}

/// Run the objectives comparison at `S_T/S_DB = 0.125`.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let requests = ctx.requests(10_000);
    let trace = Trace::from_generator(RequestGenerator::new(
        repo.len(),
        THETA,
        0,
        requests,
        ctx.sub_seed(0xEB),
    ));
    let config = SimulationConfig {
        connectivity: Some(ConnectivitySchedule::always(NetworkLink::cellular_default())),
        ..SimulationConfig::default()
    };
    let capacity = repo.cache_capacity_for_ratio(0.125);

    let lineup = policies();
    let cells = ctx.run_points(&lineup, |_, policy| {
        let mut cache = policy.build(Arc::clone(&repo), capacity, 3, None);
        let report = simulate(cache.as_mut(), &repo, trace.requests(), &config);
        (
            report.hit_rate(),
            report.byte_hit_rate(),
            report.latency.mean_secs(),
        )
    });
    let hit: Vec<f64> = cells.iter().map(|c| c.0).collect();
    let byte: Vec<f64> = cells.iter().map(|c| c.1).collect();
    let latency: Vec<f64> = cells.iter().map(|c| c.2).collect();

    vec![FigureResult::new(
        "objectives",
        "Objective comparison at S_T/S_DB = 0.125 (cellular link)",
        "metric",
        lineup.iter().map(|p| p.to_string()).collect(),
        vec![
            Series::new("cache hit rate", hit),
            Series::new("byte hit rate", byte),
            Series::new("mean startup latency (s)", latency),
        ],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_objective_wins_its_own_metric() {
        let ctx = ExperimentContext::at_scale(0.3);
        let fig = run(&ctx).remove(0);
        let hit = fig.series_named("cache hit rate").unwrap();
        let byte = fig.series_named("byte hit rate").unwrap();
        let lat = fig.series_named("mean startup latency (s)").unwrap();
        // Columns: 0 = GreedyDual, 1 = latency objective, 2 = degenerate
        // fetch-time, 3 = packets, 4 = GDS-Popularity.
        assert!(
            hit.values[0] > hit.values[4],
            "hit-rate objective must beat byte-hit objective on hit rate: {} vs {}",
            hit.values[0],
            hit.values[4]
        );
        assert!(
            byte.values[4] > byte.values[0],
            "byte-hit objective must win byte hit rate: {} vs {}",
            byte.values[4],
            byte.values[0]
        );
        // Packet cost sits between: better byte-hit than pure hit-rate GD.
        assert!(byte.values[3] > byte.values[0]);
        assert!(
            lat.values[1] < lat.values[2],
            "latency objective must beat the degenerate fetch-time cost: {} vs {}",
            lat.values[1],
            lat.values[2]
        );
    }
}
