//! Serving-layer bench: hit rate of the sharded service vs shard count.
//!
//! Splitting one cache budget across independent shards changes what the
//! policy can do: each shard manages a hash-partition of the catalog
//! with `1/N` of the bytes. This experiment quantifies that effect for
//! an on-line recency policy and the paper's DYNSimple, with the serial
//! simulator (= 1 shard by construction) as the reference line.
//!
//! The run is deterministic: one closed-loop client replays the trace in
//! order, so multi-shard cache state depends only on the routing hash,
//! never on thread scheduling — the figure is byte-identical at any
//! `--jobs` value. Wall-clock throughput is *not* reported here (it
//! would break figure-drift byte-identity); the `loadgen` binary and
//! EXPERIMENTS.md carry the measured req/s numbers.

use crate::context::ExperimentContext;
use crate::report::{FigureResult, Series};
use clipcache_core::{PolicyKind, PolicySpec};
use clipcache_media::paper;
use clipcache_serve::{run_load, serial_baseline, CacheService, ServiceConfig, Target};
use clipcache_workload::{RequestGenerator, Trace};
use std::sync::Arc;

/// The shard counts swept.
pub const SHARDS: [usize; 4] = [1, 2, 4, 8];

const CLIPS: usize = 100;
const RATIO: f64 = 0.25;

fn hit_rate_at(
    repo: &Arc<clipcache_media::Repository>,
    policy: PolicySpec,
    shards: usize,
    seed: u64,
    trace: &Trace,
) -> f64 {
    let service = Arc::new(
        CacheService::new(
            Arc::clone(repo),
            ServiceConfig::new(policy, shards, repo.cache_capacity_for_ratio(RATIO), seed),
            None,
        )
        .expect("on-line policies build without frequencies"),
    );
    run_load(&Target::InProcess(service), repo, trace, 1)
        .expect("in-process load cannot fail")
        .observed
        .hit_rate()
}

/// Run the shard-count sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository_of(CLIPS));
    let seed = ctx.sub_seed(0x5E17E);
    let trace = Trace::from_generator(RequestGenerator::new(
        CLIPS,
        0.27,
        0,
        ctx.requests(20_000),
        seed,
    ));
    let policies: [(&str, PolicySpec); 2] = [
        ("LRU service", PolicyKind::Lru.into()),
        (
            "DYNSimple(K=2) service",
            PolicyKind::DynSimple { k: 2 }.into(),
        ),
    ];

    // Fan the (shards, policy) grid out as independent points.
    let grid: Vec<(usize, usize)> = SHARDS
        .iter()
        .enumerate()
        .flat_map(|(si, _)| (0..policies.len()).map(move |pi| (si, pi)))
        .collect();
    let cells = ctx.run_points(&grid, |_, &(si, pi)| {
        hit_rate_at(&repo, policies[pi].1, SHARDS[si], seed, &trace)
    });

    let serial = serial_baseline(
        &repo,
        PolicyKind::Lru.into(),
        repo.cache_capacity_for_ratio(RATIO),
        seed,
        &trace,
    )
    .hit_rate();

    let mut series: Vec<Series> = policies
        .iter()
        .enumerate()
        .map(|(pi, (name, _))| {
            let values = (0..SHARDS.len())
                .map(|si| cells[si * policies.len() + pi])
                .collect();
            Series::new((*name).to_string(), values)
        })
        .collect();
    series.push(Series::new(
        "serial LRU (reference)".to_string(),
        vec![serial; SHARDS.len()],
    ));

    vec![FigureResult::new(
        "servebench",
        "Sharded service hit rate vs shard count (1 client, capacity split across shards)",
        "shards",
        SHARDS.iter().map(|s| s.to_string()).collect(),
        series,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shard_equals_the_serial_reference() {
        let ctx = ExperimentContext::at_scale(0.2);
        let fig = run(&ctx).remove(0);
        let service = fig.series_named("LRU service").unwrap();
        let serial = fig.series_named("serial LRU (reference)").unwrap();
        // Bit-for-bit: at 1 shard the service *is* the serial simulator.
        assert_eq!(service.values[0], serial.values[0]);
    }

    #[test]
    fn figure_is_jobs_invariant() {
        let serial_ctx = ExperimentContext::at_scale(0.1);
        let figs1 = run(&serial_ctx);
        let mut parallel_ctx = ExperimentContext::at_scale(0.1);
        parallel_ctx.jobs = 4;
        let figs4 = run(&parallel_ctx);
        assert_eq!(figs1[0].to_csv(), figs4[0].to_csv());
    }
}
