//! Degradation bench: what dead peers cost, with and without breakers.
//!
//! The cluster tier's peer fill pays a connect timeout every time a
//! miss probes a dead owner. The per-peer circuit breaker
//! ([`clipcache_serve::PeerBreaker`]) bounds that: after
//! `BREAKER_FAILURE_THRESHOLD` consecutive failures the peer is Open
//! and probes are skipped (their write-all half queued as a handoff
//! hint) until a count-based HalfOpen probe notices the revive and
//! replays the hints. This experiment measures the claim on the same
//! in-process [`ClusterHarness`] the chaos golden replays.
//!
//! Sweep: a 6-member, replication-2 LRU cluster; `k` members are
//! SIGKILLed a quarter of the way through the trace and revived at the
//! three-quarter point, for `k / 6` in `0/6 .. 3/6`. Each configuration runs
//! twice — breakers at the shipped thresholds, and a control arm whose
//! breakers never trip (`u32::MAX` failures: the pre-breaker cluster).
//!
//! Reported per arm, all deterministic (no wall clock anywhere):
//!
//! * **hit rate** — client-observed, `(local + peer) / delivered`.
//!   The breaker must be ~free here: the probes it skips would have
//!   failed anyway, and the hinted handoff re-warms revived members.
//! * **modeled request stall, p99 and mean** — each request is costed
//!   from counter deltas: a probe that hit a dead owner pays the
//!   default peer connect timeout (250 ms), a live probe pays 1 ms
//!   round trip, everything else is free. Modeled, not measured: the
//!   replay is single-threaded and seeded, so the figure is
//!   byte-identical at any `--jobs` value. Hint replay on a healed
//!   peer is in-process background work and costs the client nothing.
//!
//! With replication 2 a request has exactly one co-owner to probe, so
//! per-request stall is 0, 1 or 250 ms — the p99 collapses to "does
//! more than 1% of traffic wait on a dead peer?", which is precisely
//! the steady-state guarantee the breaker buys.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::ClipId;
use clipcache_serve::{CacheService, ClusterError, ClusterHarness, ServiceConfig};
use clipcache_workload::RequestGenerator;
use std::sync::Arc;

/// Cluster size (fixed; the x-axis sweeps the dead fraction of it).
pub const NODES: usize = 6;
/// Dead-member counts swept.
pub const DEAD: [usize; 4] = [0, 1, 2, 3];

const REPLICATION: usize = 2;
const CLIPS: usize = 96;
const RATIO: f64 = 0.25;

/// Modeled cost of a probe into a dead peer: the default peer connect
/// timeout ([`clipcache_serve::ClusterSpec`]'s 250 ms).
const DEAD_PROBE_MS: u64 = 250;
/// Modeled round trip of a probe a live peer answers.
const LIVE_PROBE_MS: u64 = 1;

/// The two arms x three metrics, by cell index.
const ARMS: usize = 2;
const METRICS: usize = 3;

fn members(ctx: &ExperimentContext, repo: &Arc<clipcache_media::Repository>) -> Vec<Arc<CacheService>> {
    (0..NODES)
        .map(|i| {
            let config = ServiceConfig::new(
                PolicyKind::Lru,
                1,
                repo.cache_capacity_for_ratio(RATIO),
                ctx.sub_seed(0xDE64 + i as u64),
            );
            Arc::new(
                CacheService::new(Arc::clone(repo), config, None)
                    .expect("LRU builds without frequencies"),
            )
        })
        .collect()
}

/// One replay: kill `dead` members at 25% of the trace, revive them at
/// 75%, and cost every request from the harness's counter deltas.
/// Returns `(hit rate, p99 stall ms, mean stall ms)`.
fn replay(
    ctx: &ExperimentContext,
    repo: &Arc<clipcache_media::Repository>,
    trace: &[ClipId],
    dead: usize,
    breaker_on: bool,
) -> (f64, f64, f64) {
    let mut harness = ClusterHarness::new(ctx.sub_seed(0xDE64_0001), REPLICATION, members(ctx, repo));
    if !breaker_on {
        harness.set_breaker_tuning(u32::MAX, 1);
    }
    let n = trace.len() as u64;
    for node in 0..dead {
        harness.schedule_kill(node, n / 4);
        harness.schedule_revive(node, 3 * n / 4);
    }
    let mut costs: Vec<u64> = Vec::with_capacity(trace.len());
    let mut prev = harness.stats();
    for &clip in trace {
        match harness.get(clip) {
            // With k=3 dead of 6 at replication 2, some clips briefly
            // have no alive owner: the router fails fast (the client
            // knows the membership), costing nothing and delivering
            // nothing — hit rate is over delivered requests.
            Ok(_) | Err(ClusterError::NoOwnerAlive(_)) => {}
            Err(e) => panic!("degradebench replay failed: {e}"),
        }
        let now = harness.stats();
        let dead_probes = now.peer_errors - prev.peer_errors;
        let live_probes = now.peer_probes - prev.peer_probes;
        costs.push(dead_probes * DEAD_PROBE_MS + live_probes * LIVE_PROBE_MS);
        prev = now;
    }
    let stats = harness.stats();
    assert!(stats.conservation_ok(), "degradebench lost a request");
    let mean = costs.iter().sum::<u64>() as f64 / costs.len() as f64;
    costs.sort_unstable();
    let p99 = costs[(costs.len() * 99).div_ceil(100) - 1];
    (stats.hit_rate(), p99 as f64, mean)
}

/// Run the dead-fraction sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(clipcache_media::paper::variable_sized_repository_of(CLIPS));
    let trace: Vec<ClipId> = RequestGenerator::new(
        CLIPS,
        THETA,
        0,
        ctx.requests(10_000),
        ctx.sub_seed(0xDE64_7E12),
    )
    .map(|req| req.clip)
    .collect();

    let grid: Vec<(usize, usize, usize)> = DEAD
        .iter()
        .enumerate()
        .flat_map(|(di, _)| {
            (0..ARMS).flat_map(move |arm| (0..METRICS).map(move |metric| (di, arm, metric)))
        })
        .collect();
    let cells = ctx.run_points(&grid, |_, &(di, arm, metric)| {
        let (hit, p99, mean) = replay(ctx, &repo, &trace, DEAD[di], arm == 0);
        match metric {
            0 => hit,
            1 => p99,
            _ => mean,
        }
    });

    let names = [
        "hit rate, breaker on",
        "modeled p99 stall (ms), breaker on",
        "modeled mean stall (ms), breaker on",
        "hit rate, breaker off",
        "modeled p99 stall (ms), breaker off",
        "modeled mean stall (ms), breaker off",
    ];
    let series: Vec<Series> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let (arm, metric) = (i / METRICS, i % METRICS);
            let values = (0..DEAD.len())
                .map(|di| cells[(di * ARMS + arm) * METRICS + metric])
                .collect();
            Series::new((*name).to_string(), values)
        })
        .collect();

    vec![FigureResult::new(
        "degradebench",
        "Graceful degradation: hit rate and modeled request stall vs dead-member fraction, \
         circuit breakers on vs off (6 members, replication 2, kill at 25%, revive at 75%)",
        "dead members (of 6)",
        DEAD.iter().map(|k| format!("{k}/6")).collect(),
        series,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series<'a>(fig: &'a FigureResult, name: &str) -> &'a Series {
        fig.series_named(name).expect("series exists")
    }

    #[test]
    fn breaker_is_invisible_in_a_healthy_cluster() {
        // With zero dead members no breaker ever trips, so both arms
        // replay the identical path — every metric agrees bit for bit.
        let ctx = ExperimentContext::at_scale(0.1);
        let fig = run(&ctx).remove(0);
        for metric in ["hit rate", "modeled p99 stall (ms)", "modeled mean stall (ms)"] {
            let on = series(&fig, &format!("{metric}, breaker on"));
            let off = series(&fig, &format!("{metric}, breaker off"));
            assert_eq!(
                on.values[0], off.values[0],
                "{metric}: healthy-cluster arms diverged"
            );
        }
    }

    #[test]
    fn breaker_slashes_modeled_stall_under_dead_peers() {
        // The headline: at every non-zero dead fraction the breaker arm
        // pays well under half the control arm's mean stall — Open
        // peers are skipped instead of timing out on every miss.
        let ctx = ExperimentContext::at_scale(0.1);
        let fig = run(&ctx).remove(0);
        let on = series(&fig, "modeled mean stall (ms), breaker on");
        let off = series(&fig, "modeled mean stall (ms), breaker off");
        for di in 1..DEAD.len() {
            // At 3/6 dead half the trips are pure overhead (three
            // survivors each discover three dead peers) and many
            // requests fail fast with no alive owner, so the saving is
            // thinner there — but the breaker must never cost stall.
            let margin = if DEAD[di] * 2 < NODES { 0.55 } else { 0.85 };
            assert!(
                on.values[di] < off.values[di] * margin,
                "dead={}: breaker mean stall {} vs control {} (margin {})",
                DEAD[di],
                on.values[di],
                off.values[di],
                margin
            );
        }
    }

    #[test]
    fn control_arm_tail_waits_on_dead_peers() {
        // Without breakers, well over 1% of the trace stalls on a dead
        // owner's connect timeout, so the control p99 pins at the full
        // timeout; the breaker arm's tail can never be worse.
        let ctx = ExperimentContext::at_scale(0.1);
        let fig = run(&ctx).remove(0);
        let on = series(&fig, "modeled p99 stall (ms), breaker on");
        let off = series(&fig, "modeled p99 stall (ms), breaker off");
        let worst = DEAD.len() - 1;
        assert!(
            off.values[worst] >= DEAD_PROBE_MS as f64,
            "control p99 must include the connect timeout, got {}",
            off.values[worst]
        );
        for di in 1..DEAD.len() {
            assert!(
                on.values[di] <= off.values[di],
                "dead={}: breaker p99 {} exceeds control {}",
                DEAD[di],
                on.values[di],
                off.values[di]
            );
        }
    }

    #[test]
    fn breaker_does_not_cost_hit_rate() {
        // The probes the breaker skips were doomed (the peer is dead),
        // and hinted handoff re-warms revived members — so the breaker
        // arm's hit rate stays within noise of the control's.
        let ctx = ExperimentContext::at_scale(0.1);
        let fig = run(&ctx).remove(0);
        let on = series(&fig, "hit rate, breaker on");
        let off = series(&fig, "hit rate, breaker off");
        for di in 0..DEAD.len() {
            assert!(
                (on.values[di] - off.values[di]).abs() <= 0.05,
                "dead={}: hit rates diverged: {} vs {}",
                DEAD[di],
                on.values[di],
                off.values[di]
            );
        }
    }
}
