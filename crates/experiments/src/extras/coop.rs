//! Cooperative vs greedy caching — the paper's Section 5 future work,
//! made measurable. Sixteen devices on a ring, each with a DYNSimple
//! cache, sweep the ad-hoc radio radius from 0 (pure greedy, the paper's
//! setting) upward and report the global metric the paper names: the
//! fraction of requests serviced without the base station.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::{paper, Bandwidth};
use clipcache_sim::coop::{CoopConfig, CoopRegionSim, PartitionedAdmission};
use clipcache_sim::device::Device;
use clipcache_sim::network::{ConnectivitySchedule, NetworkLink};
use clipcache_sim::station::BaseStation;
use clipcache_workload::RequestGenerator;
use std::sync::Arc;

/// Radio radii swept (ring hops); 0 = greedy.
pub const RADII: [usize; 5] = [0, 1, 2, 4, 8];
/// Devices in the region.
pub const DEVICES: usize = 16;

/// Run the cooperation sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository_of(96));
    let rounds = ctx.requests(1_000);

    let radius_cells = ctx.run_points(&RADII, |_, &radius| {
        let devices: Vec<Device> = (0..DEVICES)
            .map(|i| {
                let cache = PolicyKind::DynSimple { k: 2 }.build(
                    Arc::clone(&repo),
                    repo.cache_capacity_for_ratio(0.1),
                    ctx.sub_seed(0xEA ^ i as u64),
                    None,
                );
                let gen = RequestGenerator::new(
                    repo.len(),
                    THETA,
                    0,
                    rounds,
                    ctx.sub_seed(0xEA0 + i as u64),
                );
                Device::new(
                    i,
                    Arc::clone(&repo),
                    cache,
                    gen,
                    ConnectivitySchedule::always(NetworkLink::cellular_default()),
                )
            })
            .collect();
        let config = CoopConfig {
            radio_radius: radius,
            max_uploads_per_peer: 2,
        };
        let mut sim = CoopRegionSim::new(devices, BaseStation::new(Bandwidth::mbps(8)), config);
        let report = sim.run(rounds);
        (
            report.offload_rate(),
            report.peer_hit_rate(),
            report.mean_throughput(),
        )
    });
    let offload: Vec<f64> = radius_cells.iter().map(|c| c.0).collect();
    let peer: Vec<f64> = radius_cells.iter().map(|c| c.1).collect();
    let throughput: Vec<f64> = radius_cells.iter().map(|c| c.2).collect();

    let radius_fig = FigureResult::new(
        "coop",
        "Cooperative caching: requests serviced without the base station vs radio radius",
        "radio radius (hops)",
        RADII.iter().map(|r| r.to_string()).collect(),
        vec![
            Series::new("offload rate (local + peer)", offload),
            Series::new("peer hit rate", peer),
            Series::new("mean devices displaying / round", throughput),
        ],
    );

    // Coordinated placement: partition clip ownership across the region
    // (replicas = number of owners per clip; `greedy` = no partition).
    let replica_axis: [Option<usize>; 5] = [Some(1), Some(2), Some(4), Some(8), None];
    let replica_cells = ctx.run_points(&replica_axis, |_, &replicas| {
        let devices: Vec<Device> = (0..DEVICES)
            .map(|i| {
                let inner = PolicyKind::DynSimple { k: 2 }.build(
                    Arc::clone(&repo),
                    repo.cache_capacity_for_ratio(0.1),
                    ctx.sub_seed(0xEA ^ i as u64),
                    None,
                );
                let cache: Box<dyn clipcache_core::ClipCache> = match replicas {
                    Some(r) => {
                        Box::new(PartitionedAdmission::new(inner, repo.len(), i, DEVICES, r))
                    }
                    None => inner,
                };
                let gen = RequestGenerator::new(
                    repo.len(),
                    THETA,
                    0,
                    rounds,
                    ctx.sub_seed(0xEA0 + i as u64),
                );
                Device::new(
                    i,
                    Arc::clone(&repo),
                    cache,
                    gen,
                    ConnectivitySchedule::always(NetworkLink::cellular_default()),
                )
            })
            .collect();
        let config = CoopConfig {
            radio_radius: 8,
            max_uploads_per_peer: 2,
        };
        let mut sim = CoopRegionSim::new(devices, BaseStation::new(Bandwidth::mbps(8)), config);
        let report = sim.run(rounds);
        (report.offload_rate(), report.peer_hit_rate())
    });
    let offload_c: Vec<f64> = replica_cells.iter().map(|c| c.0).collect();
    let peer_c: Vec<f64> = replica_cells.iter().map(|c| c.1).collect();
    let local_c: Vec<f64> = replica_cells.iter().map(|c| c.0 - c.1).collect();
    let coordination_fig = FigureResult::new(
        "coop_coordination",
        "Coordinated (partitioned) vs greedy placement at radio radius 8",
        "owners per clip",
        replica_axis
            .iter()
            .map(|r| match r {
                Some(n) => n.to_string(),
                None => "greedy".to_string(),
            })
            .collect(),
        vec![
            Series::new("offload rate (local + peer)", offload_c),
            Series::new("local hit rate", local_c),
            Series::new("peer hit rate", peer_c),
        ],
    );

    vec![radius_fig, coordination_fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordination_beats_greedy_placement() {
        let ctx = ExperimentContext::at_scale(0.3);
        let figs = run(&ctx);
        let fig = &figs[1];
        let offload = fig.series_named("offload rate (local + peer)").unwrap();
        let greedy = *offload.values.last().unwrap();
        // Some partitioning level must beat unpartitioned greedy caches.
        let best = offload.values[..offload.values.len() - 1]
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        assert!(best > greedy, "partitioned best {best} vs greedy {greedy}");
    }

    #[test]
    fn cooperation_strictly_helps_the_global_metric() {
        let ctx = ExperimentContext::at_scale(0.3);
        let fig = run(&ctx).remove(0);
        let offload = fig.series_named("offload rate (local + peer)").unwrap();
        let peer = fig.series_named("peer hit rate").unwrap();
        // Radius 0 has no peer hits; wider radios offload strictly more.
        assert_eq!(peer.values[0], 0.0);
        assert!(peer.values.last().unwrap() > &0.0);
        assert!(
            offload.values.last().unwrap() > &offload.values[0],
            "radius 8 offload {} must beat greedy {}",
            offload.values.last().unwrap(),
            offload.values[0]
        );
        // Offload rate grows (weakly) with the radius.
        for pair in offload.values.windows(2) {
            assert!(pair[1] >= pair[0] - 0.01);
        }
    }
}
