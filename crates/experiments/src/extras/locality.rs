//! Robustness beyond the IRM: do the paper's conclusions survive
//! temporal locality?
//!
//! The paper's workload is the independent reference model. Real request
//! streams re-reference what was watched recently, which favours
//! recency-based policies. Sweeping the LRU-stack-model locality knob
//! from 0 (the paper's IRM) to 0.9 shows: recency-blind techniques
//! barely move, LRU-2 climbs steeply — but on the variable-sized
//! repository the size-aware DYNSimple keeps its lead throughout, so the
//! paper's headline conclusion is not an artifact of the IRM.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::locality::StackModelGenerator;
use clipcache_workload::Trace;
use std::sync::Arc;

/// Locality probabilities swept (0 = the paper's IRM).
pub const LOCALITY: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 0.9];
/// Re-reference window depth.
pub const DEPTH_WINDOW: usize = 16;

/// Run the locality sweep at `S_T/S_DB = 0.125`.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let requests = ctx.requests(10_000);
    let capacity = repo.cache_capacity_for_ratio(0.125);
    let policies = [
        PolicyKind::DynSimple { k: 2 },
        PolicyKind::GreedyDual,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Lru,
    ];
    let config = SimulationConfig::default();

    // Materialize each locality level's trace once (shared across
    // policies), then fan the (locality, policy) grid out.
    let locality_indices: Vec<usize> = (0..LOCALITY.len()).collect();
    let traces: Vec<Trace> = ctx.run_points(&locality_indices, |_, &li| {
        Trace::from_requests(
            StackModelGenerator::new(
                repo.len(),
                THETA,
                LOCALITY[li],
                DEPTH_WINDOW,
                requests,
                ctx.sub_seed(0xF400 + li as u64),
            )
            .collect(),
        )
    });
    let grid: Vec<(usize, usize)> = locality_indices
        .iter()
        .flat_map(|&li| (0..policies.len()).map(move |pi| (li, pi)))
        .collect();
    let cells = ctx.run_points(&grid, |_, &(li, pi)| {
        let mut cache = policies[pi].build(Arc::clone(&repo), capacity, 1, None);
        simulate(cache.as_mut(), &repo, traces[li].requests(), &config).hit_rate()
    });

    let series = policies
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            let values = locality_indices
                .iter()
                .map(|&li| cells[li * policies.len() + pi])
                .collect();
            Series::new(p.to_string(), values)
        })
        .collect();
    vec![FigureResult::new(
        "locality",
        "Cache hit rate vs temporal locality (stack model; 0 = the paper's IRM)",
        "locality",
        LOCALITY.iter().map(|l| l.to_string()).collect(),
        series,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recency_policies_gain_most_from_locality() {
        let ctx = ExperimentContext::at_scale(0.3);
        let fig = run(&ctx).remove(0);
        let lru2 = fig.series_named("LRU-2").unwrap();
        let dyn2 = fig.series_named("DYNSimple(K=2)").unwrap();
        let n = LOCALITY.len();
        // LRU-2's absolute gain across the sweep exceeds everyone's
        // baseline noise and narrows the gap to DYNSimple.
        let lru2_gain = lru2.values[n - 1] - lru2.values[0];
        assert!(lru2_gain > 0.1, "LRU-2 gain {lru2_gain}");
        let gap_irm = dyn2.values[0] - lru2.values[0];
        let gap_local = dyn2.values[n - 1] - lru2.values[n - 1];
        assert!(
            gap_local < gap_irm,
            "locality must narrow the gap: {gap_local} vs {gap_irm}"
        );
        // ... but DYNSimple still leads at every locality level.
        for (i, (d, l)) in dyn2.values.iter().zip(&lru2.values).enumerate() {
            assert!(d > l, "locality index {i}: DYNSimple {d} vs LRU-2 {l}");
        }
    }
}
