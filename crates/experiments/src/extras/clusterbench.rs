//! Cluster bench: cluster-wide hit rate vs N independent caches.
//!
//! The serve-tier analog of the `coop` experiment. The simulator showed
//! ad-hoc cooperation lifting the offload rate from 55.3% (greedy,
//! independent devices) to 87.6% (radius-8 peer exchange); here the
//! same structural claim is measured on the cluster tier's actual
//! machinery — the consistent-hash ring, read-any/write-all peer fill
//! and the in-process [`ClusterHarness`] the chaos golden replays.
//!
//! Three hit-rate series over cluster size N:
//!
//! * **independent** — N caches, clients round-robin, no cooperation:
//!   every cache converges on the same Zipf head, so adding hardware
//!   buys almost nothing (the flat line the paper's greedy devices
//!   live on).
//! * **cluster, replication 1** — ring routing partitions the catalog:
//!   each member caches its shard of clips with its whole budget, so
//!   aggregate capacity actually aggregates.
//! * **cluster, replication 2** — the fault-tolerant point: each clip
//!   lives on two ring successors, trading some capacity back for the
//!   ability to survive a SIGKILL (`tests/cluster_e2e.rs`).
//!
//! A fourth series reports the cost of the replicated configuration as
//! a deterministic count — peer probes per 1k requests — not a
//! wall-clock latency: the replay is single-threaded and seeded, so
//! the figure is byte-identical at any `--jobs` value.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::ClipId;
use clipcache_serve::{CacheService, ClusterHarness, ServiceConfig};
use clipcache_workload::RequestGenerator;
use std::sync::Arc;

/// Cluster sizes swept.
pub const NODES: [usize; 6] = [1, 2, 3, 4, 6, 8];

const CLIPS: usize = 96;
const RATIO: f64 = 0.25;

/// The four series, by cell index.
const MODES: usize = 4;

fn members(
    ctx: &ExperimentContext,
    repo: &Arc<clipcache_media::Repository>,
    n: usize,
) -> Vec<Arc<CacheService>> {
    (0..n)
        .map(|i| {
            let config = ServiceConfig::new(
                PolicyKind::Lru,
                1,
                repo.cache_capacity_for_ratio(RATIO),
                ctx.sub_seed(0xC1A5 + i as u64),
            );
            Arc::new(
                CacheService::new(Arc::clone(repo), config, None)
                    .expect("LRU builds without frequencies"),
            )
        })
        .collect()
}

fn run_cell(
    ctx: &ExperimentContext,
    repo: &Arc<clipcache_media::Repository>,
    trace: &[ClipId],
    n: usize,
    mode: usize,
) -> f64 {
    match mode {
        // Independent: clients land round-robin, nobody cooperates.
        0 => {
            let services = members(ctx, repo, n);
            let hits = trace
                .iter()
                .enumerate()
                .filter(|(i, &clip)| {
                    services[i % n]
                        .get(clip)
                        .expect("in-process access cannot fail")
                        .hit
                })
                .count();
            hits as f64 / trace.len() as f64
        }
        // Clustered: ring routing plus peer fill at replication R.
        _ => {
            let replication = if mode == 1 { 1 } else { 2.min(n) };
            let mut harness =
                ClusterHarness::new(ctx.sub_seed(0xC1A5), replication, members(ctx, repo, n));
            for &clip in trace {
                harness.get(clip).expect("all members alive");
            }
            let stats = harness.stats();
            assert!(stats.conservation_ok(), "clusterbench lost a request");
            if mode == 3 {
                stats.peer_probes as f64 * 1_000.0 / stats.delivered as f64
            } else {
                stats.hit_rate()
            }
        }
    }
}

/// Run the cluster-size sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(clipcache_media::paper::variable_sized_repository_of(CLIPS));
    let trace: Vec<ClipId> = RequestGenerator::new(
        CLIPS,
        THETA,
        0,
        ctx.requests(10_000),
        ctx.sub_seed(0xC1A5_7E12),
    )
    .map(|req| req.clip)
    .collect();

    let grid: Vec<(usize, usize)> = NODES
        .iter()
        .enumerate()
        .flat_map(|(ni, _)| (0..MODES).map(move |mode| (ni, mode)))
        .collect();
    let cells = ctx.run_points(&grid, |_, &(ni, mode)| {
        run_cell(ctx, &repo, &trace, NODES[ni], mode)
    });

    let names = [
        "N independent caches (round-robin clients)",
        "cluster, replication 1",
        "cluster, replication 2",
        "replication 2: peer probes per 1k requests",
    ];
    let series: Vec<Series> = names
        .iter()
        .enumerate()
        .map(|(mode, name)| {
            let values = (0..NODES.len())
                .map(|ni| cells[ni * MODES + mode])
                .collect();
            Series::new((*name).to_string(), values)
        })
        .collect();

    vec![FigureResult::new(
        "clusterbench",
        "Cluster-wide hit rate vs N independent caches (ring routing + peer fill, LRU, \
         deterministic replay)",
        "cluster size N",
        NODES.iter().map(|n| n.to_string()).collect(),
        series,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_member_cluster_matches_one_independent_cache() {
        // N=1: the ring routes everything to the only member and the
        // round-robin baseline uses the same single cache — all three
        // hit-rate series must agree bit for bit (the figure's own
        // degenerate-cluster anchor), and no peer traffic exists.
        let ctx = ExperimentContext::at_scale(0.1);
        let fig = run(&ctx).remove(0);
        let indep = fig
            .series_named("N independent caches (round-robin clients)")
            .unwrap();
        let r1 = fig.series_named("cluster, replication 1").unwrap();
        let r2 = fig.series_named("cluster, replication 2").unwrap();
        assert_eq!(indep.values[0], r1.values[0]);
        assert_eq!(indep.values[0], r2.values[0]);
        let probes = fig
            .series_named("replication 2: peer probes per 1k requests")
            .unwrap();
        assert_eq!(probes.values[0], 0.0, "one member has nobody to probe");
    }

    #[test]
    fn ring_partitioning_beats_independent_caches_at_scale() {
        // The headline: by N=4 the ring-routed cluster must clearly
        // beat N independent caches — the coop experiment's direction
        // (55.3% -> 87.6%), reproduced on the serving tier.
        let ctx = ExperimentContext::at_scale(0.1);
        let fig = run(&ctx).remove(0);
        let indep = fig
            .series_named("N independent caches (round-robin clients)")
            .unwrap();
        let r1 = fig.series_named("cluster, replication 1").unwrap();
        let n4 = NODES.iter().position(|&n| n == 4).unwrap();
        assert!(
            r1.values[n4] > indep.values[n4] + 0.10,
            "clustering must pay at N=4: {} vs {}",
            r1.values[n4],
            indep.values[n4]
        );
    }

    #[test]
    fn replication_trades_bounded_hit_rate_for_redundancy() {
        // R=2 duplicates every clip onto a second owner, so it may
        // trail R=1 — but peer fill must keep the gap bounded, and the
        // replicated cluster must still beat independent caches at the
        // largest size.
        let ctx = ExperimentContext::at_scale(0.1);
        let fig = run(&ctx).remove(0);
        let indep = fig
            .series_named("N independent caches (round-robin clients)")
            .unwrap();
        let r2 = fig.series_named("cluster, replication 2").unwrap();
        let last = NODES.len() - 1;
        assert!(
            r2.values[last] > indep.values[last],
            "replicated cluster must beat independent caches at N=8: {} vs {}",
            r2.values[last],
            indep.values[last]
        );
    }
}
