//! Seed sensitivity: the paper reports single seeded runs (footnote 5).
//! This experiment re-runs the Figure 2 hit-rate comparison at
//! `S_T/S_DB = 0.125` under several workload seeds and reports
//! mean ± standard deviation per technique, verifying that the paper's
//! orderings are not artifacts of one particular reference string.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::{RequestGenerator, ShiftedZipf, Trace, Zipf};
use std::sync::Arc;

/// Number of independent workload seeds.
pub const REPLICAS: usize = 5;

/// Run the replication study.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let n = repo.len();
    let requests = ctx.requests(10_000);
    let capacity = repo.cache_capacity_for_ratio(0.125);
    let freqs = ShiftedZipf::new(Zipf::new(n, THETA), 0).frequencies();
    let config = SimulationConfig::default();

    let policies = [
        PolicyKind::Simple,
        PolicyKind::DynSimple { k: 2 },
        PolicyKind::LruSK { k: 2 },
        PolicyKind::Igd,
        PolicyKind::GreedyDual,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Random,
    ];

    // Materialize each replica's trace once (shared by all policies),
    // then fan the (policy, replica) grid out as independent points.
    let replica_ids: Vec<usize> = (0..REPLICAS).collect();
    let traces: Vec<Trace> = ctx.run_points(&replica_ids, |_, &r| {
        Trace::from_generator(RequestGenerator::new(
            n,
            THETA,
            0,
            requests,
            ctx.sub_seed(0xEE00 + r as u64),
        ))
    });
    let grid: Vec<(usize, usize)> = (0..policies.len())
        .flat_map(|pi| replica_ids.iter().map(move |&r| (pi, r)))
        .collect();
    let cells = ctx.run_points(&grid, |_, &(pi, r)| {
        let mut cache = policies[pi].build(Arc::clone(&repo), capacity, r as u64, Some(&freqs));
        simulate(cache.as_mut(), &repo, traces[r].requests(), &config).hit_rate()
    });

    let mut means = Vec::with_capacity(policies.len());
    let mut sds = Vec::with_capacity(policies.len());
    let mut mins = Vec::with_capacity(policies.len());
    let mut maxs = Vec::with_capacity(policies.len());
    for pi in 0..policies.len() {
        let rates = &cells[pi * REPLICAS..(pi + 1) * REPLICAS];
        let mean = rates.iter().sum::<f64>() / REPLICAS as f64;
        let var = rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / REPLICAS as f64;
        means.push(mean);
        sds.push(var.sqrt());
        mins.push(rates.iter().cloned().fold(f64::INFINITY, f64::min));
        maxs.push(rates.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    vec![FigureResult::new(
        "variance",
        "Hit-rate stability across 5 workload seeds (S_T/S_DB = 0.125)",
        "policy",
        policies.iter().map(|p| p.to_string()).collect(),
        vec![
            Series::new("mean hit rate", means),
            Series::new("std dev", sds),
            Series::new("min", mins),
            Series::new("max", maxs),
        ],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_stable_across_seeds() {
        let ctx = ExperimentContext::at_scale(0.2);
        let fig = run(&ctx).remove(0);
        let mean = fig.series_named("mean hit rate").unwrap();
        let sd = fig.series_named("std dev").unwrap();
        let min = fig.series_named("min").unwrap();
        let max = fig.series_named("max").unwrap();
        // Columns: Simple, DYNSimple(K=2), LRU-S2, IGD, GreedyDual, LRU-2,
        // Random. Worst-case Simple beats best-case LRU-2 and Random —
        // the headline orderings hold for every seed, not just on average.
        assert!(min.values[0] > max.values[5], "Simple vs LRU-2");
        assert!(min.values[0] > max.values[6], "Simple vs Random");
        assert!(min.values[1] > max.values[5], "DYNSimple vs LRU-2");
        // Seed noise is small relative to the gaps.
        for (i, s) in sd.values.iter().enumerate() {
            assert!(*s < 0.03, "policy {i}: sd {s}");
        }
        // Mean is bracketed by min/max.
        for i in 0..mean.values.len() {
            assert!(min.values[i] <= mean.values[i] && mean.values[i] <= max.values[i]);
        }
    }
}
