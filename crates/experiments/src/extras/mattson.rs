//! Analytic cross-check: Mattson stack-distance analysis predicts the LRU
//! hit-rate-vs-cache-size curve from **one** trace pass; here it is laid
//! next to the simulated LRU curve over the Figure 2 ratio sweep.
//!
//! On the equi-sized repository the two must match exactly (LRU's
//! inclusion property); on the paper's variable-sized repository,
//! whole-clip admission can violate inclusion and a small residual gap
//! appears — this experiment measures it.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::{paper, Repository};
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::reuse::StackDistanceAnalyzer;
use clipcache_workload::{RequestGenerator, Trace};
use std::sync::Arc;

/// The ratio sweep shared with Figure 2.
pub const RATIOS: [f64; 6] = [0.0125, 0.1, 0.2, 0.3, 0.5, 0.75];

fn curve_pair(
    ctx: &ExperimentContext,
    repo: &Arc<Repository>,
    trace: &Trace,
) -> (Vec<f64>, Vec<f64>) {
    let capacities: Vec<_> = RATIOS
        .iter()
        .map(|&r| repo.cache_capacity_for_ratio(r))
        .collect();
    // The one-pass Mattson analysis and the per-capacity LRU
    // simulations are all independent points.
    let predicted = ctx
        .run_points(&[()], |_, _| {
            let mut analyzer = StackDistanceAnalyzer::new(repo);
            analyzer.record_all(trace.requests());
            analyzer.predicted_curve(&capacities)
        })
        .remove(0);

    let config = SimulationConfig::default();
    let simulated = ctx.run_points(&capacities, |_, &cap| {
        let mut cache = PolicyKind::Lru.build(Arc::clone(repo), cap, 1, None);
        simulate(cache.as_mut(), repo, trace.requests(), &config).hit_rate()
    });
    (predicted, simulated)
}

/// Run the predicted-vs-simulated comparison on both repositories.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let requests = ctx.requests(10_000);
    let x: Vec<String> = RATIOS.iter().map(|r| r.to_string()).collect();

    let equi = Arc::new(paper::equi_sized_repository());
    let trace_e = Trace::from_generator(RequestGenerator::new(
        equi.len(),
        THETA,
        0,
        requests,
        ctx.sub_seed(0xEC),
    ));
    let (pred_e, sim_e) = curve_pair(ctx, &equi, &trace_e);

    let var = Arc::new(paper::variable_sized_repository());
    let trace_v = Trace::from_generator(RequestGenerator::new(
        var.len(),
        THETA,
        0,
        requests,
        ctx.sub_seed(0xED),
    ));
    let (pred_v, sim_v) = curve_pair(ctx, &var, &trace_v);

    vec![
        FigureResult::new(
            "mattson_equi",
            "Mattson-predicted vs simulated LRU hit rate (equi-sized)",
            "S_T/S_DB",
            x.clone(),
            vec![
                Series::new("predicted (stack distance)", pred_e),
                Series::new("simulated LRU", sim_e),
            ],
        ),
        FigureResult::new(
            "mattson_var",
            "Mattson-predicted vs simulated LRU hit rate (variable-sized)",
            "S_T/S_DB",
            x,
            vec![
                Series::new("predicted (stack distance)", pred_v),
                Series::new("simulated LRU", sim_v),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_exact_on_equi_sized() {
        let ctx = ExperimentContext::at_scale(0.2);
        let figs = run(&ctx);
        let equi = &figs[0];
        let pred = equi.series_named("predicted (stack distance)").unwrap();
        let sim = equi.series_named("simulated LRU").unwrap();
        for (i, (p, s)) in pred.values.iter().zip(&sim.values).enumerate() {
            assert!(
                (p - s).abs() < 1e-9,
                "ratio index {i}: predicted {p} vs simulated {s}"
            );
        }
    }

    #[test]
    fn prediction_close_on_variable_sized() {
        let ctx = ExperimentContext::at_scale(0.2);
        let figs = run(&ctx);
        let var = &figs[1];
        let pred = var.series_named("predicted (stack distance)").unwrap();
        let sim = var.series_named("simulated LRU").unwrap();
        for (i, (p, s)) in pred.values.iter().zip(&sim.values).enumerate() {
            assert!(
                (p - s).abs() < 0.05,
                "ratio index {i}: predicted {p} vs simulated {s}"
            );
        }
    }
}
