//! The paper's closing argument, quantified (Section 5):
//!
//! > "One may argue that increasing cache hit rate by several percentage
//! > points is negligible. Such a conclusion is ill-guided because several
//! > studies have shown that cache hit rate grows as a log function of
//! > cache size. Thus, a better algorithm that increases cache hit rate by
//! > only several percentage points would be equivalent to several fold
//! > increase in cache size."
//!
//! Two measurements:
//!
//! 1. **The log law itself** — DYNSimple's hit rate sampled at
//!    geometrically spaced cache sizes; if hit rate ~ a + b·log(S_T), the
//!    first differences over a geometric ladder are roughly constant.
//! 2. **The equivalent-cache-size multiplier** — for each anchor ratio,
//!    how much *more* cache LRU-2 needs (found by bisection on its
//!    monotone hit-rate curve) to match DYNSimple(K=2)'s hit rate.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::{paper, Repository};
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::{RequestGenerator, Trace};
use std::sync::Arc;

/// Geometric ladder of cache ratios for the log-law fit.
pub const LADDER: [f64; 6] = [0.01, 0.02, 0.04, 0.08, 0.16, 0.32];
/// Anchor ratios for the equivalence measurement.
pub const ANCHORS: [f64; 3] = [0.05, 0.1, 0.2];

fn hit_rate(repo: &Arc<Repository>, policy: PolicyKind, ratio: f64, trace: &Trace) -> f64 {
    let mut cache = policy.build(
        Arc::clone(repo),
        repo.cache_capacity_for_ratio(ratio),
        1,
        None,
    );
    simulate(
        cache.as_mut(),
        repo,
        trace.requests(),
        &SimulationConfig::default(),
    )
    .hit_rate()
}

/// Bisect the smallest LRU-2 ratio whose hit rate reaches `target`.
/// Returns `None` when even a full-repository cache falls short.
fn lru2_ratio_for(repo: &Arc<Repository>, trace: &Trace, target: f64) -> Option<f64> {
    let mut lo = 0.0;
    let mut hi = 1.0;
    if hit_rate(repo, PolicyKind::LruK { k: 2 }, hi, trace) < target {
        return None;
    }
    for _ in 0..12 {
        let mid = (lo + hi) / 2.0;
        if hit_rate(repo, PolicyKind::LruK { k: 2 }, mid, trace) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Run the log-law and equivalence measurements.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let requests = ctx.requests(10_000);
    let trace = Trace::from_generator(RequestGenerator::new(
        repo.len(),
        THETA,
        0,
        requests,
        ctx.sub_seed(0xF5),
    ));

    // 1. The log law: hit rate up a geometric ladder, one point per rung.
    let ladder_rates = ctx.run_points(&LADDER, |_, &r| {
        hit_rate(&repo, PolicyKind::DynSimple { k: 2 }, r, &trace)
    });
    let log_fig = FigureResult::new(
        "loglaw",
        "Hit rate up a geometric cache-size ladder (log law: equal steps)",
        "S_T/S_DB",
        LADDER.iter().map(|r| r.to_string()).collect(),
        vec![Series::new("DYNSimple(K=2)", ladder_rates)],
    );

    // 2. Equivalent-cache multipliers: each anchor's target measurement
    // plus its whole bisection is one sequential point.
    let cells = ctx.run_points(&ANCHORS, |_, &anchor| {
        let target = hit_rate(&repo, PolicyKind::DynSimple { k: 2 }, anchor, &trace);
        let multiplier = match lru2_ratio_for(&repo, &trace, target) {
            Some(r) => r / anchor,
            None => f64::INFINITY,
        };
        (target, multiplier)
    });
    let dyn_rates: Vec<f64> = cells.iter().map(|c| c.0).collect();
    let multipliers: Vec<f64> = cells.iter().map(|c| c.1).collect();
    let eq_fig = FigureResult::new(
        "loglaw_equiv",
        "Cache size LRU-2 needs to match DYNSimple(K=2)'s hit rate",
        "anchor S_T/S_DB",
        ANCHORS.iter().map(|r| r.to_string()).collect(),
        vec![
            Series::new("DYNSimple hit rate at anchor", dyn_rates),
            Series::new("LRU-2 cache multiplier", multipliers),
        ],
    );

    vec![log_fig, eq_fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_gain_is_worth_multiples_of_cache() {
        let ctx = ExperimentContext::at_scale(0.2);
        let figs = run(&ctx);
        let eq = &figs[1];
        let mult = eq.series_named("LRU-2 cache multiplier").unwrap();
        // The paper's argument: the better algorithm is worth a
        // several-fold cache increase. At full scale the measured
        // multipliers are 6.1x / 3.9x / 2.5x; at the reduced test scale
        // they compress somewhat, so demand >1.5x everywhere and >2.5x
        // at the smallest anchor, where the effect is strongest.
        for (i, m) in mult.values.iter().enumerate() {
            assert!(
                *m > 1.5,
                "anchor index {i}: multiplier {m} should exceed 1.5x"
            );
        }
        assert!(
            mult.values[0] > 2.5,
            "smallest anchor multiplier {} should exceed 2.5x",
            mult.values[0]
        );
    }

    #[test]
    fn hit_rate_grows_sublinearly_in_cache_size() {
        let ctx = ExperimentContext::at_scale(0.2);
        let figs = run(&ctx);
        let ladder = figs[0].series_named("DYNSimple(K=2)").unwrap();
        // Monotone up the ladder…
        for pair in ladder.values.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        // …and strongly sublinear in cache size: 32x the cache buys far
        // less than 32x the hit rate (the log-law regime).
        let growth = ladder.values[5] / ladder.values[0].max(1e-9);
        assert!(
            growth < 8.0,
            "32x cache size produced {growth}x hit rate — not log-like"
        );
    }
}
