//! Footnote 3's naive alternative: partition the cache and every clip into
//! equi-sized blocks managed by LRU-2. The footnote predicts (a) block
//! size matters — large blocks waste space, small blocks inflate
//! bookkeeping — and (b) the technique does not beat DYNSimple.
//!
//! We sweep the block size and report hit rate alongside DYNSimple's.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::{paper, MB};
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::{RequestGenerator, Trace};
use std::sync::Arc;

/// Block sizes swept (MB).
pub const BLOCK_MB: [u64; 5] = [1, 10, 100, 500, 1000];

/// Run the block-size sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let requests = ctx.requests(10_000);
    let capacity = repo.cache_capacity_for_ratio(0.125);
    let trace = Trace::from_generator(RequestGenerator::new(
        repo.len(),
        THETA,
        0,
        requests,
        ctx.sub_seed(0xE5),
    ));
    let config = SimulationConfig::default();

    // One point per block size plus one for the DYNSimple reference
    // (`None`), all fanned out together.
    let points: Vec<Option<u64>> = BLOCK_MB.iter().copied().map(Some).chain([None]).collect();
    let vals = ctx.run_points(&points, |_, &point| {
        let kind = match point {
            Some(mb) => PolicyKind::BlockLruK {
                k: 2,
                block_bytes: mb * MB,
            },
            None => PolicyKind::DynSimple { k: 2 },
        };
        let mut cache = kind.build(Arc::clone(&repo), capacity, 1, None);
        simulate(cache.as_mut(), &repo, trace.requests(), &config).hit_rate()
    });
    let block_vals = vals[..BLOCK_MB.len()].to_vec();
    let dyn_rate = vals[BLOCK_MB.len()];

    vec![FigureResult::new(
        "blocks",
        "Block-partitioned LRU-2 hit rate vs block size (DYNSimple reference)",
        "block size (MB)",
        BLOCK_MB.iter().map(|b| b.to_string()).collect(),
        vec![
            Series::new("BlockLRU-2", block_vals),
            Series::new("DYNSimple(K=2)", vec![dyn_rate; BLOCK_MB.len()]),
        ],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_lru_never_beats_dynsimple() {
        let ctx = ExperimentContext::at_scale(0.2);
        let fig = run(&ctx).remove(0);
        let blocks = fig.series_named("BlockLRU-2").unwrap();
        let dyn_s = fig.series_named("DYNSimple(K=2)").unwrap();
        let best_block = blocks.values.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            best_block <= dyn_s.values[0] + 0.02,
            "BlockLRU-2 best {best_block} vs DYNSimple {}",
            dyn_s.values[0]
        );
    }

    #[test]
    fn huge_blocks_hurt() {
        let ctx = ExperimentContext::at_scale(0.2);
        let fig = run(&ctx).remove(0);
        let blocks = fig.series_named("BlockLRU-2").unwrap();
        // 1 GB blocks waste most of the cache on audio clips (2.2–8.8 MB
        // each in a 1000 MB block): hit rate collapses vs small blocks.
        let small = blocks.values[0];
        let huge = *blocks.values.last().unwrap();
        assert!(
            huge < small,
            "1 GB blocks ({huge}) must underperform 1 MB blocks ({small})"
        );
    }
}
