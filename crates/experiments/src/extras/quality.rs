//! Section 4.1's estimate-quality claim: the quality of DYNSimple's
//! frequency estimates improves roughly 10× as K grows from 2 to 60
//! (the paper quotes 0.006 → 0.0006 for the 576-clip repository).
//!
//! Protocol: drive a DYNSimple cache with the paper's workload, then
//! compare its estimated frequencies against the accurate Zipf pmf with
//! the paper's quality function `sqrt(Σ (f̂_j − f_j)²)`.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::policies::dyn_simple::DynSimpleCache;
use clipcache_core::ClipCache;
use clipcache_media::paper;
use clipcache_workload::stats::estimate_quality;
use clipcache_workload::{RequestGenerator, ShiftedZipf, Timestamp, Zipf};
use std::sync::Arc;

/// K values swept.
pub const KS: [usize; 6] = [2, 4, 8, 16, 32, 60];

/// Run the estimate-quality experiment.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let requests = ctx.requests(10_000);
    let accurate = ShiftedZipf::new(Zipf::new(repo.len(), THETA), 0).frequencies();

    let values = ctx.run_points(&KS, |_, &k| {
        let mut cache =
            DynSimpleCache::new(Arc::clone(&repo), repo.cache_capacity_for_ratio(0.125), k);
        let gen = RequestGenerator::new(repo.len(), THETA, 0, requests, ctx.sub_seed(0xE1));
        let mut last = Timestamp(0);
        for req in gen {
            last = req.at;
            cache.access(req.clip, req.at);
        }
        let estimated = cache.estimated_frequencies(last.next());
        estimate_quality(&estimated, &accurate)
    });

    vec![FigureResult::new(
        "quality",
        "Frequency-estimate quality (lower is better) vs K",
        "K",
        KS.iter().map(|k| k.to_string()).collect(),
        vec![Series::new("DYNSimple estimate error", values)],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_improves_with_k() {
        let ctx = ExperimentContext::at_scale(1.0);
        let fig = run(&ctx).remove(0);
        let v = &fig.series[0].values;
        // Monotone improvement end-to-end, and a large factor from 2 → 60.
        assert!(
            v[0] > v[v.len() - 1] * 3.0,
            "K=2 error {} should be several times K=60 error {}",
            v[0],
            v[v.len() - 1]
        );
    }
}
