//! Section 4.4's equivalence claim: "If one employs K=2 with both LRU-SK
//! and DYNSimple then their cache hit rates become almost identical. This
//! is because the way they use clip size and reference time to its last 2
//! requests results in the same ranking of victim clips."
//!
//! We measure hit rates of both at K = 2 across the Figure 5 ratio sweep
//! and report the absolute gap (expected ≈ 0).

use crate::context::ExperimentContext;
use crate::figures::{fig5, ratio_sweep};
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_media::paper;
use std::sync::Arc;

/// Run the equivalence measurement.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let policies = [PolicyKind::DynSimple { k: 2 }, PolicyKind::LruSK { k: 2 }];
    let (hits, _) = ratio_sweep(ctx, &repo, &policies, &fig5::RATIOS, 10_000, 0xE6);
    let gap: Vec<f64> = hits[0]
        .values
        .iter()
        .zip(&hits[1].values)
        .map(|(a, b)| (a - b).abs())
        .collect();
    let mut series = hits;
    series.push(Series::new("|gap|", gap));
    vec![FigureResult::new(
        "equivalence",
        "DYNSimple(K=2) vs LRU-S2: cache hit rate and absolute gap",
        "S_T/S_DB",
        fig5::RATIOS.iter().map(|r| r.to_string()).collect(),
        series,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k2_hit_rates_almost_identical() {
        let ctx = ExperimentContext::at_scale(0.2);
        let fig = run(&ctx).remove(0);
        let gap = fig.series_named("|gap|").unwrap();
        for (i, g) in gap.values.iter().enumerate() {
            assert!(*g < 0.03, "ratio index {i}: gap {g} too large");
        }
    }
}
