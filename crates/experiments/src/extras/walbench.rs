//! WAL bench, the deterministic half: what a reopen *does* (records
//! replayed, bytes scanned, segments kept) as a function of WAL
//! history, with and without a covering checkpoint.
//!
//! The serve-layer `walbench` binary measures the wall-clock side of
//! the same story (acked-durable throughput per commit window, recovery
//! seconds per history) and is gated in CI against a committed
//! baseline; those numbers vary run to run. This figure pins the
//! *work*, which does not: without a checkpoint, replay and on-disk
//! bytes grow linearly with history and sealed segments accumulate;
//! after a checkpoint every segment is subsumed, so a reopen replays
//! nothing and finds one bare active segment no matter how long the
//! history was — recovery cost is flat in history once segments are
//! subsumed.
//!
//! The run is deterministic and jobs-invariant: every cell builds its
//! own scratch store, and every reported quantity is a count, never a
//! clock.

use crate::context::ExperimentContext;
use crate::report::{FigureResult, Series};
use clipcache_core::snapshot::CacheSnapshot;
use clipcache_core::PolicyKind;
use clipcache_media::{paper, ByteSize, ClipId};
use clipcache_serve::persist::{DurableCheckpoint, ShardStore, WalOp, WalSync, WalTuning};
use clipcache_sim::metrics::HitStats;
use clipcache_workload::Timestamp;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Records per segment in the scaled-down store: 24-byte header plus
/// twenty 25-byte frames.
const RECORDS_PER_SEGMENT: u64 = 20;

/// The two reopen variants compared, in series order.
pub const VARIANTS: [&str; 2] = ["no checkpoint", "checkpoint at head"];

/// Monotonic tag so concurrent cells (and concurrent test binaries)
/// never share a scratch directory.
fn scratch_dir() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let tag = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "clipcache-walbench-fig-{}-{tag}",
        std::process::id()
    ))
}

/// A checkpoint covering through `seq`, over a throwaway cache — only
/// its `seq` matters to the recovery scan.
fn checkpoint_at(seq: u64) -> DurableCheckpoint {
    let repo = Arc::new(paper::equi_sized_repository_of(4, ByteSize::mb(1)));
    let cache = PolicyKind::Lru.build(repo, ByteSize::mb(4), 1, None);
    DurableCheckpoint {
        snapshot: CacheSnapshot::take(cache.as_ref(), PolicyKind::Lru, Timestamp(seq)),
        stats: HitStats::new(),
        seq,
    }
}

/// One cell: build a `history`-record segmented log, optionally
/// checkpoint it, reopen, and report (records replayed, WAL bytes on
/// disk after reopen, live segment files).
fn run_cell(history: u64, checkpointed: bool) -> (u64, u64, u64) {
    let dir = scratch_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let tuning = WalTuning {
        segment_bytes: 24 + RECORDS_PER_SEGMENT * 25,
        ..WalTuning::default()
    };
    {
        let (mut store, _) =
            ShardStore::open_tuned(&dir, WalSync::Off, tuning).expect("store creates");
        for i in 1..=history {
            store
                .append(WalOp::Get, ClipId::new((i % 24) as u32 + 1))
                .expect("append succeeds");
        }
        if checkpointed {
            store
                .checkpoint(&checkpoint_at(history))
                .expect("checkpoint succeeds");
        }
    }
    let (_store, state) =
        ShardStore::open_tuned(&dir, WalSync::Off, tuning).expect("store reopens");
    let mut wal_bytes = 0u64;
    let mut segments = 0u64;
    for entry in std::fs::read_dir(&dir).expect("scratch dir readable") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().into_string().expect("utf-8 name");
        if name.starts_with("wal.") && name.ends_with(".log") {
            segments += 1;
            wal_bytes += entry.metadata().expect("metadata").len();
        }
    }
    let replayed = state.records.len() as u64;
    let _ = std::fs::remove_dir_all(&dir);
    (replayed, wal_bytes, segments)
}

/// Run the WAL bench figure.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let max = ctx.requests(2_000).max(8);
    let histories: Vec<u64> = vec![max / 8, max / 4, max / 2, max];

    let grid: Vec<(u64, bool)> = histories
        .iter()
        .flat_map(|&h| [(h, false), (h, true)])
        .collect();
    let cells = ctx.run_points(&grid, |_, &(h, c)| run_cell(h, c));

    let x: Vec<String> = histories.iter().map(|h| h.to_string()).collect();
    let series_for = |metric: fn(&(u64, u64, u64)) -> u64| -> Vec<Series> {
        VARIANTS
            .iter()
            .enumerate()
            .map(|(vi, name)| {
                let values = (0..histories.len())
                    .map(|hi| metric(&cells[hi * VARIANTS.len() + vi]) as f64)
                    .collect();
                Series::new((*name).to_string(), values)
            })
            .collect()
    };

    vec![
        FigureResult::new(
            "walbench_replay",
            "Records replayed at reopen vs WAL history: linear without a checkpoint, zero after one",
            "wal history (records)",
            x.clone(),
            series_for(|c| c.0),
        ),
        FigureResult::new(
            "walbench_bytes",
            "WAL bytes on disk after reopen vs history: a checkpoint subsumes every segment",
            "wal history (records)",
            x.clone(),
            series_for(|c| c.1),
        ),
        FigureResult::new(
            "walbench_segments",
            "Live segment files after reopen vs history: sealed segments accumulate until subsumed",
            "wal history (records)",
            x,
            series_for(|c| c.2),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_linear_without_a_checkpoint_and_zero_after_one() {
        let ctx = ExperimentContext::at_scale(0.1);
        let figs = run(&ctx);
        let replay = &figs[0];
        let without = replay.series_named(VARIANTS[0]).unwrap();
        let with = replay.series_named(VARIANTS[1]).unwrap();
        for (i, x) in replay.x.iter().enumerate() {
            let history: f64 = x.parse().unwrap();
            assert_eq!(
                without.values[i], history,
                "column {i}: replay equals history without a checkpoint"
            );
            assert_eq!(
                with.values[i], 0.0,
                "column {i}: a covering checkpoint leaves nothing to replay"
            );
        }
    }

    #[test]
    fn recovery_work_is_flat_in_history_once_segments_are_subsumed() {
        let ctx = ExperimentContext::at_scale(0.1);
        let figs = run(&ctx);
        for fig in &figs[1..] {
            let without = fig.series_named(VARIANTS[0]).unwrap();
            let with = fig.series_named(VARIANTS[1]).unwrap();
            // Without a checkpoint the cost grows strictly with history;
            // with one it is the same constant at every history length.
            for i in 1..without.values.len() {
                assert!(
                    without.values[i] > without.values[i - 1],
                    "{}: column {i} must grow without a checkpoint",
                    fig.id
                );
                assert_eq!(
                    with.values[i], with.values[0],
                    "{}: column {i} must be flat after a checkpoint",
                    fig.id
                );
            }
        }
    }

    #[test]
    fn figure_is_jobs_invariant() {
        let serial_ctx = ExperimentContext::at_scale(0.05);
        let figs1 = run(&serial_ctx);
        let mut parallel_ctx = ExperimentContext::at_scale(0.05);
        parallel_ctx.jobs = 4;
        let figs4 = run(&parallel_ctx);
        for (a, b) in figs1.iter().zip(&figs4) {
            assert_eq!(a.to_csv(), b.to_csv());
        }
    }
}
