//! Size-distribution robustness: do the paper's conclusions depend on its
//! artificial six-class size pattern?
//!
//! The paper's repository interleaves exactly six sizes; real repositories
//! are heavy-tailed. This experiment re-runs the headline comparison on
//! lognormal-size repositories of increasing spread (σ) — σ → 0
//! approaches equi-sized, σ ≈ 1.8 matches web-object measurements — and
//! reports each policy's hit rate. The expected shape: the size-aware
//! techniques' advantage over LRU-2 *grows* with the size spread, because
//! there is more to gain from not letting one huge object displace many
//! small ones.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::PolicyKind;
use clipcache_sim::runner::{simulate, SimulationConfig};
use clipcache_workload::synthetic::{lognormal_repository, LognormalSpec};
use clipcache_workload::{RequestGenerator, Trace};
use std::sync::Arc;

/// Lognormal shape parameters swept (larger = heavier tail).
pub const SIGMAS: [f64; 4] = [0.25, 1.0, 1.8, 2.5];

/// Run the size-spread sweep at `S_T/S_DB = 0.125`.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let requests = ctx.requests(10_000);
    let policies = [
        PolicyKind::DynSimple { k: 2 },
        PolicyKind::GreedyDual,
        PolicyKind::LruK { k: 2 },
    ];
    let config = SimulationConfig::default();

    // Materialize each sigma's repository and trace once (shared across
    // policies), then fan the (sigma, policy) grid out.
    let sigma_indices: Vec<usize> = (0..SIGMAS.len()).collect();
    let worlds = ctx.run_points(&sigma_indices, |_, &si| {
        let repo = Arc::new(lognormal_repository(
            LognormalSpec {
                sigma: SIGMAS[si],
                ..LognormalSpec::default()
            },
            ctx.sub_seed(0xF600 + si as u64),
        ));
        let trace = Trace::from_generator(RequestGenerator::new(
            repo.len(),
            THETA,
            0,
            requests,
            ctx.sub_seed(0xF700 + si as u64),
        ));
        (repo, trace)
    });
    let grid: Vec<(usize, usize)> = sigma_indices
        .iter()
        .flat_map(|&si| (0..policies.len()).map(move |pi| (si, pi)))
        .collect();
    let cells = ctx.run_points(&grid, |_, &(si, pi)| {
        let (repo, trace) = &worlds[si];
        let capacity = repo.cache_capacity_for_ratio(0.125);
        let mut cache = policies[pi].build(Arc::clone(repo), capacity, 1, None);
        simulate(cache.as_mut(), repo, trace.requests(), &config).hit_rate()
    });

    let series = policies
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            let values = sigma_indices
                .iter()
                .map(|&si| cells[si * policies.len() + pi])
                .collect();
            Series::new(p.to_string(), values)
        })
        .collect();
    vec![FigureResult::new(
        "sizes",
        "Cache hit rate vs lognormal size spread sigma (S_T/S_DB = 0.125)",
        "sigma",
        SIGMAS.iter().map(|s| s.to_string()).collect(),
        series,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_awareness_pays_more_with_heavier_tails() {
        let ctx = ExperimentContext::at_scale(0.3);
        let fig = run(&ctx).remove(0);
        let dyn2 = fig.series_named("DYNSimple(K=2)").unwrap();
        let lru2 = fig.series_named("LRU-2").unwrap();
        let n = SIGMAS.len();
        let gap_narrow = dyn2.values[0] - lru2.values[0];
        let gap_heavy = dyn2.values[n - 1] - lru2.values[n - 1];
        assert!(
            gap_heavy > gap_narrow + 0.05,
            "heavier tails must widen the size-aware advantage: narrow {gap_narrow}, heavy {gap_heavy}"
        );
        // DYNSimple never loses to LRU-2 anywhere on the sweep.
        for (d, l) in dyn2.values.iter().zip(&lru2.values) {
            assert!(d + 0.02 >= *l);
        }
    }
}
