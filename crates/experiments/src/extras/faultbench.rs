//! Fault bench: effective hit rate vs injected fault rate.
//!
//! The chaos harness's headline claim, as a figure: because every
//! injected fault is recovered by the bounded retry loop, the *effective*
//! hit rate the clients observe barely moves as the fault rate climbs —
//! faults cost retries and duplicate server work, not correctness. Two
//! series inject only lossless wire faults (dropped-before-send
//! connections, garbage lines, torn writes), which leave the cache state
//! bit-identical to a clean run; two more add reply loss and shard
//! poisoning, whose duplicate processing and checkpoint rewinds perturb
//! cache state slightly. A retry-cost series (retries per 1k requests,
//! all five kinds) shows what resilience costs instead.
//!
//! The run is deterministic and jobs-invariant: one closed-loop client
//! replays the trace in order and the fault schedule is a pure function
//! of `(client, request, attempt)`, so the figure is byte-identical at
//! any `--jobs` value. Nothing wall-clock is reported.

use crate::context::ExperimentContext;
use crate::report::{FigureResult, Series};
use clipcache_core::{PolicyKind, PolicySpec};
use clipcache_media::paper;
use clipcache_serve::{
    run_load_with, CacheService, FaultKind, FaultPlan, LoadOptions, RetryPolicy, ServiceConfig,
    Target,
};
use clipcache_workload::{RequestGenerator, Trace};
use std::sync::Arc;

/// The injected fault rates swept (probability per request attempt).
pub const RATES: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.10];

const CLIPS: usize = 100;
const RATIO: f64 = 0.25;
const SHARDS: usize = 2;

struct Cell {
    hit_rate: f64,
    retries_per_1k: f64,
}

fn run_cell(
    repo: &Arc<clipcache_media::Repository>,
    policy: PolicySpec,
    rate: f64,
    kinds: &[FaultKind],
    seed: u64,
    trace: &Trace,
) -> Cell {
    let service = Arc::new(
        CacheService::new(
            Arc::clone(repo),
            ServiceConfig::new(policy, SHARDS, repo.cache_capacity_for_ratio(RATIO), seed),
            None,
        )
        .expect("on-line policies build without frequencies"),
    );
    let options = LoadOptions {
        clients: 1,
        faults: Some(FaultPlan::with_kinds(seed ^ 0xFA017, rate, kinds)),
        retry: RetryPolicy::default(),
        read_timeout: None,
        ..LoadOptions::default()
    };
    let report = run_load_with(&Target::InProcess(service), repo, trace, &options)
        .expect("in-process chaos load cannot fail");
    assert!(report.conserved(), "chaos invariant violated in faultbench");
    Cell {
        hit_rate: report.observed.hit_rate(),
        retries_per_1k: report.chaos.retries as f64 * 1_000.0 / report.chaos.delivered as f64,
    }
}

/// Run the fault-rate sweep.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository_of(CLIPS));
    let seed = ctx.sub_seed(0xFA_17B);
    let trace = Trace::from_generator(RequestGenerator::new(
        CLIPS,
        0.27,
        0,
        ctx.requests(20_000),
        seed,
    ));
    let configs: [(&str, PolicySpec, &[FaultKind]); 5] = [
        (
            "LRU, lossless faults",
            PolicyKind::Lru.into(),
            &FaultKind::LOSSLESS,
        ),
        (
            "DYNSimple(K=2), lossless faults",
            PolicyKind::DynSimple { k: 2 }.into(),
            &FaultKind::LOSSLESS,
        ),
        ("LRU, all faults", PolicyKind::Lru.into(), &FaultKind::ALL),
        (
            "DYNSimple(K=2), all faults",
            PolicyKind::DynSimple { k: 2 }.into(),
            &FaultKind::ALL,
        ),
        (
            "LRU retries per 1k requests",
            PolicyKind::Lru.into(),
            &FaultKind::ALL,
        ),
    ];

    // Fan the (rate, config) grid out as independent points.
    let grid: Vec<(usize, usize)> = RATES
        .iter()
        .enumerate()
        .flat_map(|(ri, _)| (0..configs.len()).map(move |ci| (ri, ci)))
        .collect();
    let cells = ctx.run_points(&grid, |_, &(ri, ci)| {
        let cell = run_cell(&repo, configs[ci].1, RATES[ri], configs[ci].2, seed, &trace);
        if ci == configs.len() - 1 {
            cell.retries_per_1k
        } else {
            cell.hit_rate
        }
    });

    let series: Vec<Series> = configs
        .iter()
        .enumerate()
        .map(|(ci, (name, _, _))| {
            let values = (0..RATES.len())
                .map(|ri| cells[ri * configs.len() + ci])
                .collect();
            Series::new((*name).to_string(), values)
        })
        .collect();

    vec![FigureResult::new(
        "faultbench",
        "Effective hit rate vs injected fault rate (1 client, bounded deterministic retries)",
        "fault rate",
        RATES.iter().map(|r| format!("{r}")).collect(),
        series,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_column_matches_the_clean_service() {
        let ctx = ExperimentContext::at_scale(0.1);
        let fig = run(&ctx).remove(0);
        let lossless = fig.series_named("LRU, lossless faults").unwrap();
        let all = fig.series_named("LRU, all faults").unwrap();
        // Rate 0: both fault sets are the clean run, so the columns agree
        // exactly — the figure's own serial-equivalence anchor.
        assert_eq!(lossless.values[0], all.values[0]);
        let retries = fig.series_named("LRU retries per 1k requests").unwrap();
        assert_eq!(retries.values[0], 0.0, "clean run must not retry");
    }

    #[test]
    fn lossless_series_is_flat_in_hit_rate() {
        // Lossless faults never reach the cache: every column of the
        // lossless series equals the fault-free column bit for bit.
        let ctx = ExperimentContext::at_scale(0.1);
        let fig = run(&ctx).remove(0);
        let lossless = fig.series_named("LRU, lossless faults").unwrap();
        for (i, v) in lossless.values.iter().enumerate() {
            assert_eq!(*v, lossless.values[0], "column {i} drifted");
        }
    }

    #[test]
    fn retry_cost_grows_with_fault_rate() {
        let ctx = ExperimentContext::at_scale(0.1);
        let fig = run(&ctx).remove(0);
        let retries = fig.series_named("LRU retries per 1k requests").unwrap();
        assert!(
            retries.values.last().unwrap() > retries.values.first().unwrap(),
            "retry cost must rise with the fault rate"
        );
    }

    #[test]
    fn figure_is_jobs_invariant() {
        let serial_ctx = ExperimentContext::at_scale(0.05);
        let figs1 = run(&serial_ctx);
        let mut parallel_ctx = ExperimentContext::at_scale(0.05);
        parallel_ctx.jobs = 4;
        let figs4 = run(&parallel_ctx);
        assert_eq!(figs1[0].to_csv(), figs4[0].to_csv());
    }
}
