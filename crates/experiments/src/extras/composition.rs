//! Cache composition: *why* size-aware policies win.
//!
//! The paper's repository interleaves 288 tiny audio clips (2.2–8.8 MB)
//! with 288 huge videos (0.9–3.5 GB). All the audio together is ~1.5 GB —
//! 0.25% of `S_DB` — so a size-aware policy can hold *every* audio clip
//! and spend the rest of the cache on the hottest videos, while LRU-2
//! lets one cold video displace hundreds of audio clips. This experiment
//! makes that visible: per policy, the fraction of each media type
//! resident at the end of the paper's workload and each type's hit rate.

use crate::context::ExperimentContext;
use crate::figures::THETA;
use crate::report::{FigureResult, Series};
use clipcache_core::{AccessOutcome, PolicyKind};
use clipcache_media::{paper, MediaType};
use clipcache_workload::{RequestGenerator, ShiftedZipf, Trace, Zipf};
use std::sync::Arc;

/// The policies profiled.
pub fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Simple,
        PolicyKind::DynSimple { k: 2 },
        PolicyKind::GreedyDual,
        PolicyKind::Size,
        PolicyKind::LruK { k: 2 },
        PolicyKind::Random,
    ]
}

/// Run the composition profile at `S_T/S_DB = 0.125`.
pub fn run(ctx: &ExperimentContext) -> Vec<FigureResult> {
    let repo = Arc::new(paper::variable_sized_repository());
    let n = repo.len();
    let requests = ctx.requests(10_000);
    let trace = Trace::from_generator(RequestGenerator::new(
        n,
        THETA,
        0,
        requests,
        ctx.sub_seed(0xEF),
    ));
    let freqs = ShiftedZipf::new(Zipf::new(n, THETA), 0).frequencies();
    let capacity = repo.cache_capacity_for_ratio(0.125);
    let total_audio = repo.iter().filter(|c| c.media == MediaType::Audio).count() as f64;
    let total_video = repo.len() as f64 - total_audio;

    let lineup = policies();
    let cells = ctx.run_points(&lineup, |_, policy| {
        let mut cache = policy.build(Arc::clone(&repo), capacity, 5, Some(&freqs));
        let mut hits = [0u64; 2]; // audio, video
        let mut reqs = [0u64; 2];
        for req in trace.iter() {
            let media = repo.clip(req.clip).media;
            let slot = usize::from(media == MediaType::Video);
            reqs[slot] += 1;
            if matches!(cache.access(req.clip, req.at), AccessOutcome::Hit) {
                hits[slot] += 1;
            }
        }
        let resident = cache.resident_clips();
        let res_audio = resident
            .iter()
            .filter(|&&c| repo.clip(c).media == MediaType::Audio)
            .count() as f64;
        let res_video = resident.len() as f64 - res_audio;
        (
            res_audio / total_audio,
            res_video / total_video,
            if reqs[0] == 0 {
                0.0
            } else {
                hits[0] as f64 / reqs[0] as f64
            },
            if reqs[1] == 0 {
                0.0
            } else {
                hits[1] as f64 / reqs[1] as f64
            },
        )
    });
    let audio_resident: Vec<f64> = cells.iter().map(|c| c.0).collect();
    let video_resident: Vec<f64> = cells.iter().map(|c| c.1).collect();
    let audio_hit: Vec<f64> = cells.iter().map(|c| c.2).collect();
    let video_hit: Vec<f64> = cells.iter().map(|c| c.3).collect();

    vec![FigureResult::new(
        "composition",
        "Final cache composition and per-media hit rates (S_T/S_DB = 0.125)",
        "policy",
        lineup.iter().map(|p| p.to_string()).collect(),
        vec![
            Series::new("audio clips resident", audio_resident),
            Series::new("video clips resident", video_resident),
            Series::new("audio hit rate", audio_hit),
            Series::new("video hit rate", video_hit),
        ],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_aware_policies_hoard_audio() {
        let ctx = ExperimentContext::at_scale(0.3);
        let fig = run(&ctx).remove(0);
        let audio = fig.series_named("audio clips resident").unwrap();
        let a_hit = fig.series_named("audio hit rate").unwrap();
        // Columns: Simple, DYNSimple(K=2), GreedyDual, SIZE, LRU-2, Random.
        // Size-aware policies keep (nearly) all referenced audio clips;
        // LRU-2 and Random keep far fewer.
        for i in [0usize, 2, 3] {
            assert!(
                audio.values[i] > audio.values[4] + 0.2,
                "policy {i}: audio residency {} vs LRU-2 {}",
                audio.values[i],
                audio.values[4]
            );
        }
        // ... which is where their audio hit-rate edge comes from.
        assert!(a_hit.values[0] > a_hit.values[4]);
        assert!(a_hit.values[2] > a_hit.values[4]);
    }
}
